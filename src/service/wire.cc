#include "service/wire.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "core/journal.h"

namespace privmark {

namespace {

// Length caps applied before any allocation during decode. The frame
// length is already capped; these keep individual fields proportionate.
constexpr size_t kMaxNameBytes = 4096;
constexpr size_t kMaxTextBytes = size_t{1} << 20;

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("wire: truncated or oversized ") +
                                 what);
}

void AppendStatus(std::string* out, const Status& status) {
  AppendLe32(out, static_cast<uint32_t>(status.code()));
  AppendLengthPrefixed(out, status.message());
  AppendLe64(out, static_cast<uint64_t>(status.retry_after_ms()));
}

// Out-param rather than Result<Status>: Result<T> cannot hold a Status
// payload (its value and error constructors would collide).
Status ReadStatus(BinReader* reader, const char* what, Status* out) {
  uint32_t code = 0;
  std::string message;
  uint64_t retry_bits = 0;
  if (!reader->ReadU32(&code) ||
      !reader->ReadLengthPrefixed(&message, kMaxTextBytes) ||
      !reader->ReadU64(&retry_bits)) {
    return Truncated(what);
  }
  if (code > static_cast<uint32_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("wire: unknown status code " +
                                   std::to_string(code));
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message))
             .WithRetryAfterMs(static_cast<int64_t>(retry_bits));
  return Status::OK();
}

void AppendBitVector(std::string* out, const BitVector& bits) {
  AppendLengthPrefixed(out, bits.ToString());
}

Result<BitVector> ReadBitVector(BinReader* reader, const char* what) {
  std::string text;
  if (!reader->ReadLengthPrefixed(&text, kMaxTextBytes)) {
    return Truncated(what);
  }
  return BitVector::FromString(text);
}

void AppendDetectReport(std::string* out, const DetectReport& report) {
  AppendBitVector(out, report.recovered);
  AppendLe64(out, report.tuples_selected);
  AppendLe64(out, report.slots_read);
  AppendLe64(out, report.slots_skipped);
  AppendLe32(out, static_cast<uint32_t>(report.vote_margin.size()));
  for (double margin : report.vote_margin) AppendDoubleBits(out, margin);
  std::string voted;
  voted.reserve(report.bit_voted.size());
  for (bool b : report.bit_voted) voted.push_back(b ? '1' : '0');
  AppendLengthPrefixed(out, voted);
}

Result<DetectReport> ReadDetectReport(BinReader* reader) {
  DetectReport report;
  PRIVMARK_ASSIGN_OR_RETURN(report.recovered,
                            ReadBitVector(reader, "detect report"));
  uint64_t tuples = 0;
  uint64_t read = 0;
  uint64_t skipped = 0;
  uint32_t margins = 0;
  if (!reader->ReadU64(&tuples) || !reader->ReadU64(&read) ||
      !reader->ReadU64(&skipped) || !reader->ReadU32(&margins)) {
    return Truncated("detect report");
  }
  report.tuples_selected = tuples;
  report.slots_read = read;
  report.slots_skipped = skipped;
  if (reader->remaining() / 8 < margins) return Truncated("vote margins");
  report.vote_margin.reserve(margins);
  for (uint32_t i = 0; i < margins; ++i) {
    double margin = 0;
    if (!reader->ReadDoubleBits(&margin)) return Truncated("vote margins");
    report.vote_margin.push_back(margin);
  }
  std::string voted;
  if (!reader->ReadLengthPrefixed(&voted, kMaxTextBytes)) {
    return Truncated("bit_voted");
  }
  report.bit_voted.reserve(voted.size());
  for (char c : voted) {
    if (c != '0' && c != '1') {
      return Status::InvalidArgument("wire: bit_voted holds a non-bit byte");
    }
    report.bit_voted.push_back(c == '1');
  }
  return report;
}

void AppendKeyVerdict(std::string* out, const KeyVerdict& verdict) {
  AppendLengthPrefixed(out, verdict.key_name);
  AppendDetectReport(out, verdict.detection);
  AppendDoubleBits(out, verdict.margin_ratio);
  AppendDoubleBits(out, verdict.mark_match);
  AppendDoubleBits(out, verdict.p_value);
  AppendDoubleBits(out, verdict.score);
  out->push_back(verdict.detected ? 1 : 0);
}

Result<KeyVerdict> ReadKeyVerdict(BinReader* reader) {
  KeyVerdict verdict;
  if (!reader->ReadLengthPrefixed(&verdict.key_name, kMaxNameBytes)) {
    return Truncated("verdict key name");
  }
  PRIVMARK_ASSIGN_OR_RETURN(verdict.detection, ReadDetectReport(reader));
  uint8_t detected = 0;
  if (!reader->ReadDoubleBits(&verdict.margin_ratio) ||
      !reader->ReadDoubleBits(&verdict.mark_match) ||
      !reader->ReadDoubleBits(&verdict.p_value) ||
      !reader->ReadDoubleBits(&verdict.score) ||
      !reader->ReadU8(&detected)) {
    return Truncated("verdict");
  }
  verdict.detected = detected != 0;
  return verdict;
}

// The ranking + keys_detected + collusion tail of a report — the part a
// streamed terminal frame carries after the verdicts went out as shards.
void AppendFingerprintTail(std::string* out, const FingerprintReport& report) {
  AppendLe32(out, static_cast<uint32_t>(report.ranking.size()));
  for (size_t index : report.ranking) {
    AppendLe32(out, static_cast<uint32_t>(index));
  }
  AppendLe64(out, report.keys_detected);
  out->push_back(report.collusion ? 1 : 0);
}

// Reads the tail. A ranking is always a permutation of all verdict
// indices, so its length IS the verdict count — callers holding the
// verdicts separately compare against report->ranking.size().
Status ReadFingerprintTail(BinReader* reader, FingerprintReport* report) {
  uint32_t ranked = 0;
  if (!reader->ReadU32(&ranked)) return Truncated("ranking");
  const uint32_t verdicts = ranked;
  if (reader->remaining() / 4 < ranked) return Truncated("ranking");
  report->ranking.reserve(ranked);
  for (uint32_t i = 0; i < ranked; ++i) {
    uint32_t index = 0;
    if (!reader->ReadU32(&index)) return Truncated("ranking");
    if (index >= verdicts) {
      return Status::InvalidArgument(
          "wire: fingerprint ranking index out of range");
    }
    report->ranking.push_back(index);
  }
  uint64_t detected = 0;
  uint8_t collusion = 0;
  if (!reader->ReadU64(&detected) || !reader->ReadU8(&collusion)) {
    return Truncated("fingerprint report");
  }
  report->keys_detected = detected;
  report->collusion = collusion != 0;
  return Status::OK();
}

void AppendFingerprintReport(std::string* out,
                             const FingerprintReport& report) {
  AppendLe32(out, static_cast<uint32_t>(report.verdicts.size()));
  for (const KeyVerdict& verdict : report.verdicts) {
    AppendKeyVerdict(out, verdict);
  }
  AppendFingerprintTail(out, report);
}

Result<FingerprintReport> ReadFingerprintReport(BinReader* reader) {
  FingerprintReport report;
  uint32_t verdicts = 0;
  if (!reader->ReadU32(&verdicts)) return Truncated("fingerprint report");
  // Every verdict holds at least a name prefix and the fixed numerics.
  if (reader->remaining() / 8 < verdicts) return Truncated("verdicts");
  report.verdicts.reserve(verdicts);
  for (uint32_t i = 0; i < verdicts; ++i) {
    PRIVMARK_ASSIGN_OR_RETURN(KeyVerdict verdict, ReadKeyVerdict(reader));
    report.verdicts.push_back(std::move(verdict));
  }
  PRIVMARK_RETURN_NOT_OK(ReadFingerprintTail(reader, &report));
  if (report.ranking.size() != report.verdicts.size()) {
    return Status::InvalidArgument(
        "wire: fingerprint ranking length differs from verdict count");
  }
  return report;
}

void AppendEpochSummary(std::string* out, const WireEpochSummary& epoch) {
  AppendLe64(out, epoch.epoch);
  AppendLe64(out, epoch.rows_emitted);
  AppendLe64(out, epoch.rows_suppressed);
  AppendLe64(out, epoch.wmd_size);
  AppendDoubleBits(out, epoch.identifier_statistic);
  AppendLengthPrefixed(out, epoch.manifest_text);
}

Result<WireEpochSummary> ReadEpochSummary(BinReader* reader) {
  WireEpochSummary epoch;
  if (!reader->ReadU64(&epoch.epoch) ||
      !reader->ReadU64(&epoch.rows_emitted) ||
      !reader->ReadU64(&epoch.rows_suppressed) ||
      !reader->ReadU64(&epoch.wmd_size) ||
      !reader->ReadDoubleBits(&epoch.identifier_statistic) ||
      !reader->ReadLengthPrefixed(&epoch.manifest_text, kMaxTextBytes)) {
    return Truncated("epoch summary");
  }
  return epoch;
}

}  // namespace

const char* WireFrameTypeToString(WireFrameType type) {
  switch (type) {
    case WireFrameType::kOpen: return "open";
    case WireFrameType::kIngest: return "ingest";
    case WireFrameType::kFlush: return "flush";
    case WireFrameType::kDetect: return "detect";
    case WireFrameType::kFingerprint: return "fingerprint";
    case WireFrameType::kClose: return "close";
    case WireFrameType::kResponse: return "response";
    case WireFrameType::kPartial: return "partial";
  }
  return "unknown";
}

uint8_t WireMagicVersion(const char* magic) {
  if (std::memcmp(magic, kWireMagic, kWireMagicSize) == 0) {
    return kWireProtocolV1;
  }
  if (std::memcmp(magic, kWireMagicV2, kWireMagicSize) == 0) {
    return kWireProtocolV2;
  }
  return 0;
}

bool WireMagicFor(uint8_t version, char* out) {
  if (version == kWireProtocolV1) {
    std::memcpy(out, kWireMagic, kWireMagicSize);
    return true;
  }
  if (version == kWireProtocolV2) {
    std::memcpy(out, kWireMagicV2, kWireMagicSize);
    return true;
  }
  return false;
}

Result<std::string> EncodeWireFrame(const WireFrame& frame, uint8_t version) {
  if (version != kWireProtocolV1 && version != kWireProtocolV2) {
    return Status::InvalidArgument("wire: unknown protocol version " +
                                   std::to_string(version));
  }
  if (frame.payload.size() > kMaxWireFrameBytes) {
    return Status::InvalidArgument("wire: frame payload of " +
                                   std::to_string(frame.payload.size()) +
                                   " bytes exceeds the frame size cap");
  }
  if (version == kWireProtocolV1 &&
      (frame.request_id != 0 || !frame.final_frame || frame.streamed ||
       frame.type == WireFrameType::kPartial)) {
    return Status::InvalidArgument(
        "wire: v1 frames carry no request id, flags, or continuations");
  }
  if (frame.type == WireFrameType::kPartial && frame.final_frame) {
    return Status::InvalidArgument(
        "wire: a partial frame cannot be final");
  }
  std::string crc_input;
  crc_input.reserve(1 + kWireV2EnvelopeBytes + frame.payload.size());
  crc_input.push_back(static_cast<char>(frame.type));
  if (version == kWireProtocolV2) {
    AppendLe64(&crc_input, frame.request_id);
    uint8_t flags = 0;
    if (frame.final_frame) flags |= kWireFlagFinal;
    if (frame.streamed) flags |= kWireFlagStreamed;
    crc_input.push_back(static_cast<char>(flags));
  }
  crc_input.append(frame.payload);

  std::string encoded;
  encoded.reserve(kWireFrameHeaderBytes + crc_input.size());
  AppendLe32(&encoded, static_cast<uint32_t>(frame.payload.size()));
  AppendLe32(&encoded, JournalCrc32(crc_input.data(), crc_input.size()));
  encoded.append(crc_input);
  return encoded;
}

Result<std::string> EncodeWireFrame(WireFrameType type,
                                    const std::string& payload) {
  WireFrame frame;
  frame.type = type;
  frame.payload = payload;
  return EncodeWireFrame(frame, kWireProtocolV1);
}

Result<size_t> WireFrameBodyLength(const char* header, uint8_t version) {
  const uint32_t length = ReadLe32(header);
  if (length > kMaxWireFrameBytes) {
    return Status::InvalidArgument("wire: frame length " +
                                   std::to_string(length) +
                                   " exceeds the frame size cap");
  }
  // + the type byte (+ the v2 envelope).
  const size_t envelope =
      version == kWireProtocolV2 ? 1 + kWireV2EnvelopeBytes : 1;
  return static_cast<size_t>(length) + envelope;
}

Result<WireFrame> DecodeWireFrameBody(const char* header, const char* body,
                                      size_t body_length, uint8_t version) {
  const size_t envelope =
      version == kWireProtocolV2 ? 1 + kWireV2EnvelopeBytes : 1;
  if (body_length < envelope) {
    return Status::InvalidArgument("wire: truncated frame body");
  }
  const uint32_t expected_crc = ReadLe32(header + 4);
  if (JournalCrc32(body, body_length) != expected_crc) {
    return Status::InvalidArgument("wire: frame checksum mismatch");
  }
  const uint8_t type = static_cast<uint8_t>(*body);
  const uint8_t max_type = version == kWireProtocolV2
                               ? static_cast<uint8_t>(WireFrameType::kPartial)
                               : static_cast<uint8_t>(WireFrameType::kResponse);
  if (type < static_cast<uint8_t>(WireFrameType::kOpen) || type > max_type) {
    return Status::InvalidArgument("wire: unknown frame type " +
                                   std::to_string(type));
  }
  WireFrame frame;
  frame.type = static_cast<WireFrameType>(type);
  if (version == kWireProtocolV2) {
    frame.request_id = ReadLe64(body + 1);
    const uint8_t flags = static_cast<uint8_t>(body[9]);
    if ((flags & ~kWireFlagMask) != 0) {
      return Status::InvalidArgument("wire: unknown frame flags " +
                                     std::to_string(flags));
    }
    frame.final_frame = (flags & kWireFlagFinal) != 0;
    frame.streamed = (flags & kWireFlagStreamed) != 0;
    if (frame.type == WireFrameType::kPartial && frame.final_frame) {
      return Status::InvalidArgument("wire: a partial frame cannot be final");
    }
  }
  frame.payload.assign(body + envelope, body_length - envelope);
  return frame;
}

// ---- columnar table codec ------------------------------------------------

void WireTableEncoder::Encode(const Table& batch, std::string* out) {
  const size_t rows = batch.num_rows();
  const size_t cols = batch.num_columns();
  AppendLe32(out, static_cast<uint32_t>(rows));
  AppendLe32(out, static_cast<uint32_t>(cols));
  for (size_t c = 0; c < cols; ++c) {
    bool all_int = rows > 0;
    bool all_double = rows > 0;
    bool all_string = rows > 0;
    for (size_t r = 0; r < rows; ++r) {
      const ValueType type = batch.at(r, c).type();
      all_int = all_int && type == ValueType::kInt64;
      all_double = all_double && type == ValueType::kDouble;
      all_string = all_string && type == ValueType::kString;
    }
    if (all_int) {
      out->push_back(static_cast<char>(WireColumnEncoding::kInt64Dense));
      for (size_t r = 0; r < rows; ++r) {
        AppendLe64(out, static_cast<uint64_t>(batch.at(r, c).AsInt64()));
      }
    } else if (all_double) {
      out->push_back(static_cast<char>(WireColumnEncoding::kDoubleDense));
      for (size_t r = 0; r < rows; ++r) {
        AppendDoubleBits(out, batch.at(r, c).AsDouble());
      }
    } else if (all_string) {
      out->push_back(static_cast<char>(WireColumnEncoding::kStringDict));
      auto& dict = dicts_[c];
      // First pass: collect entries this batch introduces, in
      // first-occurrence order, so the decoder can append them to its
      // dictionary and land on identical ids.
      std::vector<const std::string*> fresh;
      for (size_t r = 0; r < rows; ++r) {
        const std::string& s = batch.at(r, c).AsString();
        if (dict.emplace(s, static_cast<uint32_t>(dict.size())).second) {
          fresh.push_back(&dict.find(s)->first);
        }
      }
      AppendLe32(out, static_cast<uint32_t>(fresh.size()));
      for (const std::string* s : fresh) AppendLengthPrefixed(out, *s);
      for (size_t r = 0; r < rows; ++r) {
        AppendLe32(out, dict.find(batch.at(r, c).AsString())->second);
      }
    } else {
      // Mixed or Null-bearing column: per-cell tags (the journal codec).
      out->push_back(static_cast<char>(WireColumnEncoding::kCells));
      for (size_t r = 0; r < rows; ++r) {
        const Value& cell = batch.at(r, c);
        out->push_back(static_cast<char>(cell.type()));
        switch (cell.type()) {
          case ValueType::kNull:
            break;
          case ValueType::kInt64:
            AppendLe64(out, static_cast<uint64_t>(cell.AsInt64()));
            break;
          case ValueType::kDouble:
            AppendDoubleBits(out, cell.AsDouble());
            break;
          case ValueType::kString:
            AppendLengthPrefixed(out, cell.AsString());
            break;
        }
      }
    }
  }
}

Result<Table> WireTableDecoder::Decode(BinReader* reader) {
  uint32_t rows = 0;
  uint32_t cols = 0;
  if (!reader->ReadU32(&rows) || !reader->ReadU32(&cols)) {
    return Truncated("table block");
  }
  // A default-constructed Table (a fresh session's "nothing emitted
  // yet") encodes as 0x0; decode it as an empty table of the schema.
  if (rows == 0 && cols == 0) return Table(schema_);
  if (cols != schema_.num_columns()) {
    return Status::InvalidArgument(
        "wire: table block has " + std::to_string(cols) +
        " columns, schema has " + std::to_string(schema_.num_columns()));
  }
  std::vector<std::vector<Value>> columns(cols);
  for (uint32_t c = 0; c < cols; ++c) {
    uint8_t encoding = 0;
    if (!reader->ReadU8(&encoding)) return Truncated("table column");
    columns[c].reserve(rows);
    if (encoding == static_cast<uint8_t>(WireColumnEncoding::kInt64Dense)) {
      if (reader->remaining() / 8 < rows) return Truncated("int64 column");
      for (uint32_t r = 0; r < rows; ++r) {
        uint64_t bits = 0;
        reader->ReadU64(&bits);
        columns[c].push_back(Value::Int64(static_cast<int64_t>(bits)));
      }
    } else if (encoding ==
               static_cast<uint8_t>(WireColumnEncoding::kDoubleDense)) {
      if (reader->remaining() / 8 < rows) return Truncated("double column");
      for (uint32_t r = 0; r < rows; ++r) {
        double v = 0;
        reader->ReadDoubleBits(&v);
        columns[c].push_back(Value::Double(v));
      }
    } else if (encoding ==
               static_cast<uint8_t>(WireColumnEncoding::kStringDict)) {
      auto& dict = dicts_[c];
      uint32_t fresh = 0;
      if (!reader->ReadU32(&fresh)) return Truncated("string dictionary");
      // Each fresh entry costs at least its 4-byte length prefix.
      if (reader->remaining() / 4 < fresh) {
        return Truncated("string dictionary");
      }
      for (uint32_t i = 0; i < fresh; ++i) {
        std::string entry;
        if (!reader->ReadLengthPrefixed(&entry, kMaxWireFrameBytes)) {
          return Truncated("string dictionary entry");
        }
        dict.push_back(std::move(entry));
      }
      if (reader->remaining() / 4 < rows) return Truncated("string ids");
      for (uint32_t r = 0; r < rows; ++r) {
        uint32_t id = 0;
        reader->ReadU32(&id);
        if (id >= dict.size()) {
          return Status::InvalidArgument(
              "wire: string dictionary id " + std::to_string(id) +
              " out of range (dictionary holds " +
              std::to_string(dict.size()) + ")");
        }
        columns[c].push_back(Value::String(dict[id]));
      }
    } else if (encoding == static_cast<uint8_t>(WireColumnEncoding::kCells)) {
      for (uint32_t r = 0; r < rows; ++r) {
        uint8_t tag = 0;
        if (!reader->ReadU8(&tag)) return Truncated("cell column");
        if (tag == static_cast<uint8_t>(ValueType::kNull)) {
          columns[c].push_back(Value::Null());
        } else if (tag == static_cast<uint8_t>(ValueType::kInt64)) {
          uint64_t bits = 0;
          if (!reader->ReadU64(&bits)) return Truncated("cell column");
          columns[c].push_back(Value::Int64(static_cast<int64_t>(bits)));
        } else if (tag == static_cast<uint8_t>(ValueType::kDouble)) {
          double v = 0;
          if (!reader->ReadDoubleBits(&v)) return Truncated("cell column");
          columns[c].push_back(Value::Double(v));
        } else if (tag == static_cast<uint8_t>(ValueType::kString)) {
          std::string s;
          if (!reader->ReadLengthPrefixed(&s, kMaxWireFrameBytes)) {
            return Truncated("cell column");
          }
          columns[c].push_back(Value::String(std::move(s)));
        } else {
          return Status::InvalidArgument(
              "wire: table cell has unknown tag " + std::to_string(tag));
        }
      }
    } else {
      return Status::InvalidArgument(
          "wire: unknown column encoding " + std::to_string(encoding));
    }
  }
  Table table(schema_);
  for (uint32_t r = 0; r < rows; ++r) {
    Row row;
    row.reserve(cols);
    for (uint32_t c = 0; c < cols; ++c) {
      row.push_back(std::move(columns[c][r]));
    }
    PRIVMARK_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

// ---- requests ------------------------------------------------------------

std::string EncodeWireRequest(const WireRequest& request,
                              WireTableEncoder* tables) {
  std::string out;
  AppendLengthPrefixed(&out, request.session);
  if (request.type == WireFrameType::kOpen) {
    const WireOpenRequest& open = request.open;
    AppendLe64(&out, open.k);
    out.push_back(open.enforce_joint ? 1 : 0);
    out.push_back(open.auto_epsilon ? 1 : 0);
    AppendLe64(&out, open.num_threads);
    AppendLengthPrefixed(&out, open.passphrase);
    AppendLengthPrefixed(&out, open.k1);
    AppendLengthPrefixed(&out, open.k2);
    AppendLe64(&out, open.eta);
    AppendLengthPrefixed(&out, open.key_id);
    out.push_back(static_cast<char>(open.on_unbinnable));
    out.push_back(static_cast<char>(open.policy));
    AppendDoubleBits(&out, open.drift_threshold);
    return out;
  }
  if (request.type == WireFrameType::kClose) return out;
  AppendLe64(&out, request.ask);
  AppendLe64(&out, static_cast<uint64_t>(request.deadline_ms));
  if (request.type == WireFrameType::kFingerprint) {
    AppendLengthPrefixed(&out, request.registry_text);
  }
  if (request.type == WireFrameType::kFlush) return out;
  tables->Encode(request.table, &out);
  return out;
}

Result<WireRequest> DecodeWireRequest(WireFrameType type,
                                      const std::string& payload,
                                      WireTableDecoder* tables) {
  if (type == WireFrameType::kResponse) {
    return Status::InvalidArgument(
        "wire: a response frame is not a request");
  }
  WireRequest request;
  request.type = type;
  BinReader reader(payload);
  if (!reader.ReadLengthPrefixed(&request.session, kMaxNameBytes)) {
    return Truncated("session name");
  }
  if (type == WireFrameType::kOpen) {
    WireOpenRequest& open = request.open;
    open.session = request.session;
    uint8_t joint = 0;
    uint8_t auto_eps = 0;
    if (!reader.ReadU64(&open.k) || !reader.ReadU8(&joint) ||
        !reader.ReadU8(&auto_eps) || !reader.ReadU64(&open.num_threads) ||
        !reader.ReadLengthPrefixed(&open.passphrase, kMaxNameBytes) ||
        !reader.ReadLengthPrefixed(&open.k1, kMaxNameBytes) ||
        !reader.ReadLengthPrefixed(&open.k2, kMaxNameBytes) ||
        !reader.ReadU64(&open.eta) ||
        !reader.ReadLengthPrefixed(&open.key_id, kMaxNameBytes) ||
        !reader.ReadU8(&open.on_unbinnable) || !reader.ReadU8(&open.policy) ||
        !reader.ReadDoubleBits(&open.drift_threshold)) {
      return Truncated("open request");
    }
    open.enforce_joint = joint != 0;
    open.auto_epsilon = auto_eps != 0;
    if (open.on_unbinnable > 1) {
      return Status::InvalidArgument("wire: unknown unbinnable policy " +
                                     std::to_string(open.on_unbinnable));
    }
    if (open.policy > 1) {
      return Status::InvalidArgument("wire: unknown rebin policy " +
                                     std::to_string(open.policy));
    }
  } else if (type != WireFrameType::kClose) {
    uint64_t deadline_bits = 0;
    if (!reader.ReadU64(&request.ask) || !reader.ReadU64(&deadline_bits)) {
      return Truncated("request header");
    }
    request.deadline_ms = static_cast<int64_t>(deadline_bits);
    if (type == WireFrameType::kFingerprint &&
        !reader.ReadLengthPrefixed(&request.registry_text, kMaxTextBytes)) {
      return Truncated("registry");
    }
    if (type != WireFrameType::kFlush) {
      PRIVMARK_ASSIGN_OR_RETURN(request.table, tables->Decode(&reader));
    }
  }
  if (!reader.Exhausted()) {
    return Status::InvalidArgument("wire: request has trailing bytes");
  }
  return request;
}

// ---- responses -----------------------------------------------------------

std::string EncodeWireResponse(const WireResponse& response,
                               WireTableEncoder* tables) {
  std::string out;
  out.push_back(static_cast<char>(response.kind));
  AppendStatus(&out, response.status);
  AppendStatus(&out, response.journal_status);
  AppendLe64(&out, response.threads_granted);
  if (!response.status.ok()) return out;
  switch (response.kind) {
    case WireFrameType::kOpen:
      out.push_back(response.open.recovered ? 1 : 0);
      AppendLe64(&out, response.open.batches_applied);
      AppendLe64(&out, response.open.epochs_sealed);
      out.push_back(response.open.tail_truncated ? 1 : 0);
      tables->Encode(response.open.emitted, &out);
      break;
    case WireFrameType::kIngest:
      AppendLe64(&out, response.ingest.epoch);
      out.push_back(response.ingest.flushed ? 1 : 0);
      AppendLe64(&out, response.ingest.rows_emitted);
      AppendLe64(&out, response.ingest.rows_suppressed);
      AppendLe64(&out, response.ingest.rows_buffered);
      tables->Encode(response.ingest.emitted, &out);
      break;
    case WireFrameType::kFlush:
      AppendLe64(&out, response.flush.epoch);
      AppendDoubleBits(&out, response.flush.identifier_statistic);
      tables->Encode(response.flush.emitted, &out);
      break;
    case WireFrameType::kDetect:
      AppendLe32(&out, static_cast<uint32_t>(response.reports.size()));
      for (const DetectReport& report : response.reports) {
        AppendDetectReport(&out, report);
      }
      break;
    case WireFrameType::kFingerprint:
      AppendLe32(&out, static_cast<uint32_t>(response.fingerprints.size()));
      for (const FingerprintReport& report : response.fingerprints) {
        AppendFingerprintReport(&out, report);
      }
      break;
    case WireFrameType::kClose:
      AppendLe64(&out, response.close.rows_ingested);
      AppendLe64(&out, response.close.rows_emitted);
      AppendLe64(&out, response.close.rows_suppressed);
      AppendLe32(&out, static_cast<uint32_t>(response.close.epochs.size()));
      for (const WireEpochSummary& epoch : response.close.epochs) {
        AppendEpochSummary(&out, epoch);
      }
      break;
    case WireFrameType::kResponse:
    case WireFrameType::kPartial:
      break;  // unreachable: kind always echoes a request type
  }
  return out;
}

Result<WireResponse> DecodeWireResponse(const std::string& payload,
                                        WireTableDecoder* tables) {
  WireResponse response;
  BinReader reader(payload);
  uint8_t kind = 0;
  if (!reader.ReadU8(&kind)) return Truncated("response");
  if (kind < static_cast<uint8_t>(WireFrameType::kOpen) ||
      kind > static_cast<uint8_t>(WireFrameType::kClose)) {
    return Status::InvalidArgument("wire: response echoes unknown kind " +
                                   std::to_string(kind));
  }
  response.kind = static_cast<WireFrameType>(kind);
  PRIVMARK_RETURN_NOT_OK(
      ReadStatus(&reader, "response status", &response.status));
  PRIVMARK_RETURN_NOT_OK(
      ReadStatus(&reader, "journal status", &response.journal_status));
  if (!reader.ReadU64(&response.threads_granted)) return Truncated("response");
  if (response.status.ok()) {
    switch (response.kind) {
      case WireFrameType::kOpen: {
        uint8_t recovered = 0;
        uint8_t torn = 0;
        if (!reader.ReadU8(&recovered) ||
            !reader.ReadU64(&response.open.batches_applied) ||
            !reader.ReadU64(&response.open.epochs_sealed) ||
            !reader.ReadU8(&torn)) {
          return Truncated("open response");
        }
        response.open.recovered = recovered != 0;
        response.open.tail_truncated = torn != 0;
        PRIVMARK_ASSIGN_OR_RETURN(response.open.emitted,
                                  tables->Decode(&reader));
        break;
      }
      case WireFrameType::kIngest: {
        uint8_t flushed = 0;
        if (!reader.ReadU64(&response.ingest.epoch) ||
            !reader.ReadU8(&flushed) ||
            !reader.ReadU64(&response.ingest.rows_emitted) ||
            !reader.ReadU64(&response.ingest.rows_suppressed) ||
            !reader.ReadU64(&response.ingest.rows_buffered)) {
          return Truncated("ingest response");
        }
        response.ingest.flushed = flushed != 0;
        PRIVMARK_ASSIGN_OR_RETURN(response.ingest.emitted,
                                  tables->Decode(&reader));
        break;
      }
      case WireFrameType::kFlush: {
        if (!reader.ReadU64(&response.flush.epoch) ||
            !reader.ReadDoubleBits(&response.flush.identifier_statistic)) {
          return Truncated("flush response");
        }
        PRIVMARK_ASSIGN_OR_RETURN(response.flush.emitted,
                                  tables->Decode(&reader));
        break;
      }
      case WireFrameType::kDetect: {
        uint32_t reports = 0;
        if (!reader.ReadU32(&reports)) return Truncated("detect response");
        if (reader.remaining() / 4 < reports) {
          return Truncated("detect response");
        }
        response.reports.reserve(reports);
        for (uint32_t i = 0; i < reports; ++i) {
          PRIVMARK_ASSIGN_OR_RETURN(DetectReport report,
                                    ReadDetectReport(&reader));
          response.reports.push_back(std::move(report));
        }
        break;
      }
      case WireFrameType::kFingerprint: {
        uint32_t reports = 0;
        if (!reader.ReadU32(&reports)) {
          return Truncated("fingerprint response");
        }
        if (reader.remaining() / 4 < reports) {
          return Truncated("fingerprint response");
        }
        response.fingerprints.reserve(reports);
        for (uint32_t i = 0; i < reports; ++i) {
          PRIVMARK_ASSIGN_OR_RETURN(FingerprintReport report,
                                    ReadFingerprintReport(&reader));
          response.fingerprints.push_back(std::move(report));
        }
        break;
      }
      case WireFrameType::kClose: {
        uint32_t epochs = 0;
        if (!reader.ReadU64(&response.close.rows_ingested) ||
            !reader.ReadU64(&response.close.rows_emitted) ||
            !reader.ReadU64(&response.close.rows_suppressed) ||
            !reader.ReadU32(&epochs)) {
          return Truncated("close response");
        }
        if (reader.remaining() / 8 < epochs) {
          return Truncated("close response");
        }
        response.close.epochs.reserve(epochs);
        for (uint32_t i = 0; i < epochs; ++i) {
          PRIVMARK_ASSIGN_OR_RETURN(WireEpochSummary epoch,
                                    ReadEpochSummary(&reader));
          response.close.epochs.push_back(std::move(epoch));
        }
        break;
      }
      case WireFrameType::kResponse:
      case WireFrameType::kPartial:
        break;
    }
  }
  if (!reader.Exhausted()) {
    return Status::InvalidArgument("wire: response has trailing bytes");
  }
  return response;
}

// ---- streamed fingerprint responses (v2) ---------------------------------

namespace {

// Shared by both shard shapes (they differ only in integer widths).
template <typename Shard>
std::string EncodeShardImpl(const Shard& shard) {
  std::string out;
  AppendLe64(&out, static_cast<uint64_t>(shard.epoch));
  AppendLe64(&out, static_cast<uint64_t>(shard.shard));
  AppendLe64(&out, static_cast<uint64_t>(shard.first_key));
  AppendLe32(&out, static_cast<uint32_t>(shard.verdicts.size()));
  for (const KeyVerdict& verdict : shard.verdicts) {
    AppendKeyVerdict(&out, verdict);
  }
  return out;
}

}  // namespace

std::string EncodeWireFingerprintShard(const WireFingerprintShard& shard) {
  return EncodeShardImpl(shard);
}

std::string EncodeWireFingerprintShard(const FingerprintShard& shard) {
  return EncodeShardImpl(shard);
}

Result<WireFingerprintShard> DecodeWireFingerprintShard(
    const std::string& payload) {
  WireFingerprintShard shard;
  BinReader reader(payload);
  uint32_t verdicts = 0;
  if (!reader.ReadU64(&shard.epoch) || !reader.ReadU64(&shard.shard) ||
      !reader.ReadU64(&shard.first_key) || !reader.ReadU32(&verdicts)) {
    return Truncated("fingerprint shard");
  }
  if (reader.remaining() / 8 < verdicts) return Truncated("shard verdicts");
  shard.verdicts.reserve(verdicts);
  for (uint32_t i = 0; i < verdicts; ++i) {
    PRIVMARK_ASSIGN_OR_RETURN(KeyVerdict verdict, ReadKeyVerdict(&reader));
    shard.verdicts.push_back(std::move(verdict));
  }
  if (!reader.Exhausted()) {
    return Status::InvalidArgument(
        "wire: fingerprint shard has trailing bytes");
  }
  return shard;
}

std::string EncodeWireResponseStreamedTails(const WireResponse& response) {
  std::string out;
  out.push_back(static_cast<char>(response.kind));
  AppendStatus(&out, response.status);
  AppendStatus(&out, response.journal_status);
  AppendLe64(&out, response.threads_granted);
  if (!response.status.ok()) return out;
  AppendLe32(&out, static_cast<uint32_t>(response.fingerprints.size()));
  for (const FingerprintReport& report : response.fingerprints) {
    AppendFingerprintTail(&out, report);
  }
  return out;
}

Result<WireResponse> DecodeWireResponseStreamedTails(
    const std::string& payload) {
  WireResponse response;
  BinReader reader(payload);
  uint8_t kind = 0;
  if (!reader.ReadU8(&kind)) return Truncated("streamed response");
  if (kind != static_cast<uint8_t>(WireFrameType::kFingerprint)) {
    return Status::InvalidArgument(
        "wire: streamed terminal echoes non-fingerprint kind " +
        std::to_string(kind));
  }
  response.kind = static_cast<WireFrameType>(kind);
  PRIVMARK_RETURN_NOT_OK(
      ReadStatus(&reader, "response status", &response.status));
  PRIVMARK_RETURN_NOT_OK(
      ReadStatus(&reader, "journal status", &response.journal_status));
  if (!reader.ReadU64(&response.threads_granted)) {
    return Truncated("streamed response");
  }
  if (response.status.ok()) {
    uint32_t epochs = 0;
    if (!reader.ReadU32(&epochs)) return Truncated("streamed response");
    if (reader.remaining() / 4 < epochs) return Truncated("streamed response");
    response.fingerprints.resize(epochs);
    for (uint32_t e = 0; e < epochs; ++e) {
      // The tail's ranking length is the epoch's verdict count; the
      // caller checks its reassembled shard verdicts against it.
      PRIVMARK_RETURN_NOT_OK(
          ReadFingerprintTail(&reader, &response.fingerprints[e]));
    }
  }
  if (!reader.Exhausted()) {
    return Status::InvalidArgument(
        "wire: streamed response has trailing bytes");
  }
  return response;
}

// ---- socket I/O ----------------------------------------------------------

bool ReadFullySocket(int fd, char* data, size_t size) {
  if (PRIVMARK_FAILPOINT("wire.read")) return false;
  while (size > 0) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n == 0) return false;  // peer hung up mid-frame
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

bool WriteFullySocket(int fd, const char* data, size_t size) {
  if (PRIVMARK_FAILPOINT("wire.write")) return false;
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace privmark
