// In-process async protect/detect service — the long-lived form of the
// paper's outsourcing scenario: a hospital does not protect one frozen
// relation, it keeps publishing protected batches of a stream (and
// occasionally audits the outsourced copy for its mark).
//
// The service fronts any number of named streams with one shared worker
// pool:
//
//   ServiceConfig cfg;
//   cfg.thread_cap = 8;
//   cfg.journal_dir = "/var/lib/privmark/journals";  // durable streams
//   PrivmarkService service(cfg);
//   service.OpenSession("ward-a", metrics, config);
//   auto f1 = service.ProtectBatch("ward-a", batch1);   // futures
//   auto f2 = service.ProtectBatch("ward-a", batch2);
//   auto f3 = service.Flush("ward-a");
//   auto f4 = service.Detect("ward-a", outsourced_copy);
//   auto f5 = service.CloseSession("ward-a");
//
// Execution model — the two properties everything else hangs off:
//
//  1. Same-session requests SERIALIZE in arrival order. Each session is a
//     strand: one FIFO ServiceQueue drained by one thread owning the
//     session. A session's epoch output is therefore byte-identical to a
//     serial replay of the same request sequence — concurrency never
//     reorders a stream (proven by the service-equivalence property
//     suite across thread caps).
//
//  2. Different-session requests run CONCURRENTLY on one shared
//     ThreadPool, gated by an AdmissionController: each request asks for
//     its session's num_threads (or a per-request override) and is
//     granted at most the free share of the thread cap — excess work
//     queues FIFO instead of oversubscribing (service/admission.h). The
//     grant reaches the agents through a ThreadPool lease whose reported
//     worker count IS the grant, so they shard exactly that wide.
//
// Shutdown drains: once a request is accepted (its future exists), it
// executes — Shutdown() closes intake, lets every strand drain its
// queue, and joins. Accepted work is never dropped. The deadline form,
// Shutdown(deadline_ms), trades that guarantee for boundedness: when
// the deadline passes, still-queued requests fail DeadlineExceeded
// without executing (in-flight ones always finish — they cannot be
// safely interrupted) and the call reports how many were abandoned. An
// abandoned request fails visibly, so its caller can resubmit after
// recovery; everything that DID execute before the deadline is already
// in the journal and survives.
//
// Durability: give ServiceConfig a journal_dir and every session writes
// a write-ahead journal at <journal_dir>/<name>.wal (core/journal.h).
// OpenSession finds an existing journal for the name and RECOVERS the
// session from it — replaying the journaled stream to byte-identical
// state — before accepting new requests; a crash between Submit and the
// future's completion therefore costs at most the un-journaled tail of
// the in-flight batch.
//
// Overload control: per-request deadlines (deadline_ms, counted from
// Submit) fail still-queued or admission-starved requests with
// DeadlineExceeded instead of letting them camp; queue-depth and
// admission-waiter caps shed new load with ResourceExhausted (the
// Status carries a typed retry_after_ms() hint) instead of growing
// unbounded.

#ifndef PRIVMARK_SERVICE_SERVICE_H_
#define PRIVMARK_SERVICE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/session.h"
#include "service/admission.h"

namespace privmark {

/// \brief Ask for "whatever the session's config requests" (the default
/// per-request thread ask).
inline constexpr size_t kSessionThreads = static_cast<size_t>(-1);

/// \brief Per-request deadline sentinel: use the service config's
/// default_deadline_ms.
inline constexpr int64_t kDeadlineFromConfig = -1;

/// \brief The request types the service executes.
enum class RequestKind {
  /// Ingest one batch of original rows (ProtectionSession::Ingest).
  kProtectBatch,
  /// Force an epoch boundary (ProtectionSession::Flush).
  kFlush,
  /// Detect every epoch's mark in a concatenation of the session's
  /// emitted output (ProtectionSession::DetectAcrossEpochs).
  kDetect,
  /// Scan a suspect table against a key registry
  /// (ProtectionSession::FingerprintAcrossEpochs).
  kDetectFingerprint,
  /// Drain the session and retire it; its name becomes reusable.
  kCloseSession,
};

const char* RequestKindToString(RequestKind kind);

/// \brief One typed request. `table` carries the kProtectBatch batch or
/// the kDetect concatenation; unused otherwise.
struct ServiceRequest {
  RequestKind kind = RequestKind::kProtectBatch;
  std::string session;
  Table table;
  /// kDetectFingerprint: the candidate keys to scan against. Shared
  /// (not copied) because a registry can hold thousands of keys and one
  /// audit typically scans many suspect tables against the same one;
  /// callers must not mutate it after submitting.
  std::shared_ptr<const KeyRegistry> registry;
  /// kDetectFingerprint only: when non-null, per-key-shard verdicts are
  /// streamed through this sink as each epoch's scan completes them, in
  /// deterministic (epoch, shard) order, BEFORE the request's future
  /// completes. The sink runs on the session's strand thread, so it must
  /// not block on the request's own future. The concatenation of the
  /// streamed shard verdicts is byte-identical to the final response's
  /// per-epoch FingerprintReport verdicts (fingerprint.h contract).
  FingerprintShardSink fingerprint_sink;
  /// Admission ask for this request; kSessionThreads = the session
  /// config's own num_threads knobs. 0 = the whole thread cap.
  size_t num_threads = kSessionThreads;
  /// Deadline in milliseconds, counted from Submit(). The request fails
  /// with DeadlineExceeded if it is still queued when the deadline
  /// passes (it never executes) and its admission wait is bounded by
  /// the time remaining. kDeadlineFromConfig (-1) = the service's
  /// default_deadline_ms; 0 = no deadline.
  int64_t deadline_ms = kDeadlineFromConfig;
};

/// \brief Terminal snapshot of a closed session (kCloseSession result).
struct SessionStats {
  size_t rows_ingested = 0;
  size_t rows_emitted = 0;
  size_t rows_suppressed = 0;
  std::vector<EpochRecord> epochs;
};

/// \brief One request's result; `kind` says which member is meaningful.
struct ServiceResponse {
  RequestKind kind = RequestKind::kProtectBatch;
  IngestResult ingest;                // kProtectBatch
  EpochOutput epoch;                  // kFlush
  std::vector<DetectReport> reports;  // kDetect
  /// kDetectFingerprint: one registry scan per epoch, in epoch order.
  std::vector<FingerprintReport> fingerprints;
  SessionStats stats;                 // kCloseSession
  /// Threads the admission controller granted this request (1 for
  /// kCloseSession, which does no data-parallel work).
  size_t threads_granted = 1;
  /// The session's sticky journal state as of this request
  /// (ProtectionSession::journal_status): OK until an epoch seals in
  /// memory but its seal record or fsync fails — the request still
  /// succeeds, so this field is how a client learns its stream's
  /// epoch-boundary durability barrier degraded. Always OK for
  /// unjournaled sessions.
  Status journal_status;
};

/// \brief Future type every Submit returns; errors travel as the
/// Result's Status (the service never throws across the future).
using ServiceFuture = std::future<Result<ServiceResponse>>;

/// \brief Thread-safe FIFO of pending requests — one per session strand.
///
/// Push() after Close() fails (intake closed); Pop() drains whatever was
/// accepted before the close and only then returns false. That ordering
/// is the drain guarantee: closing a queue can never drop an accepted
/// item.
class ServiceQueue {
 public:
  struct Item {
    ServiceRequest request;
    std::promise<Result<ServiceResponse>> done;
    /// Absolute deadline, meaningful iff has_deadline: the strand fails
    /// the item without executing it when popped past this point.
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
  };

  /// \brief Enqueues; false iff the queue was closed (item untouched).
  bool Push(Item item);

  /// \brief Blocks for the next item; false when closed *and* drained.
  bool Pop(Item* item);

  /// \brief Closes intake; queued items remain poppable.
  void Close();

  /// \brief Closes intake AND fails every still-queued item's promise
  /// with `status` (the deadline path of Shutdown). Returns how many
  /// items were failed. The item currently executing — already popped —
  /// is not affected.
  size_t Abandon(const Status& status);

  size_t size() const;
  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> items_;  // guarded by mu_
  bool closed_ = false;     // guarded by mu_
};

/// \brief Service-wide configuration.
struct ServiceConfig {
  /// Aggregate worker cap: the shared pool's size and the admission
  /// controller's budget. 0 = hardware concurrency.
  size_t thread_cap = 0;
  /// Directory for per-session write-ahead journals; empty = no
  /// durability. Each session journals to <journal_dir>/<name>.wal with
  /// the name percent-escaped to [A-Za-z0-9._-] — the encoding is
  /// injective, so distinct session names never share a journal file.
  /// OpenSession recovers from an existing journal. The directory must
  /// already exist.
  std::string journal_dir;
  /// Default per-request deadline in milliseconds, applied when a
  /// request leaves deadline_ms at kDeadlineFromConfig. 0 = none.
  int64_t default_deadline_ms = 0;
  /// Submit sheds with ResourceExhausted when the target session's
  /// queue already holds this many requests. 0 = unbounded.
  size_t max_queue_depth = 0;
  /// A request sheds with ResourceExhausted rather than joining the
  /// thread-admission queue behind this many waiters. 0 = unbounded.
  size_t max_admission_waiters = 0;
};

/// \brief What OpenSession found in a pre-existing journal (all zeros
/// for a fresh session).
struct SessionRecovery {
  /// True iff the session was rebuilt from a journal rather than
  /// created fresh.
  bool recovered = false;
  size_t batches_applied = 0;
  size_t epochs_sealed = 0;
  /// True iff a torn tail (partial final record) was discarded.
  bool tail_truncated = false;
  /// Everything the recovered session had emitted before the crash —
  /// the rows the outsourced copy should already hold.
  Table emitted;
};

/// \brief The async protect/detect service.
class PrivmarkService {
 public:
  explicit PrivmarkService(ServiceConfig config = ServiceConfig());
  /// Drains and joins (Shutdown()).
  ~PrivmarkService();

  PrivmarkService(const PrivmarkService&) = delete;
  PrivmarkService& operator=(const PrivmarkService&) = delete;

  /// \brief Registers a named stream: builds its ProtectionSession with
  /// the service's shared pool leased in (any pool the caller put into
  /// `config` is overridden — sessions of one service share one pool by
  /// construction) and starts its strand. AlreadyExists for a live name
  /// and for a closed name whose strand is still draining (retry; the
  /// name frees the moment the drain finishes — OpenSession never
  /// blocks the registry on another session's backlog).
  ///
  /// With a journal_dir configured, the session is durable: a fresh
  /// name starts a new journal; a name whose journal already exists is
  /// RECOVERED from it (byte-identical replay, core/journal.h) before
  /// the strand accepts requests — reopening a crashed (or closed)
  /// stream resumes it where its last fsynced record left off. Pass
  /// `recovery` to learn what was replayed. Recovery replays under the
  /// registry lock, so opening a long journal delays other OpenSession/
  /// Submit calls — recover big streams before going live.
  Status OpenSession(const std::string& name, UsageMetrics metrics,
                     FrameworkConfig config,
                     SessionConfig session = SessionConfig(),
                     SessionRecovery* recovery = nullptr);

  /// \brief Enqueues one typed request; the future completes when the
  /// session's strand has executed it. Unknown/closed session or a
  /// shut-down service yields an already-failed future (never a throw).
  ServiceFuture Submit(ServiceRequest request);

  // Typed conveniences over Submit().
  ServiceFuture ProtectBatch(const std::string& session, Table batch,
                             size_t num_threads = kSessionThreads);
  ServiceFuture Flush(const std::string& session,
                      size_t num_threads = kSessionThreads);
  ServiceFuture Detect(const std::string& session, Table concatenated,
                       size_t num_threads = kSessionThreads);
  ServiceFuture DetectFingerprint(const std::string& session,
                                  Table concatenated,
                                  std::shared_ptr<const KeyRegistry> registry,
                                  size_t num_threads = kSessionThreads);
  /// \brief Streaming fingerprint scan: `sink` receives per-key-shard
  /// verdicts in deterministic (epoch, shard) order on the strand
  /// thread, all before the returned future completes with the same
  /// one-shot response DetectFingerprint would have produced.
  ServiceFuture DetectFingerprintStreamed(
      const std::string& session, Table concatenated,
      std::shared_ptr<const KeyRegistry> registry, FingerprintShardSink sink,
      size_t num_threads = kSessionThreads);
  ServiceFuture CloseSession(const std::string& session);

  /// \brief Closes intake on every session, drains every queue, joins
  /// every strand. Idempotent. Called by the destructor.
  void Shutdown();

  /// \brief Deadline-bounded Shutdown. Closes intake and drains until
  /// `deadline_ms` elapses; requests still queued then fail with
  /// DeadlineExceeded without executing (the in-flight request per
  /// strand always finishes). Returns OK on a clean drain, else
  /// DeadlineExceeded naming how many requests were abandoned. An
  /// abandoned request never executed, so its caller can resubmit it
  /// after recovery; everything executed before the deadline is already
  /// journaled. deadline_ms < 0 waits forever (== Shutdown()).
  Status Shutdown(int64_t deadline_ms);

  /// \brief Live (not yet closed) sessions.
  size_t num_sessions() const;

  /// \brief All strands still held, including closed ones not yet
  /// reaped (diagnostic; reaping happens on OpenSession/Submit).
  size_t num_strands() const;

  const AdmissionController& admission() const { return admission_; }
  size_t thread_cap() const { return admission_.capacity(); }

 private:
  // One named stream: session + its capped pool lease + request strand.
  struct Strand {
    std::unique_ptr<ThreadPool> lease;  // capped view of the shared pool
    std::unique_ptr<ProtectionSession> session;
    ServiceQueue queue;
    std::thread thread;
    size_t default_ask = 1;  // the session config's own thread ask
    bool closing = false;    // guarded by service mu_: CloseSession seen
    // Set by the strand thread as its last action; once true, joining is
    // instantaneous and the strand is reclaimable (ReapFinishedLocked).
    std::atomic<bool> finished{false};
  };

  void RunStrand(Strand* strand);
  Result<ServiceResponse> Execute(Strand* strand, ServiceQueue::Item* item);
  // Joins and erases closed strands whose thread has exited — called on
  // every OpenSession/Submit so a long-lived service does not accumulate
  // retired sessions' state. Requires mu_ held.
  void ReapFinishedLocked();
  static ServiceFuture FailedFuture(Status status);

  const ServiceConfig config_;
  AdmissionController admission_;
  std::unique_ptr<ThreadPool> pool_;  // null iff thread_cap == 1 (serial)

  mutable std::mutex mu_;
  // unique_ptr values: strands must not move once their thread runs.
  std::unordered_map<std::string, std::unique_ptr<Strand>> strands_;
  bool shutdown_ = false;
};

}  // namespace privmark

#endif  // PRIVMARK_SERVICE_SERVICE_H_
