#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace privmark {

namespace {

Status SocketError(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

DaemonClient::DaemonClient(Schema schema)
    : schema_(schema), decoder_(std::move(schema)) {}

DaemonClient::~DaemonClient() { Disconnect(); }

Status DaemonClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("'" + host +
                                   "' is not a numeric IPv4 address");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("cannot create socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st =
        SocketError("cannot connect to " + host + ":" + std::to_string(port));
    ::close(fd);
    return st;
  }
  // Handshake: send our magic, require the daemon to echo it.
  char echo[kWireMagicSize];
  if (!WriteFullySocket(fd, kWireMagic, kWireMagicSize) ||
      !ReadFullySocket(fd, echo, sizeof(echo)) ||
      std::memcmp(echo, kWireMagic, kWireMagicSize) != 0) {
    ::close(fd);
    return Status::IOError("daemon handshake failed: magic mismatch or "
                           "connection lost");
  }
  fd_ = fd;
  // A reconnect starts a fresh dictionary epoch on both ends.
  encoder_ = WireTableEncoder();
  decoder_ = WireTableDecoder(schema_);
  return Status::OK();
}

Result<WireResponse> DaemonClient::Call(const WireRequest& request) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  const std::string payload = EncodeWireRequest(request, &encoder_);
  Result<std::string> frame = EncodeWireFrame(request.type, payload);
  if (!frame.ok()) return frame.status();
  if (!WriteFullySocket(fd_, frame->data(), frame->size())) {
    Disconnect();
    return SocketError("cannot send " +
                       std::string(WireFrameTypeToString(request.type)) +
                       " request");
  }
  char header[kWireFrameHeaderBytes];
  if (!ReadFullySocket(fd_, header, sizeof(header))) {
    Disconnect();
    return Status::IOError(
        "connection lost waiting for the daemon's response (the daemon "
        "closes the connection on a protocol error)");
  }
  Result<size_t> body_length = WireFrameBodyLength(header);
  if (!body_length.ok()) {
    Disconnect();
    return body_length.status();
  }
  std::string body(*body_length, '\0');
  if (!ReadFullySocket(fd_, body.data(), body.size())) {
    Disconnect();
    return Status::IOError("connection lost mid-response");
  }
  Result<WireFrame> decoded =
      DecodeWireFrameBody(header, body.data(), body.size());
  if (!decoded.ok()) {
    Disconnect();
    return decoded.status();
  }
  if (decoded->type != WireFrameType::kResponse) {
    Disconnect();
    return Status::InvalidArgument(
        std::string("daemon sent a ") +
        WireFrameTypeToString(decoded->type) + " frame where a response "
        "was expected");
  }
  Result<WireResponse> response =
      DecodeWireResponse(decoded->payload, &decoder_);
  if (!response.ok()) {
    Disconnect();
    return response.status();
  }
  if (response->kind != request.type) {
    Disconnect();
    return Status::InvalidArgument(
        std::string("daemon answered a ") +
        WireFrameTypeToString(request.type) + " request with a " +
        WireFrameTypeToString(response->kind) + " response");
  }
  return response;
}

void DaemonClient::Disconnect() {
  if (fd_ < 0) return;
  ::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
  fd_ = -1;
}

}  // namespace privmark
