#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace privmark {

namespace {

Status SocketError(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

// Everything the client remembers about one in-flight v2 call. Guarded
// by the client's mu_ (routing fills it, Wait/NextShard drain it).
struct DaemonClient::PendingState {
  uint64_t id = 0;
  WireFrameType type = WireFrameType::kClose;
  bool streamed = false;
  /// Shards queued for NextShard, in arrival order.
  std::deque<WireFingerprintShard> shards;
  /// Reassembly store: per-epoch verdicts accumulated from the shards
  /// (kept separately so NextShard can still drain after the terminal).
  std::vector<std::vector<KeyVerdict>> epoch_verdicts;
  std::vector<uint64_t> epoch_next_shard;
  bool done = false;
  /// Non-OK iff the call failed at the transport/protocol level.
  Status error;
  /// The terminal response; for streamed calls the fingerprint verdicts
  /// are already reattached from epoch_verdicts.
  WireResponse response;
};

DaemonClient::DaemonClient(Schema schema, uint8_t max_protocol_version)
    : schema_(schema),
      max_protocol_version_(max_protocol_version),
      decoder_(std::move(schema)) {}

DaemonClient::~DaemonClient() { Disconnect(); }

Status DaemonClient::Connect(const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> send_lock(send_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  char magic[kWireMagicSize];
  if (!WireMagicFor(max_protocol_version_, magic)) {
    return Status::InvalidArgument("unknown wire protocol version " +
                                   std::to_string(max_protocol_version_));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("'" + host +
                                   "' is not a numeric IPv4 address");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("cannot create socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st =
        SocketError("cannot connect to " + host + ":" + std::to_string(port));
    ::close(fd);
    return st;
  }
  // Handshake: offer our highest version, accept the daemon's echo of
  // any version up to it (the daemon negotiates down, never up).
  char echo[kWireMagicSize];
  uint8_t negotiated = 0;
  if (!WriteFullySocket(fd, magic, kWireMagicSize) ||
      !ReadFullySocket(fd, echo, sizeof(echo)) ||
      (negotiated = WireMagicVersion(echo)) == 0 ||
      negotiated > max_protocol_version_) {
    ::close(fd);
    return Status::IOError("daemon handshake failed: magic mismatch or "
                           "connection lost");
  }
  fd_ = fd;
  protocol_version_ = negotiated;
  // A reconnect starts a fresh dictionary epoch on both ends, a fresh
  // id space, and a clean poison slate.
  encoder_ = WireTableEncoder();
  decoder_ = WireTableDecoder(schema_);
  next_request_id_ = 1;
  pending_.clear();
  poison_ = Status::OK();
  return Status::OK();
}

Result<WireResponse> DaemonClient::Call(const WireRequest& request) {
  uint8_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0) return Status::InvalidArgument("client is not connected");
    version = protocol_version_;
  }
  if (version == kWireProtocolV1) return CallLockStep(request);
  PRIVMARK_ASSIGN_OR_RETURN(PendingCall call, CallAsync(request));
  return call.Wait();
}

Result<WireResponse> DaemonClient::CallLockStep(const WireRequest& request) {
  const std::string payload = EncodeWireRequest(request, &encoder_);
  Result<std::string> frame = EncodeWireFrame(request.type, payload);
  if (!frame.ok()) return frame.status();
  if (!WriteFullySocket(fd_, frame->data(), frame->size())) {
    Disconnect();
    return SocketError("cannot send " +
                       std::string(WireFrameTypeToString(request.type)) +
                       " request");
  }
  char header[kWireFrameHeaderBytes];
  if (!ReadFullySocket(fd_, header, sizeof(header))) {
    Disconnect();
    return Status::IOError(
        "connection lost waiting for the daemon's response (the daemon "
        "closes the connection on a protocol error)");
  }
  Result<size_t> body_length = WireFrameBodyLength(header);
  if (!body_length.ok()) {
    Disconnect();
    return body_length.status();
  }
  std::string body(*body_length, '\0');
  if (!ReadFullySocket(fd_, body.data(), body.size())) {
    Disconnect();
    return Status::IOError("connection lost mid-response");
  }
  Result<WireFrame> decoded =
      DecodeWireFrameBody(header, body.data(), body.size());
  if (!decoded.ok()) {
    Disconnect();
    return decoded.status();
  }
  if (decoded->type != WireFrameType::kResponse) {
    Disconnect();
    return Status::InvalidArgument(
        std::string("daemon sent a ") +
        WireFrameTypeToString(decoded->type) + " frame where a response "
        "was expected");
  }
  Result<WireResponse> response =
      DecodeWireResponse(decoded->payload, &decoder_);
  if (!response.ok()) {
    Disconnect();
    return response.status();
  }
  if (response->kind != request.type) {
    Disconnect();
    return Status::InvalidArgument(
        std::string("daemon answered a ") +
        WireFrameTypeToString(request.type) + " request with a " +
        WireFrameTypeToString(response->kind) + " response");
  }
  return response;
}

Result<DaemonClient::PendingCall> DaemonClient::CallAsync(
    const WireRequest& request) {
  auto state = std::make_shared<PendingState>();
  state->type = request.type;
  state->streamed =
      request.stream && request.type == WireFrameType::kFingerprint;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0) return Status::InvalidArgument("client is not connected");
    if (protocol_version_ != kWireProtocolV2) {
      return Status::InvalidArgument(
          "CallAsync requires a v2 connection (the daemon negotiated "
          "lock-step v1); use Call");
    }
    if (!poison_.ok()) return poison_;
    state->id = next_request_id_++;
    pending_.emplace(state->id, state);
  }

  WireFrame frame;
  frame.type = request.type;
  frame.request_id = state->id;
  frame.final_frame = true;
  frame.streamed = state->streamed;
  {
    // Encode + write under send_mu_: the encoder's dictionary mutation
    // order must equal the order frames hit the socket.
    std::lock_guard<std::mutex> send_lock(send_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!poison_.ok()) {
        pending_.erase(state->id);
        return poison_;
      }
    }
    frame.payload = EncodeWireRequest(request, &encoder_);
    Result<std::string> encoded = EncodeWireFrame(frame, kWireProtocolV2);
    Status failed;
    if (!encoded.ok()) {
      // The dictionaries advanced for bytes that never left: poison.
      failed = encoded.status();
    } else if (!WriteFullySocket(fd_, encoded->data(), encoded->size())) {
      failed = SocketError(
          "cannot send " + std::string(WireFrameTypeToString(request.type)) +
          " request");
    }
    if (!failed.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      PoisonLocked(failed);
      cv_.notify_all();
      return failed;
    }
  }
  PendingCall call;
  call.client_ = this;
  call.state_ = std::move(state);
  return call;
}

Status DaemonClient::PumpOneFrame(int fd) {
  char header[kWireFrameHeaderBytes];
  if (!ReadFullySocket(fd, header, sizeof(header))) {
    return Status::IOError(
        "connection lost waiting for a response frame (the daemon closes "
        "the connection on a protocol error)");
  }
  Result<size_t> body_length = WireFrameBodyLength(header, kWireProtocolV2);
  if (!body_length.ok()) return body_length.status();
  std::string body(*body_length, '\0');
  if (!ReadFullySocket(fd, body.data(), body.size())) {
    return Status::IOError("connection lost mid-response");
  }
  Result<WireFrame> frame =
      DecodeWireFrameBody(header, body.data(), body.size(), kWireProtocolV2);
  if (!frame.ok()) return frame.status();
  if (frame->type != WireFrameType::kResponse &&
      frame->type != WireFrameType::kPartial) {
    return Status::InvalidArgument(
        std::string("daemon sent a ") + WireFrameTypeToString(frame->type) +
        " frame where a response was expected");
  }

  // Decode the payload before taking mu_ — the pumping_ flag already
  // serializes decoder_ access, and table decodes can be large.
  WireFingerprintShard shard;
  WireResponse response;
  if (frame->type == WireFrameType::kPartial) {
    PRIVMARK_ASSIGN_OR_RETURN(shard,
                              DecodeWireFingerprintShard(frame->payload));
  } else if (frame->streamed) {
    PRIVMARK_ASSIGN_OR_RETURN(
        response, DecodeWireResponseStreamedTails(frame->payload));
  } else {
    PRIVMARK_ASSIGN_OR_RETURN(response,
                              DecodeWireResponse(frame->payload, &decoder_));
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(frame->request_id);
  if (it == pending_.end()) {
    return Status::InvalidArgument("daemon answered unknown request id " +
                                   std::to_string(frame->request_id));
  }
  PendingState& state = *it->second;

  if (frame->type == WireFrameType::kPartial) {
    if (!state.streamed) {
      return Status::InvalidArgument(
          "daemon streamed a partial frame for a non-streamed request");
    }
    // The shard sequence contract: epochs in order, ordinals counting
    // up, key runs contiguous from 0 within each epoch.
    const size_t epoch = static_cast<size_t>(shard.epoch);
    if (epoch == state.epoch_verdicts.size()) {
      state.epoch_verdicts.emplace_back();
      state.epoch_next_shard.push_back(0);
    } else if (epoch + 1 != state.epoch_verdicts.size()) {
      return Status::InvalidArgument(
          "daemon streamed shards out of epoch order");
    }
    if (shard.shard != state.epoch_next_shard[epoch]) {
      return Status::InvalidArgument(
          "daemon streamed shards out of shard order");
    }
    ++state.epoch_next_shard[epoch];
    std::vector<KeyVerdict>& verdicts = state.epoch_verdicts[epoch];
    if (shard.first_key != verdicts.size()) {
      return Status::InvalidArgument(
          "daemon streamed a non-contiguous key run");
    }
    verdicts.insert(verdicts.end(), shard.verdicts.begin(),
                    shard.verdicts.end());
    state.shards.push_back(std::move(shard));
    return Status::OK();
  }

  // Terminal response.
  if (frame->streamed != state.streamed) {
    return Status::InvalidArgument(
        "daemon mixed streamed and non-streamed response frames");
  }
  if (response.kind != state.type) {
    return Status::InvalidArgument(
        std::string("daemon answered a ") + WireFrameTypeToString(state.type) +
        " request with a " + WireFrameTypeToString(response.kind) +
        " response");
  }
  if (state.streamed && response.status.ok()) {
    // Reattach the shard verdicts to the tails. The concatenation is
    // byte-identical to a one-shot response by the scan's construction;
    // the counts are validated here so a dropped shard cannot pass
    // silently.
    if (response.fingerprints.size() != state.epoch_verdicts.size()) {
      return Status::InvalidArgument(
          "daemon streamed " + std::to_string(state.epoch_verdicts.size()) +
          " epoch(s) of shards but " +
          std::to_string(response.fingerprints.size()) + " epoch tails");
    }
    for (size_t e = 0; e < response.fingerprints.size(); ++e) {
      if (response.fingerprints[e].ranking.size() !=
          state.epoch_verdicts[e].size()) {
        return Status::InvalidArgument(
            "daemon's shard verdicts disagree with its terminal ranking "
            "length for epoch " + std::to_string(e));
      }
      response.fingerprints[e].verdicts = std::move(state.epoch_verdicts[e]);
    }
    state.epoch_verdicts.clear();
  }
  response.request_id = frame->request_id;
  state.response = std::move(response);
  state.done = true;
  pending_.erase(it);
  return Status::OK();
}

Status DaemonClient::PumpUntil(std::unique_lock<std::mutex>& lock,
                               const std::function<bool()>& ready) {
  for (;;) {
    if (ready()) return Status::OK();
    if (!poison_.ok()) return poison_;
    if (fd_ < 0) return Status::InvalidArgument("client is not connected");
    if (pumping_) {
      // Another caller is the pump leader; wait for it to route a frame
      // (possibly ours) and hand the pump off.
      cv_.wait(lock);
      continue;
    }
    pumping_ = true;
    const int fd = fd_;
    lock.unlock();
    const Status pumped = PumpOneFrame(fd);
    lock.lock();
    pumping_ = false;
    if (!pumped.ok() && poison_.ok()) PoisonLocked(pumped);
    cv_.notify_all();
  }
}

void DaemonClient::PoisonLocked(const Status& status) {
  poison_ = status;
  for (auto& [id, state] : pending_) {
    state->done = true;
    state->error = status;
  }
  pending_.clear();
  // Unblock a pump leader parked in recv: after a poison the connection
  // is unusable either way.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<WireResponse> DaemonClient::PendingCall::Wait() {
  if (state_ == nullptr) {
    return Status::InvalidArgument("Wait on an empty PendingCall");
  }
  std::unique_lock<std::mutex> lock(client_->mu_);
  const Status pumped =
      client_->PumpUntil(lock, [this] { return state_->done; });
  if (!state_->done) return pumped;
  if (!state_->error.ok()) return state_->error;
  return state_->response;
}

Result<bool> DaemonClient::PendingCall::NextShard(WireFingerprintShard* shard) {
  if (state_ == nullptr) {
    return Status::InvalidArgument("NextShard on an empty PendingCall");
  }
  std::unique_lock<std::mutex> lock(client_->mu_);
  const Status pumped = client_->PumpUntil(
      lock, [this] { return !state_->shards.empty() || state_->done; });
  if (!state_->shards.empty()) {
    *shard = std::move(state_->shards.front());
    state_->shards.pop_front();
    return true;
  }
  if (!state_->done) return pumped;
  if (!state_->error.ok()) return state_->error;
  return false;
}

uint64_t DaemonClient::PendingCall::request_id() const {
  return state_ == nullptr ? 0 : state_->id;
}

void DaemonClient::Disconnect() {
  std::lock_guard<std::mutex> send_lock(send_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  DisconnectLocked(lock);
}

void DaemonClient::DisconnectLocked(std::unique_lock<std::mutex>& lock) {
  if (fd_ < 0) return;
  ::shutdown(fd_, SHUT_RDWR);
  // A pump leader may still be inside recv on this fd; closing now
  // could hand the descriptor number to an unrelated open. Wait for the
  // pump to fail out (the shutdown guarantees it does).
  cv_.wait(lock, [this] { return !pumping_; });
  ::close(fd_);
  fd_ = -1;
  protocol_version_ = 0;
  PoisonLocked(Status::IOError("client disconnected"));
  cv_.notify_all();
}

}  // namespace privmark
