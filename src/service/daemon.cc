#include "service/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "core/manifest.h"
#include "watermark/key_registry.h"

namespace privmark {

namespace {

Status SocketError(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

RequestKind RequestKindForFrame(WireFrameType type) {
  switch (type) {
    case WireFrameType::kIngest: return RequestKind::kProtectBatch;
    case WireFrameType::kFlush: return RequestKind::kFlush;
    case WireFrameType::kDetect: return RequestKind::kDetect;
    case WireFrameType::kFingerprint: return RequestKind::kDetectFingerprint;
    default: return RequestKind::kCloseSession;
  }
}

}  // namespace

PrivmarkDaemon::PrivmarkDaemon(DaemonConfig config)
    : config_(std::move(config)), service_(config_.service) {}

PrivmarkDaemon::~PrivmarkDaemon() { (void)Shutdown(-1); }

Status PrivmarkDaemon::Start(uint16_t port) {
  if (listen_fd_ >= 0) {
    return Status::InvalidArgument("daemon already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("cannot create listen socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = SocketError("cannot bind 127.0.0.1:" +
                                  std::to_string(port));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) != 0) {
    const Status st = SocketError("cannot listen");
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const Status st = SocketError("cannot read bound port");
    ::close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void PrivmarkDaemon::AcceptLoop() {
  // Capture the fd once: Shutdown() writes listen_fd_ = -1 after
  // shutting the socket down (which is what actually fails the blocking
  // accept), so re-reading the member here would race that store.
  const int listen_fd = listen_fd_;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Shutdown) or fatal accept error
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ::close(fd);
      return;
    }
    ++accepted_;
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connections_.push_back(std::move(connection));
    raw->thread = std::thread([this, fd] { ServeConnection(fd); });
  }
}

void PrivmarkDaemon::ServeConnection(int fd) {
  // Handshake: expect the client's magic, echo it back. Mismatch =
  // wrong protocol or version; hang up without guessing.
  char magic[kWireMagicSize];
  if (!ReadFullySocket(fd, magic, sizeof(magic)) ||
      std::memcmp(magic, kWireMagic, kWireMagicSize) != 0 ||
      !WriteFullySocket(fd, kWireMagic, kWireMagicSize)) {
    ::shutdown(fd, SHUT_RDWR);
    return;
  }

  // Per-connection codec state; see wire.h on dictionary scoping.
  WireTableEncoder encoder;
  WireTableDecoder decoder(config_.schema);

  for (;;) {
    char header[kWireFrameHeaderBytes];
    if (!ReadFullySocket(fd, header, sizeof(header))) break;
    Result<size_t> body_length = WireFrameBodyLength(header);
    if (!body_length.ok()) break;  // oversized length: protocol error
    std::string body(*body_length, '\0');
    if (!ReadFullySocket(fd, body.data(), body.size())) break;
    Result<WireFrame> frame = DecodeWireFrameBody(header, body.data(),
                                                  body.size());
    if (!frame.ok() || frame->type == WireFrameType::kResponse) break;
    Result<WireRequest> request =
        DecodeWireRequest(frame->type, frame->payload, &decoder);
    if (!request.ok()) break;  // codec state unknowable: hang up

    const WireResponse response = Execute(*request);
    const std::string payload = EncodeWireResponse(response, &encoder);
    Result<std::string> out = EncodeWireFrame(WireFrameType::kResponse,
                                              payload);
    if (!out.ok() || !WriteFullySocket(fd, out->data(), out->size())) break;
  }
  ::shutdown(fd, SHUT_RDWR);
}

WireResponse PrivmarkDaemon::ExecuteOpen(const WireRequest& request) {
  WireResponse response;
  response.kind = WireFrameType::kOpen;
  const WireOpenRequest& open = request.open;

  auto context = std::make_shared<SessionContext>();
  FrameworkConfig& config = context->config;
  config.binning.k = static_cast<size_t>(open.k);
  config.binning.enforce_joint = open.enforce_joint;
  config.binning.encryption_passphrase = open.passphrase;
  config.binning.num_threads = static_cast<size_t>(open.num_threads);
  config.binning.mono.on_unbinnable = open.on_unbinnable == 1
                                          ? UnbinnablePolicy::kSuppress
                                          : UnbinnablePolicy::kError;
  config.watermark.num_threads = config.binning.num_threads;
  config.key = WatermarkKey{open.k1, open.k2, open.eta};
  config.key_id = open.key_id;
  config.auto_epsilon = open.auto_epsilon;

  if (!config_.metrics_for_config) {
    response.status =
        Status::InvalidArgument("daemon has no metrics factory configured");
    return response;
  }
  Result<UsageMetrics> metrics = config_.metrics_for_config(config);
  if (!metrics.ok()) {
    response.status = metrics.status();
    return response;
  }
  context->metrics = *metrics;

  SessionConfig session_config;
  session_config.policy = open.policy == 1 ? RebinPolicy::kRebinOnDrift
                                           : RebinPolicy::kFreezeBins;
  session_config.drift_threshold = open.drift_threshold;

  SessionRecovery recovery;
  response.status = service_.OpenSession(request.session, context->metrics,
                                         config, session_config, &recovery);
  if (!response.status.ok()) return response;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_[request.session] = std::move(context);
  }
  response.open.recovered = recovery.recovered;
  response.open.batches_applied = recovery.batches_applied;
  response.open.epochs_sealed = recovery.epochs_sealed;
  response.open.tail_truncated = recovery.tail_truncated;
  response.open.emitted = std::move(recovery.emitted);
  return response;
}

WireResponse PrivmarkDaemon::Execute(const WireRequest& request) {
  if (request.type == WireFrameType::kOpen) return ExecuteOpen(request);

  WireResponse response;
  response.kind = request.type;

  ServiceRequest service_request;
  service_request.kind = RequestKindForFrame(request.type);
  service_request.session = request.session;
  service_request.table = request.table;
  service_request.num_threads = static_cast<size_t>(request.ask);
  service_request.deadline_ms = request.deadline_ms;
  if (request.type == WireFrameType::kFingerprint) {
    Result<KeyRegistry> registry = KeyRegistry::Parse(request.registry_text);
    if (!registry.ok()) {
      response.status = registry.status();
      return response;
    }
    service_request.registry =
        std::make_shared<const KeyRegistry>(*std::move(registry));
  }

  Result<ServiceResponse> result =
      service_.Submit(std::move(service_request)).get();
  if (!result.ok()) {
    response.status = result.status();
    response.retry_after_ms = RetryAfterMsFromStatus(response.status);
    return response;
  }
  ServiceResponse& executed = *result;
  response.journal_status = executed.journal_status;
  response.threads_granted = executed.threads_granted;

  switch (request.type) {
    case WireFrameType::kIngest:
      response.ingest.epoch = executed.ingest.epoch;
      response.ingest.flushed = executed.ingest.flushed;
      response.ingest.rows_emitted = executed.ingest.rows_emitted;
      response.ingest.rows_suppressed = executed.ingest.rows_suppressed;
      response.ingest.rows_buffered = executed.ingest.rows_buffered;
      response.ingest.emitted = std::move(executed.ingest.emitted);
      break;
    case WireFrameType::kFlush:
      response.flush.epoch = executed.epoch.epoch;
      response.flush.identifier_statistic =
          executed.epoch.outcome.identifier_statistic;
      response.flush.emitted = std::move(executed.epoch.outcome.watermarked);
      break;
    case WireFrameType::kDetect:
      response.reports = std::move(executed.reports);
      break;
    case WireFrameType::kFingerprint:
      response.fingerprints = std::move(executed.fingerprints);
      break;
    case WireFrameType::kClose: {
      std::shared_ptr<SessionContext> context;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = sessions_.find(request.session);
        if (it != sessions_.end()) {
          context = it->second;
          sessions_.erase(it);
        }
      }
      if (context == nullptr) {
        // The service closed a session this daemon never opened — only
        // possible if open raced shutdown; without its config the
        // manifests cannot be rebuilt.
        response.status = Status::InvalidArgument(
            "daemon lost the session context for '" + request.session + "'");
        return response;
      }
      response.close.rows_ingested = executed.stats.rows_ingested;
      response.close.rows_emitted = executed.stats.rows_emitted;
      response.close.rows_suppressed = executed.stats.rows_suppressed;
      for (const EpochRecord& epoch : executed.stats.epochs) {
        WireEpochSummary summary;
        summary.epoch = epoch.epoch;
        summary.rows_emitted = epoch.rows_emitted;
        summary.rows_suppressed = epoch.rows_suppressed;
        summary.wmd_size = epoch.wmd_size;
        summary.identifier_statistic = epoch.identifier_statistic;
        // Serialize server-side: EpochRecord holds tree-pointer state
        // that cannot cross the wire, but its manifest text can — and
        // SerializeManifest is deterministic, so the client's file is
        // byte-identical to a local run's.
        Result<ProtectionManifest> manifest = ManifestFromEpoch(
            epoch, config_.schema, context->metrics, context->config);
        if (!manifest.ok()) {
          response.status = manifest.status();
          return response;
        }
        summary.manifest_text = SerializeManifest(*manifest);
        response.close.epochs.push_back(std::move(summary));
      }
      break;
    }
    default:
      break;
  }
  return response;
}

Status PrivmarkDaemon::Shutdown(int64_t deadline_ms) {
  std::vector<std::unique_ptr<Connection>> connections;
  std::thread accept_thread;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::OK();
    shutdown_ = true;
    connections.swap(connections_);
    accept_thread = std::move(accept_thread_);
  }
  // Closing the listener fails the blocking accept; live connections
  // get their sockets shut down so mid-read threads unblock.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& connection : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  if (accept_thread.joinable()) accept_thread.join();
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
    ::close(connection->fd);
  }
  return service_.Shutdown(deadline_ms);
}

size_t PrivmarkDaemon::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accepted_;
}

}  // namespace privmark
