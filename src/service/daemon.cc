#include "service/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <utility>

#include "core/manifest.h"
#include "service/convert.h"
#include "watermark/key_registry.h"

namespace privmark {

namespace {

Status SocketError(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

PrivmarkDaemon::PrivmarkDaemon(DaemonConfig config)
    : config_(std::move(config)), service_(config_.service) {}

PrivmarkDaemon::~PrivmarkDaemon() { (void)Shutdown(-1); }

Status PrivmarkDaemon::Start(uint16_t port) {
  if (listen_fd_ >= 0) {
    return Status::InvalidArgument("daemon already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("cannot create listen socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = SocketError("cannot bind 127.0.0.1:" +
                                  std::to_string(port));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) != 0) {
    const Status st = SocketError("cannot listen");
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const Status st = SocketError("cannot read bound port");
    ::close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void PrivmarkDaemon::AcceptLoop() {
  // Capture the fd once: Shutdown() writes listen_fd_ = -1 after
  // shutting the socket down (which is what actually fails the blocking
  // accept), so re-reading the member here would race that store.
  const int listen_fd = listen_fd_;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Shutdown) or fatal accept error
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ::close(fd);
      return;
    }
    ++accepted_;
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connections_.push_back(std::move(connection));
    raw->thread = std::thread([this, fd] { ServeConnection(fd); });
  }
}

void PrivmarkDaemon::ServeConnection(int fd) {
  // Handshake: read the client's magic, negotiate down to the lower of
  // the two maxima, echo the negotiated magic. An unknown magic = wrong
  // protocol; hang up without guessing.
  char magic[kWireMagicSize];
  char echo[kWireMagicSize];
  uint8_t version = 0;
  if (!ReadFullySocket(fd, magic, sizeof(magic)) ||
      (version = std::min(WireMagicVersion(magic),
                          config_.max_protocol_version)) == 0 ||
      !WireMagicFor(version, echo) ||
      !WriteFullySocket(fd, echo, kWireMagicSize)) {
    ::shutdown(fd, SHUT_RDWR);
    return;
  }
  if (version == kWireProtocolV1) {
    ServeLockStep(fd);
  } else {
    ServeMultiplexed(fd);
  }
  ::shutdown(fd, SHUT_RDWR);
}

void PrivmarkDaemon::ServeLockStep(int fd) {
  // Per-connection codec state; see wire.h on dictionary scoping.
  WireTableEncoder encoder;
  WireTableDecoder decoder(config_.schema);

  for (;;) {
    char header[kWireFrameHeaderBytes];
    if (!ReadFullySocket(fd, header, sizeof(header))) break;
    Result<size_t> body_length = WireFrameBodyLength(header);
    if (!body_length.ok()) break;  // oversized length: protocol error
    std::string body(*body_length, '\0');
    if (!ReadFullySocket(fd, body.data(), body.size())) break;
    Result<WireFrame> frame = DecodeWireFrameBody(header, body.data(),
                                                  body.size());
    if (!frame.ok() || frame->type == WireFrameType::kResponse) break;
    Result<WireRequest> request =
        DecodeWireRequest(frame->type, frame->payload, &decoder);
    if (!request.ok()) break;  // codec state unknowable: hang up

    const WireResponse response = Execute(*request);
    const std::string payload = EncodeWireResponse(response, &encoder);
    Result<std::string> out = EncodeWireFrame(WireFrameType::kResponse,
                                              payload);
    if (!out.ok() || !WriteFullySocket(fd, out->data(), out->size())) break;
  }
}

void PrivmarkDaemon::WriteResponseV2(MuxConnection* mux, uint64_t request_id,
                                     const WireResponse& response,
                                     bool streamed) {
  std::lock_guard<std::mutex> lock(mux->write_mu);
  if (mux->broken) return;
  WireFrame frame;
  frame.type = WireFrameType::kResponse;
  frame.request_id = request_id;
  frame.final_frame = true;
  frame.streamed = streamed;
  // Encode under write_mu: the encoder's dictionary mutations must land
  // on the wire in the order they happened.
  frame.payload = streamed ? EncodeWireResponseStreamedTails(response)
                           : EncodeWireResponse(response, &mux->encoder);
  Result<std::string> encoded = EncodeWireFrame(frame, kWireProtocolV2);
  if (!encoded.ok() ||
      !WriteFullySocket(mux->fd, encoded->data(), encoded->size())) {
    // An unencodable frame also breaks the connection: the dictionary
    // already advanced for bytes that never left.
    mux->broken = true;
  }
}

void PrivmarkDaemon::WritePartialV2(MuxConnection* mux, uint64_t request_id,
                                    const FingerprintShard& shard) {
  std::lock_guard<std::mutex> lock(mux->write_mu);
  if (mux->broken) return;
  WireFrame frame;
  frame.type = WireFrameType::kPartial;
  frame.request_id = request_id;
  frame.final_frame = false;
  frame.streamed = true;
  frame.payload = EncodeWireFingerprintShard(shard);
  Result<std::string> encoded = EncodeWireFrame(frame, kWireProtocolV2);
  if (!encoded.ok() ||
      !WriteFullySocket(mux->fd, encoded->data(), encoded->size())) {
    mux->broken = true;
  }
}

void PrivmarkDaemon::ServeMultiplexed(int fd) {
  MuxConnection mux;
  mux.fd = fd;
  WireTableDecoder decoder(config_.schema);

  // One queued unit of writer work: a dispatched request whose future
  // the writer completes and answers.
  struct Pending {
    uint64_t request_id = 0;
    WireFrameType type = WireFrameType::kClose;
    std::string session;
    ServiceFuture future;
    bool streamed = false;
  };
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<Pending> queue;   // guarded by queue_mu
  size_t busy = 0;             // guarded by queue_mu
  bool closed = false;         // guarded by queue_mu
  std::vector<std::thread> writers;

  const size_t cap = std::max<size_t>(1, config_.max_inflight_per_connection);
  auto writer_loop = [&] {
    std::unique_lock<std::mutex> lock(queue_mu);
    for (;;) {
      queue_cv.wait(lock, [&] { return closed || !queue.empty(); });
      if (queue.empty()) return;  // closed and drained
      Pending pending = std::move(queue.front());
      queue.pop_front();
      ++busy;
      lock.unlock();
      // Completing the future happens-after every partial the strand
      // streamed for this request, so the terminal frame always trails
      // its partials on the wire.
      WireResponse response = FinishResponse(pending.type, pending.session,
                                             pending.future.get());
      response.request_id = pending.request_id;
      WriteResponseV2(&mux, pending.request_id, response, pending.streamed);
      lock.lock();
      --busy;
      queue_cv.notify_all();  // the reader may be parked at the cap
    }
  };

  for (;;) {
    char header[kWireFrameHeaderBytes];
    if (!ReadFullySocket(fd, header, sizeof(header))) break;
    Result<size_t> body_length = WireFrameBodyLength(header, kWireProtocolV2);
    if (!body_length.ok()) break;
    std::string body(*body_length, '\0');
    if (!ReadFullySocket(fd, body.data(), body.size())) break;
    Result<WireFrame> frame =
        DecodeWireFrameBody(header, body.data(), body.size(), kWireProtocolV2);
    // Clients send single-frame request types only; the streamed flag is
    // only meaningful on a fingerprint request (asking for a streamed
    // response).
    if (!frame.ok() || frame->type == WireFrameType::kResponse ||
        frame->type == WireFrameType::kPartial || !frame->final_frame ||
        (frame->streamed && frame->type != WireFrameType::kFingerprint)) {
      break;
    }
    Result<WireRequest> request =
        DecodeWireRequest(frame->type, frame->payload, &decoder);
    if (!request.ok()) break;  // codec state unknowable: hang up
    request->stream = frame->streamed;

    if (frame->type == WireFrameType::kOpen) {
      // Inline on the reader: the open must complete before any later
      // pipelined request for the new session is submitted.
      WireResponse response = ExecuteOpen(*request);
      response.request_id = frame->request_id;
      WriteResponseV2(&mux, frame->request_id, response, false);
    } else {
      Result<ServiceRequest> service_request = ToServiceRequest(*request);
      if (!service_request.ok()) {
        // Conversion failures (e.g. an unparsable registry) are
        // service-level: answer, keep the connection.
        WireResponse response = ToWireResponse(
            frame->type, Result<ServiceResponse>(service_request.status()));
        response.request_id = frame->request_id;
        WriteResponseV2(&mux, frame->request_id, response, false);
      } else {
        if (request->stream) {
          const uint64_t request_id = frame->request_id;
          MuxConnection* mux_ptr = &mux;
          service_request->fingerprint_sink =
              [this, mux_ptr, request_id](const FingerprintShard& shard) {
                WritePartialV2(mux_ptr, request_id, shard);
              };
        }
        Pending pending;
        pending.request_id = frame->request_id;
        pending.type = frame->type;
        pending.session = request->session;
        pending.streamed = request->stream;
        {
          // Backpressure: stop reading at the inflight cap.
          std::unique_lock<std::mutex> lock(queue_mu);
          queue_cv.wait(lock, [&] { return queue.size() + busy < cap; });
        }
        // Submit on the reader so same-session submission order equals
        // frame arrival order (the strand executes in that order).
        pending.future = service_.Submit(*std::move(service_request));
        {
          std::lock_guard<std::mutex> lock(queue_mu);
          queue.push_back(std::move(pending));
          if (writers.size() < cap && writers.size() < queue.size() + busy) {
            writers.emplace_back(writer_loop);
          }
        }
        queue_cv.notify_one();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mux.write_mu);
      if (mux.broken) break;
    }
  }

  // Teardown: stop reading, let the writers drain every dispatched
  // future (accepted work always executes — and its partials/responses
  // simply fail to write if the socket is gone), then hang up.
  {
    std::lock_guard<std::mutex> lock(queue_mu);
    closed = true;
  }
  queue_cv.notify_all();
  for (std::thread& writer : writers) writer.join();
}

WireResponse PrivmarkDaemon::ExecuteOpen(const WireRequest& request) {
  WireResponse response;
  response.kind = WireFrameType::kOpen;
  const WireOpenRequest& open = request.open;

  auto context = std::make_shared<SessionContext>();
  FrameworkConfig& config = context->config;
  config.binning.k = static_cast<size_t>(open.k);
  config.binning.enforce_joint = open.enforce_joint;
  config.binning.encryption_passphrase = open.passphrase;
  config.binning.num_threads = static_cast<size_t>(open.num_threads);
  config.binning.mono.on_unbinnable = open.on_unbinnable == 1
                                          ? UnbinnablePolicy::kSuppress
                                          : UnbinnablePolicy::kError;
  config.watermark.num_threads = config.binning.num_threads;
  config.key = WatermarkKey{open.k1, open.k2, open.eta};
  config.key_id = open.key_id;
  config.auto_epsilon = open.auto_epsilon;

  if (!config_.metrics_for_config) {
    response.status =
        Status::InvalidArgument("daemon has no metrics factory configured");
    return response;
  }
  Result<UsageMetrics> metrics = config_.metrics_for_config(config);
  if (!metrics.ok()) {
    response.status = metrics.status();
    return response;
  }
  context->metrics = *metrics;

  SessionConfig session_config;
  session_config.policy = open.policy == 1 ? RebinPolicy::kRebinOnDrift
                                           : RebinPolicy::kFreezeBins;
  session_config.drift_threshold = open.drift_threshold;

  SessionRecovery recovery;
  response.status = service_.OpenSession(request.session, context->metrics,
                                         config, session_config, &recovery);
  if (!response.status.ok()) return response;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_[request.session] = std::move(context);
  }
  response.open.recovered = recovery.recovered;
  response.open.batches_applied = recovery.batches_applied;
  response.open.epochs_sealed = recovery.epochs_sealed;
  response.open.tail_truncated = recovery.tail_truncated;
  response.open.emitted = std::move(recovery.emitted);
  return response;
}

WireResponse PrivmarkDaemon::Execute(const WireRequest& request) {
  if (request.type == WireFrameType::kOpen) return ExecuteOpen(request);

  Result<ServiceRequest> service_request = ToServiceRequest(request);
  if (!service_request.ok()) {
    return ToWireResponse(request.type,
                          Result<ServiceResponse>(service_request.status()));
  }
  return FinishResponse(request.type, request.session,
                        service_.Submit(*std::move(service_request)).get());
}

WireResponse PrivmarkDaemon::FinishResponse(WireFrameType type,
                                            const std::string& session,
                                            Result<ServiceResponse> result) {
  EpochManifestFn manifest_fn;
  if (type == WireFrameType::kClose && result.ok()) {
    std::shared_ptr<SessionContext> context;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = sessions_.find(session);
      if (it != sessions_.end()) {
        context = it->second;
        sessions_.erase(it);
      }
    }
    if (context == nullptr) {
      // The service closed a session this daemon never opened — only
      // possible if open raced shutdown; without its config the
      // manifests cannot be rebuilt.
      WireResponse response;
      response.kind = type;
      response.status = Status::InvalidArgument(
          "daemon lost the session context for '" + session + "'");
      response.threads_granted = 0;
      return response;
    }
    // Serialize server-side: EpochRecord holds tree-pointer state that
    // cannot cross the wire, but its manifest text can — and
    // SerializeManifest is deterministic, so the client's file is
    // byte-identical to a local run's.
    manifest_fn = [this, context](
                      const EpochRecord& epoch) -> Result<std::string> {
      PRIVMARK_ASSIGN_OR_RETURN(
          ProtectionManifest manifest,
          ManifestFromEpoch(epoch, config_.schema, context->metrics,
                            context->config));
      return SerializeManifest(manifest);
    };
  }
  return ToWireResponse(type, std::move(result), manifest_fn);
}

Status PrivmarkDaemon::Shutdown(int64_t deadline_ms) {
  std::vector<std::unique_ptr<Connection>> connections;
  std::thread accept_thread;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::OK();
    shutdown_ = true;
    connections.swap(connections_);
    accept_thread = std::move(accept_thread_);
  }
  // Closing the listener fails the blocking accept; live connections
  // get their sockets shut down so mid-read threads unblock.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& connection : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  if (accept_thread.joinable()) accept_thread.join();
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
    ::close(connection->fd);
  }
  return service_.Shutdown(deadline_ms);
}

size_t PrivmarkDaemon::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accepted_;
}

}  // namespace privmark
