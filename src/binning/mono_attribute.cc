#include "binning/mono_attribute.h"

#include "common/parallel.h"

namespace privmark {

namespace {

// Sums leaf counts into interior nodes: children always have larger ids
// than parents, so one reverse pass suffices.
void AccumulateSubtreeSums(const DomainHierarchy& tree,
                           std::vector<size_t>* counts) {
  for (size_t i = tree.num_nodes(); i-- > 1;) {
    const NodeId parent = tree.Parent(static_cast<NodeId>(i));
    if (parent != kInvalidNode) (*counts)[parent] += (*counts)[i];
  }
}

// The paper's SubGMN for the simple strategy: returns the minimal
// generalization nodes within the subtree rooted at `root`, assuming
// counts[root] >= k. `inspected` counts how many node counts the search
// reads (the downward-vs-upward work metric).
void SubGmnSimple(const DomainHierarchy& tree,
                  const std::vector<size_t>& counts, size_t k, NodeId root,
                  std::vector<NodeId>* out, size_t* inspected) {
  if (tree.IsLeaf(root)) {
    out->push_back(root);
    return;
  }
  // forany child with < k tuples: this node is minimal (Fig. 5 line 3-5).
  for (NodeId child : tree.Children(root)) {
    ++*inspected;
    if (counts[child] < k) {
      out->push_back(root);
      return;
    }
  }
  for (NodeId child : tree.Children(root)) {
    SubGmnSimple(tree, counts, k, child, out, inspected);
  }
}

// Aggressive strategy: descend whenever any child satisfies k; children
// with 0 < count < k are recorded for suppression, empty children kept.
void SubGmnAggressive(const DomainHierarchy& tree,
                      const std::vector<size_t>& counts, size_t k,
                      NodeId root, std::vector<NodeId>* out,
                      std::vector<NodeId>* suppressed) {
  if (tree.IsLeaf(root)) {
    out->push_back(root);
    return;
  }
  bool any_child_satisfies = false;
  for (NodeId child : tree.Children(root)) {
    if (counts[child] >= k) {
      any_child_satisfies = true;
      break;
    }
  }
  if (!any_child_satisfies) {
    out->push_back(root);
    return;
  }
  for (NodeId child : tree.Children(root)) {
    if (counts[child] >= k) {
      SubGmnAggressive(tree, counts, k, child, out, suppressed);
    } else {
      // Keep the node so the cover stays valid; 0 < count < k means its
      // tuples get suppressed.
      out->push_back(child);
      if (counts[child] > 0) suppressed->push_back(child);
    }
  }
}

}  // namespace

Result<std::vector<size_t>> CountPerNode(const DomainHierarchy& tree,
                                         const std::vector<Value>& values) {
  std::vector<size_t> counts(tree.num_nodes(), 0);
  for (const Value& v : values) {
    PRIVMARK_ASSIGN_OR_RETURN(NodeId leaf, tree.LeafForValue(v));
    ++counts[leaf];
  }
  AccumulateSubtreeSums(tree, &counts);
  return counts;
}

Result<std::vector<size_t>> CountPerNode(const DomainHierarchy& tree,
                                         const std::vector<NodeId>& leaf_ids,
                                         ThreadPool* pool) {
  // Per-shard leaf counting merged in shard order. Counts are integers, so
  // the merged histogram is identical to the serial one for any shard
  // count; the first failing shard covers the earliest rows, so the error
  // (if any) is the same one a serial scan reports.
  PRIVMARK_ASSIGN_OR_RETURN(
      std::vector<size_t> counts,
      ParallelReduce<std::vector<size_t>>(
          pool, leaf_ids.size(), std::vector<size_t>(tree.num_nodes(), 0),
          [&](size_t, size_t begin,
              size_t end) -> Result<std::vector<size_t>> {
            std::vector<size_t> local(tree.num_nodes(), 0);
            for (size_t r = begin; r < end; ++r) {
              const NodeId leaf = leaf_ids[r];
              if (leaf < 0 || static_cast<size_t>(leaf) >= tree.num_nodes()) {
                return Status::OutOfRange("CountPerNode: leaf id " +
                                          std::to_string(leaf) +
                                          " out of range");
              }
              ++local[leaf];
            }
            return local;
          },
          [](std::vector<size_t>* acc, std::vector<size_t>&& local) {
            for (size_t i = 0; i < acc->size(); ++i) (*acc)[i] += local[i];
          }));
  AccumulateSubtreeSums(tree, &counts);
  return counts;
}

Result<size_t> NumTuple(const DomainHierarchy& tree, NodeId node,
                        const std::vector<Value>& values) {
  PRIVMARK_ASSIGN_OR_RETURN(std::vector<size_t> counts,
                            CountPerNode(tree, values));
  return NumTupleFromCounts(tree, node, counts);
}

Result<size_t> NumTupleFromCounts(const DomainHierarchy& tree, NodeId node,
                                  const std::vector<size_t>& counts) {
  if (node < 0 || static_cast<size_t>(node) >= tree.num_nodes()) {
    return Status::OutOfRange("NumTuple: node id out of range");
  }
  if (counts.size() != tree.num_nodes()) {
    return Status::InvalidArgument(
        "NumTuple: counts cover " + std::to_string(counts.size()) +
        " nodes, tree has " + std::to_string(tree.num_nodes()));
  }
  return counts[node];
}

Result<MonoBinningResult> MonoAttributeBin(const GeneralizationSet& maximal,
                                           const std::vector<Value>& values,
                                           const MonoBinningOptions& options) {
  PRIVMARK_ASSIGN_OR_RETURN(std::vector<size_t> counts,
                            CountPerNode(*maximal.tree(), values));
  return MonoAttributeBinCounts(maximal, counts, options);
}

Result<MonoBinningResult> MonoAttributeBinEncoded(
    const GeneralizationSet& maximal, const EncodedColumn& column,
    const MonoBinningOptions& options, ThreadPool* pool) {
  if (column.tree() != maximal.tree()) {
    return Status::InvalidArgument(
        "MonoAttributeBin: encoded column and maximal nodes use different "
        "trees");
  }
  PRIVMARK_ASSIGN_OR_RETURN(std::vector<size_t> counts,
                            CountPerNode(*maximal.tree(), column.ids(), pool));
  return MonoAttributeBinCounts(maximal, counts, options);
}

Result<MonoBinningResult> MonoAttributeBinCounts(
    const GeneralizationSet& maximal, const std::vector<size_t>& counts,
    const MonoBinningOptions& options) {
  if (options.k < 1) {
    return Status::InvalidArgument("MonoAttributeBin: k must be >= 1");
  }
  const DomainHierarchy& tree = *maximal.tree();
  if (counts.size() != tree.num_nodes()) {
    return Status::InvalidArgument(
        "MonoAttributeBin: counts cover " + std::to_string(counts.size()) +
        " nodes, tree has " + std::to_string(tree.num_nodes()));
  }

  std::vector<NodeId> mingends;
  std::vector<NodeId> suppressed;
  size_t suppressed_tuples = 0;

  size_t nodes_inspected = 0;
  // GenMinNd (Fig. 5): process each maximal generalization node's subtree.
  for (NodeId max_node : maximal.nodes()) {
    ++nodes_inspected;
    const size_t count = counts[max_node];
    if (count == 0) {
      // Empty subtree: keep the maximal node so the cover stays valid.
      mingends.push_back(max_node);
      continue;
    }
    if (count < options.k) {
      if (options.on_unbinnable == UnbinnablePolicy::kError) {
        return Status::Unbinnable(
            "attribute '" + tree.attribute() + "': subtree '" +
            tree.node(max_node).label + "' holds " + std::to_string(count) +
            " tuple(s) < k=" + std::to_string(options.k) +
            " within the usage metrics");
      }
      mingends.push_back(max_node);
      suppressed.push_back(max_node);
      suppressed_tuples += count;
      continue;
    }
    if (options.strategy == MinimalityStrategy::kSimple) {
      SubGmnSimple(tree, counts, options.k, max_node, &mingends,
                   &nodes_inspected);
    } else {
      std::vector<NodeId> agg_suppressed;
      SubGmnAggressive(tree, counts, options.k, max_node, &mingends,
                       &agg_suppressed);
      if (!agg_suppressed.empty() &&
          options.on_unbinnable == UnbinnablePolicy::kError) {
        return Status::Unbinnable(
            "attribute '" + tree.attribute() +
            "': aggressive strategy requires suppressing " +
            std::to_string(agg_suppressed.size()) +
            " sub-k node(s); rerun with UnbinnablePolicy::kSuppress");
      }
      for (NodeId nd : agg_suppressed) {
        suppressed.push_back(nd);
        suppressed_tuples += counts[nd];
      }
    }
  }

  PRIVMARK_ASSIGN_OR_RETURN(
      GeneralizationSet minimal,
      GeneralizationSet::Create(&tree, std::move(mingends)));
  MonoBinningResult result{std::move(minimal), std::move(suppressed),
                           suppressed_tuples, nodes_inspected};
  return result;
}

}  // namespace privmark
