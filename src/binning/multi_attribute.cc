#include "binning/multi_attribute.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>

#include "common/parallel.h"

namespace privmark {

namespace {

// Per-row leaf ids for one column (computed once; generalizations change,
// leaves do not). When the caller already holds an EncodedView, its column
// is borrowed instead of re-resolving cells.
Result<std::vector<NodeId>> RowLeaves(const Table& table, size_t column,
                                      const DomainHierarchy& tree) {
  std::vector<NodeId> leaves(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    PRIVMARK_ASSIGN_OR_RETURN(leaves[r], tree.LeafForValue(table.at(r, column)));
  }
  return leaves;
}

// FNV-1a over the node-id vector; bins are only scanned for < k violations
// and point-queried, so hashed (unordered) grouping is free speed.
struct NodeVectorHash {
  size_t operator()(const std::vector<NodeId>& key) const {
    uint64_t h = 1469598103934665603ull;
    for (const NodeId id : key) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(id));
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

using BinSizeMap =
    std::unordered_map<std::vector<NodeId>, size_t, NodeVectorHash>;

// Groups rows by their generalization-node vector; returns bin sizes keyed
// by the node vector. Columns are borrowed (pointers), matching how the
// search holds a caller's EncodedView without copying it. With a pool the
// rows shard contiguously into per-shard maps folded in shard order —
// integer sums, so the merged map's contents equal the serial map's (and
// callers only point-query or scan it, never depend on bucket order).
Result<BinSizeMap> BinSizes(
    const std::vector<const std::vector<NodeId>*>& row_leaves,
    const std::vector<GeneralizationSet>& gens, ThreadPool* pool = nullptr) {
  if (row_leaves.empty()) return BinSizeMap{};
  const size_t num_rows = row_leaves[0]->size();
  return ParallelReduce<BinSizeMap>(
      pool, num_rows, BinSizeMap{},
      [&](size_t, size_t begin, size_t end) -> Result<BinSizeMap> {
        BinSizeMap local;
        std::vector<NodeId> key(gens.size());
        for (size_t r = begin; r < end; ++r) {
          for (size_t c = 0; c < gens.size(); ++c) {
            PRIVMARK_ASSIGN_OR_RETURN(key[c],
                                      gens[c].NodeForLeaf((*row_leaves[c])[r]));
          }
          ++local[key];
        }
        return local;
      },
      [](BinSizeMap* acc, BinSizeMap&& local) {
        for (auto& [key, count] : local) (*acc)[key] += count;
      });
}

double TotalSpecificityLoss(const std::vector<GeneralizationSet>& gens) {
  double total = 0;
  for (const auto& g : gens) total += g.SpecificityLoss();
  return total;
}

// One greedy merge step: replace all members under `parent` with `parent`.
struct MergeStep {
  size_t column;
  NodeId parent;
  size_t members_merged;   // how many current members the step removes
  double delta_loss;       // specificity-loss increase
  size_t violating_covered;  // rows in sub-k bins whose node is under parent
};

}  // namespace

Result<bool> IsJointlyKAnonymous(const Table& table,
                                 const std::vector<size_t>& qi_columns,
                                 const std::vector<GeneralizationSet>& gens,
                                 size_t k) {
  std::vector<std::vector<NodeId>> owned;
  owned.reserve(qi_columns.size());
  std::vector<const std::vector<NodeId>*> row_leaves;
  row_leaves.reserve(qi_columns.size());
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    PRIVMARK_ASSIGN_OR_RETURN(
        std::vector<NodeId> leaves,
        RowLeaves(table, qi_columns[c], *gens[c].tree()));
    owned.push_back(std::move(leaves));
    row_leaves.push_back(&owned.back());
  }
  PRIVMARK_ASSIGN_OR_RETURN(auto bins, BinSizes(row_leaves, gens));
  for (const auto& [key, size] : bins) {
    if (size < k) return false;
  }
  return true;
}

Result<MultiBinningResult> MultiAttributeBin(
    const Table& table, const std::vector<size_t>& qi_columns,
    const std::vector<GeneralizationSet>& minimal,
    const std::vector<GeneralizationSet>& maximal,
    const MultiBinningOptions& options, const EncodedView* view,
    ThreadPool* pool) {
  const size_t num_cols = qi_columns.size();
  if (minimal.size() != num_cols || maximal.size() != num_cols) {
    return Status::InvalidArgument(
        "MultiAttributeBin: minimal/maximal size mismatch with qi_columns");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("MultiAttributeBin: k must be >= 1");
  }
  for (size_t c = 0; c < num_cols; ++c) {
    if (!minimal[c].IsRefinementOf(maximal[c])) {
      return Status::InvalidArgument(
          "MultiAttributeBin: minimal nodes of column " + std::to_string(c) +
          " are not a refinement of its maximal nodes");
    }
  }

  if (view != nullptr && view->num_columns() != num_cols) {
    return Status::InvalidArgument(
        "MultiAttributeBin: encoded view covers " +
        std::to_string(view->num_columns()) + " columns, expected " +
        std::to_string(num_cols));
  }

  // Per-column row leaves: borrowed by pointer from the caller's encoded
  // view when available (no copies), resolved once into `owned` otherwise.
  std::vector<std::vector<NodeId>> owned;
  owned.reserve(num_cols);
  std::vector<const std::vector<NodeId>*> row_leaves;
  row_leaves.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    if (view != nullptr) {
      if (view->column(c).tree() != minimal[c].tree()) {
        return Status::InvalidArgument(
            "MultiAttributeBin: encoded view column " + std::to_string(c) +
            " uses a different tree than its minimal nodes");
      }
      row_leaves.push_back(&view->column(c).ids());
      continue;
    }
    PRIVMARK_ASSIGN_OR_RETURN(
        std::vector<NodeId> leaves,
        RowLeaves(table, qi_columns[c], *minimal[c].tree()));
    owned.push_back(std::move(leaves));
    row_leaves.push_back(&owned.back());
  }

  // Row-sharded variant for the top-level checks; candidate-sharded code
  // paths below pass no pool of their own (ThreadPool::Run is fork-join
  // and not reentrant), keeping exactly one parallel dimension per stage.
  auto jointly_k_anonymous_on =
      [&](const std::vector<GeneralizationSet>& gens,
          ThreadPool* check_pool) -> Result<bool> {
    PRIVMARK_ASSIGN_OR_RETURN(auto bins,
                              BinSizes(row_leaves, gens, check_pool));
    for (const auto& [key, size] : bins) {
      if (size < options.k) return false;
    }
    return true;
  };
  auto jointly_k_anonymous =
      [&](const std::vector<GeneralizationSet>& gens) -> Result<bool> {
    return jointly_k_anonymous_on(gens, pool);
  };

  MultiBinningResult result;

  // Fast path: the minimal nodes may already be jointly k-anonymous.
  PRIVMARK_ASSIGN_OR_RETURN(bool min_ok, jointly_k_anonymous(minimal));
  if (min_ok) {
    result.ultimate = minimal;
    result.candidates_considered = 1;
    result.already_satisfied = true;
    result.total_specificity_loss = TotalSpecificityLoss(minimal);
    return result;
  }

  // The data is binnable only if the all-maximal combination works.
  PRIVMARK_ASSIGN_OR_RETURN(bool max_ok, jointly_k_anonymous(maximal));
  if (!max_ok) {
    return Status::Unbinnable(
        "even the maximal generalization nodes are not jointly " +
        std::to_string(options.k) + "-anonymous; the data is not binnable "
        "within the usage metrics");
  }

  if (options.strategy == SearchStrategy::kExhaustive) {
    // Fig. 7: enumerate allowable generalizations per column, take the
    // cross product, keep valid ones, select the least specificity loss.
    std::vector<std::vector<GeneralizationSet>> allowable(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      PRIVMARK_ASSIGN_OR_RETURN(
          allowable[c],
          EnumerateBetween(minimal[c], maximal[c], options.max_enumerations));
    }
    size_t combo_count = 1;
    for (size_t c = 0; c < num_cols; ++c) {
      if (combo_count > options.max_enumerations / allowable[c].size() + 1) {
        return Status::CapacityExceeded(
            "exhaustive multi-attribute binning would evaluate more than " +
            std::to_string(options.max_enumerations) + " combinations");
      }
      combo_count *= allowable[c].size();
    }
    if (combo_count > options.max_enumerations) {
      return Status::CapacityExceeded(
          "exhaustive multi-attribute binning would evaluate " +
          std::to_string(combo_count) + " combinations (cap " +
          std::to_string(options.max_enumerations) + ")");
    }

    // Candidates are independent: shard the enumeration index space and
    // fold the per-shard winners in shard order. Each shard keeps the
    // serial pruning rule (k-check only on a strict loss improvement), so
    // its winner is the earliest minimal-loss valid candidate of its
    // range; strict-< folding then picks the earliest global one — the
    // exact candidate the serial odometer loop selects. The k-checks
    // inside a shard run serially (one parallel dimension: candidates).
    struct ShardBest {
      double loss = std::numeric_limits<double>::infinity();
      std::vector<GeneralizationSet> gens;
    };
    PRIVMARK_ASSIGN_OR_RETURN(
        ShardBest best,
        ParallelReduce<ShardBest>(
            pool, combo_count, ShardBest{},
            [&](size_t, size_t begin, size_t end) -> Result<ShardBest> {
              ShardBest local;
              // Mixed-radix decomposition of the start index (column 0 is
              // the fastest-advancing digit, as in the serial loop).
              std::vector<size_t> odometer(num_cols, 0);
              size_t index = begin;
              for (size_t c = 0; c < num_cols; ++c) {
                odometer[c] = index % allowable[c].size();
                index /= allowable[c].size();
              }
              std::vector<GeneralizationSet> candidate(num_cols);
              for (size_t iter = begin; iter < end; ++iter) {
                for (size_t c = 0; c < num_cols; ++c) {
                  candidate[c] = allowable[c][odometer[c]];
                }
                const double loss = TotalSpecificityLoss(candidate);
                if (loss < local.loss) {
                  PRIVMARK_ASSIGN_OR_RETURN(
                      bool ok, jointly_k_anonymous_on(candidate, nullptr));
                  if (ok) {
                    local.loss = loss;
                    local.gens = candidate;
                  }
                }
                for (size_t c = 0; c < num_cols; ++c) {
                  if (++odometer[c] < allowable[c].size()) break;
                  odometer[c] = 0;
                }
              }
              return local;
            },
            [](ShardBest* acc, ShardBest&& local) {
              if (local.loss < acc->loss) *acc = std::move(local);
            }));
    result.candidates_considered = combo_count;
    if (best.gens.empty()) {
      return Status::Unbinnable(
          "no allowable generalization combination is jointly k-anonymous");
    }
    result.ultimate = std::move(best.gens);
    result.total_specificity_loss = best.loss;
    return result;
  }

  // Greedy strategy: start at the minimal nodes; while some bin is smaller
  // than k, apply the parent-merge with the best
  // (violating-rows-covered / specificity-loss) ratio.
  std::vector<GeneralizationSet> current = minimal;
  for (;;) {
    PRIVMARK_ASSIGN_OR_RETURN(auto bins, BinSizes(row_leaves, current, pool));
    // Per-row current nodes and per-row violation flags. Rows shard
    // contiguously; every row's slots are written by exactly one shard.
    const size_t num_rows = table.num_rows();
    std::vector<std::vector<NodeId>> row_nodes(num_cols);
    for (size_t c = 0; c < num_cols; ++c) row_nodes[c].resize(num_rows);
    PRIVMARK_RETURN_NOT_OK(ParallelFor(
        pool, num_rows, [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t c = 0; c < num_cols; ++c) {
            for (size_t r = begin; r < end; ++r) {
              PRIVMARK_ASSIGN_OR_RETURN(
                  row_nodes[c][r], current[c].NodeForLeaf((*row_leaves[c])[r]));
            }
          }
          return Status::OK();
        }));
    std::vector<char> violating(num_rows, 0);
    size_t num_violating = 0;
    {
      std::vector<NodeId> key(num_cols);
      for (size_t r = 0; r < num_rows; ++r) {
        for (size_t c = 0; c < num_cols; ++c) key[c] = row_nodes[c][r];
        if (bins.at(key) < options.k) {
          violating[r] = 1;
          ++num_violating;
        }
      }
    }
    if (num_violating == 0) break;

    // Enumerate candidate merge steps. Eligibility and the cheap
    // per-member counts stay serial; the expensive per-candidate
    // violating-row scans fan out over the candidates, each writing only
    // its own pre-sized slot, so the step list is identical to the serial
    // one in content and order.
    std::vector<MergeStep> steps;
    for (size_t c = 0; c < num_cols; ++c) {
      const DomainHierarchy& tree = *current[c].tree();
      std::set<NodeId> parents;
      for (NodeId member : current[c].nodes()) {
        const NodeId p = tree.Parent(member);
        if (p != kInvalidNode) parents.insert(p);
      }
      for (NodeId p : parents) {
        // Eligible iff p's leaves are currently covered strictly below p
        // (checking one leaf suffices for a valid antichain) and p stays at
        // or below the maximal nodes.
        const NodeId first_leaf = tree.FirstLeafUnder(p);
        PRIVMARK_ASSIGN_OR_RETURN(NodeId cover,
                                  current[c].NodeForLeaf(first_leaf));
        if (cover == p || !tree.IsAncestorOrSelf(p, cover)) continue;
        PRIVMARK_ASSIGN_OR_RETURN(NodeId max_cover,
                                  maximal[c].NodeForLeaf(first_leaf));
        if (!tree.IsAncestorOrSelf(max_cover, p)) continue;

        size_t members_merged = 0;
        for (NodeId member : current[c].nodes()) {
          if (tree.IsAncestorOrSelf(p, member)) ++members_merged;
        }
        const double n_leaves = static_cast<double>(tree.Leaves().size());
        steps.push_back(MergeStep{
            c, p, members_merged,
            static_cast<double>(members_merged - 1) / n_leaves, 0});
      }
    }
    PRIVMARK_RETURN_NOT_OK(ParallelFor(
        pool, steps.size(), [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t s = begin; s < end; ++s) {
            MergeStep& step = steps[s];
            const DomainHierarchy& tree = *current[step.column].tree();
            size_t covered = 0;
            for (size_t r = 0; r < num_rows; ++r) {
              if (violating[r] &&
                  tree.IsAncestorOrSelf(step.parent,
                                        row_nodes[step.column][r])) {
                ++covered;
              }
            }
            step.violating_covered = covered;
          }
          return Status::OK();
        }));
    if (steps.empty()) {
      return Status::Unbinnable(
          "greedy multi-attribute binning ran out of merge steps before "
          "reaching joint k-anonymity");
    }
    // Best ratio of violating rows fixed per unit of specificity loss;
    // deterministic tie-breaks (smaller loss, then column, then node id).
    const MergeStep* best = &steps[0];
    auto better = [](const MergeStep& a, const MergeStep& b) {
      const double score_a =
          static_cast<double>(a.violating_covered) / (a.delta_loss + 1e-12);
      const double score_b =
          static_cast<double>(b.violating_covered) / (b.delta_loss + 1e-12);
      if (score_a != score_b) return score_a > score_b;
      if (a.delta_loss != b.delta_loss) return a.delta_loss < b.delta_loss;
      if (a.column != b.column) return a.column < b.column;
      return a.parent < b.parent;
    };
    for (const MergeStep& step : steps) {
      if (better(step, *best)) best = &step;
    }

    // Apply the step: members under `parent` are replaced by `parent`.
    const DomainHierarchy& tree = *current[best->column].tree();
    std::vector<NodeId> next_nodes;
    next_nodes.reserve(current[best->column].nodes().size());
    for (NodeId member : current[best->column].nodes()) {
      if (!tree.IsAncestorOrSelf(best->parent, member)) {
        next_nodes.push_back(member);
      }
    }
    next_nodes.push_back(best->parent);
    PRIVMARK_ASSIGN_OR_RETURN(
        current[best->column],
        GeneralizationSet::Create(&tree, std::move(next_nodes)));
    ++result.candidates_considered;
  }

  result.ultimate = std::move(current);
  result.total_specificity_loss = TotalSpecificityLoss(result.ultimate);
  return result;
}

}  // namespace privmark
