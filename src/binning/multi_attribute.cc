#include "binning/multi_attribute.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>

namespace privmark {

namespace {

// Per-row leaf ids for one column (computed once; generalizations change,
// leaves do not). When the caller already holds an EncodedView, its column
// is borrowed instead of re-resolving cells.
Result<std::vector<NodeId>> RowLeaves(const Table& table, size_t column,
                                      const DomainHierarchy& tree) {
  std::vector<NodeId> leaves(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    PRIVMARK_ASSIGN_OR_RETURN(leaves[r], tree.LeafForValue(table.at(r, column)));
  }
  return leaves;
}

// FNV-1a over the node-id vector; bins are only scanned for < k violations
// and point-queried, so hashed (unordered) grouping is free speed.
struct NodeVectorHash {
  size_t operator()(const std::vector<NodeId>& key) const {
    uint64_t h = 1469598103934665603ull;
    for (const NodeId id : key) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(id));
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

using BinSizeMap =
    std::unordered_map<std::vector<NodeId>, size_t, NodeVectorHash>;

// Groups rows by their generalization-node vector; returns bin sizes keyed
// by the node vector. Columns are borrowed (pointers), matching how the
// search holds a caller's EncodedView without copying it.
Result<BinSizeMap> BinSizes(
    const std::vector<const std::vector<NodeId>*>& row_leaves,
    const std::vector<GeneralizationSet>& gens) {
  BinSizeMap bins;
  if (row_leaves.empty()) return bins;
  const size_t num_rows = row_leaves[0]->size();
  std::vector<NodeId> key(gens.size());
  for (size_t r = 0; r < num_rows; ++r) {
    for (size_t c = 0; c < gens.size(); ++c) {
      PRIVMARK_ASSIGN_OR_RETURN(key[c],
                                gens[c].NodeForLeaf((*row_leaves[c])[r]));
    }
    ++bins[key];
  }
  return bins;
}

double TotalSpecificityLoss(const std::vector<GeneralizationSet>& gens) {
  double total = 0;
  for (const auto& g : gens) total += g.SpecificityLoss();
  return total;
}

// One greedy merge step: replace all members under `parent` with `parent`.
struct MergeStep {
  size_t column;
  NodeId parent;
  size_t members_merged;   // how many current members the step removes
  double delta_loss;       // specificity-loss increase
  size_t violating_covered;  // rows in sub-k bins whose node is under parent
};

}  // namespace

Result<bool> IsJointlyKAnonymous(const Table& table,
                                 const std::vector<size_t>& qi_columns,
                                 const std::vector<GeneralizationSet>& gens,
                                 size_t k) {
  std::vector<std::vector<NodeId>> owned;
  owned.reserve(qi_columns.size());
  std::vector<const std::vector<NodeId>*> row_leaves;
  row_leaves.reserve(qi_columns.size());
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    PRIVMARK_ASSIGN_OR_RETURN(
        std::vector<NodeId> leaves,
        RowLeaves(table, qi_columns[c], *gens[c].tree()));
    owned.push_back(std::move(leaves));
    row_leaves.push_back(&owned.back());
  }
  PRIVMARK_ASSIGN_OR_RETURN(auto bins, BinSizes(row_leaves, gens));
  for (const auto& [key, size] : bins) {
    if (size < k) return false;
  }
  return true;
}

Result<MultiBinningResult> MultiAttributeBin(
    const Table& table, const std::vector<size_t>& qi_columns,
    const std::vector<GeneralizationSet>& minimal,
    const std::vector<GeneralizationSet>& maximal,
    const MultiBinningOptions& options, const EncodedView* view) {
  const size_t num_cols = qi_columns.size();
  if (minimal.size() != num_cols || maximal.size() != num_cols) {
    return Status::InvalidArgument(
        "MultiAttributeBin: minimal/maximal size mismatch with qi_columns");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("MultiAttributeBin: k must be >= 1");
  }
  for (size_t c = 0; c < num_cols; ++c) {
    if (!minimal[c].IsRefinementOf(maximal[c])) {
      return Status::InvalidArgument(
          "MultiAttributeBin: minimal nodes of column " + std::to_string(c) +
          " are not a refinement of its maximal nodes");
    }
  }

  if (view != nullptr && view->num_columns() != num_cols) {
    return Status::InvalidArgument(
        "MultiAttributeBin: encoded view covers " +
        std::to_string(view->num_columns()) + " columns, expected " +
        std::to_string(num_cols));
  }

  // Per-column row leaves: borrowed by pointer from the caller's encoded
  // view when available (no copies), resolved once into `owned` otherwise.
  std::vector<std::vector<NodeId>> owned;
  owned.reserve(num_cols);
  std::vector<const std::vector<NodeId>*> row_leaves;
  row_leaves.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    if (view != nullptr) {
      if (view->column(c).tree() != minimal[c].tree()) {
        return Status::InvalidArgument(
            "MultiAttributeBin: encoded view column " + std::to_string(c) +
            " uses a different tree than its minimal nodes");
      }
      row_leaves.push_back(&view->column(c).ids());
      continue;
    }
    PRIVMARK_ASSIGN_OR_RETURN(
        std::vector<NodeId> leaves,
        RowLeaves(table, qi_columns[c], *minimal[c].tree()));
    owned.push_back(std::move(leaves));
    row_leaves.push_back(&owned.back());
  }

  auto jointly_k_anonymous =
      [&](const std::vector<GeneralizationSet>& gens) -> Result<bool> {
    PRIVMARK_ASSIGN_OR_RETURN(auto bins, BinSizes(row_leaves, gens));
    for (const auto& [key, size] : bins) {
      if (size < options.k) return false;
    }
    return true;
  };

  MultiBinningResult result;

  // Fast path: the minimal nodes may already be jointly k-anonymous.
  PRIVMARK_ASSIGN_OR_RETURN(bool min_ok, jointly_k_anonymous(minimal));
  if (min_ok) {
    result.ultimate = minimal;
    result.candidates_considered = 1;
    result.already_satisfied = true;
    result.total_specificity_loss = TotalSpecificityLoss(minimal);
    return result;
  }

  // The data is binnable only if the all-maximal combination works.
  PRIVMARK_ASSIGN_OR_RETURN(bool max_ok, jointly_k_anonymous(maximal));
  if (!max_ok) {
    return Status::Unbinnable(
        "even the maximal generalization nodes are not jointly " +
        std::to_string(options.k) + "-anonymous; the data is not binnable "
        "within the usage metrics");
  }

  if (options.strategy == SearchStrategy::kExhaustive) {
    // Fig. 7: enumerate allowable generalizations per column, take the
    // cross product, keep valid ones, select the least specificity loss.
    std::vector<std::vector<GeneralizationSet>> allowable(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      PRIVMARK_ASSIGN_OR_RETURN(
          allowable[c],
          EnumerateBetween(minimal[c], maximal[c], options.max_enumerations));
    }
    size_t combo_count = 1;
    for (size_t c = 0; c < num_cols; ++c) {
      if (combo_count > options.max_enumerations / allowable[c].size() + 1) {
        return Status::CapacityExceeded(
            "exhaustive multi-attribute binning would evaluate more than " +
            std::to_string(options.max_enumerations) + " combinations");
      }
      combo_count *= allowable[c].size();
    }
    if (combo_count > options.max_enumerations) {
      return Status::CapacityExceeded(
          "exhaustive multi-attribute binning would evaluate " +
          std::to_string(combo_count) + " combinations (cap " +
          std::to_string(options.max_enumerations) + ")");
    }

    double best_loss = std::numeric_limits<double>::infinity();
    std::vector<GeneralizationSet> best;
    std::vector<size_t> odometer(num_cols, 0);
    std::vector<GeneralizationSet> candidate(num_cols);
    for (size_t iter = 0; iter < combo_count; ++iter) {
      for (size_t c = 0; c < num_cols; ++c) {
        candidate[c] = allowable[c][odometer[c]];
      }
      ++result.candidates_considered;
      const double loss = TotalSpecificityLoss(candidate);
      if (loss < best_loss) {
        PRIVMARK_ASSIGN_OR_RETURN(bool ok, jointly_k_anonymous(candidate));
        if (ok) {
          best_loss = loss;
          best = candidate;
        }
      }
      // Advance odometer.
      for (size_t c = 0; c < num_cols; ++c) {
        if (++odometer[c] < allowable[c].size()) break;
        odometer[c] = 0;
      }
    }
    if (best.empty()) {
      return Status::Unbinnable(
          "no allowable generalization combination is jointly k-anonymous");
    }
    result.ultimate = std::move(best);
    result.total_specificity_loss = best_loss;
    return result;
  }

  // Greedy strategy: start at the minimal nodes; while some bin is smaller
  // than k, apply the parent-merge with the best
  // (violating-rows-covered / specificity-loss) ratio.
  std::vector<GeneralizationSet> current = minimal;
  for (;;) {
    PRIVMARK_ASSIGN_OR_RETURN(auto bins, BinSizes(row_leaves, current));
    // Per-row current nodes and per-row violation flags.
    const size_t num_rows = table.num_rows();
    std::vector<std::vector<NodeId>> row_nodes(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      row_nodes[c].resize(num_rows);
      for (size_t r = 0; r < num_rows; ++r) {
        PRIVMARK_ASSIGN_OR_RETURN(
            row_nodes[c][r], current[c].NodeForLeaf((*row_leaves[c])[r]));
      }
    }
    std::vector<char> violating(num_rows, 0);
    size_t num_violating = 0;
    {
      std::vector<NodeId> key(num_cols);
      for (size_t r = 0; r < num_rows; ++r) {
        for (size_t c = 0; c < num_cols; ++c) key[c] = row_nodes[c][r];
        if (bins.at(key) < options.k) {
          violating[r] = 1;
          ++num_violating;
        }
      }
    }
    if (num_violating == 0) break;

    // Enumerate candidate merge steps.
    std::vector<MergeStep> steps;
    for (size_t c = 0; c < num_cols; ++c) {
      const DomainHierarchy& tree = *current[c].tree();
      std::set<NodeId> parents;
      for (NodeId member : current[c].nodes()) {
        const NodeId p = tree.Parent(member);
        if (p != kInvalidNode) parents.insert(p);
      }
      for (NodeId p : parents) {
        // Eligible iff p's leaves are currently covered strictly below p
        // (checking one leaf suffices for a valid antichain) and p stays at
        // or below the maximal nodes.
        const NodeId first_leaf = tree.FirstLeafUnder(p);
        PRIVMARK_ASSIGN_OR_RETURN(NodeId cover,
                                  current[c].NodeForLeaf(first_leaf));
        if (cover == p || !tree.IsAncestorOrSelf(p, cover)) continue;
        PRIVMARK_ASSIGN_OR_RETURN(NodeId max_cover,
                                  maximal[c].NodeForLeaf(first_leaf));
        if (!tree.IsAncestorOrSelf(max_cover, p)) continue;

        size_t members_merged = 0;
        for (NodeId member : current[c].nodes()) {
          if (tree.IsAncestorOrSelf(p, member)) ++members_merged;
        }
        size_t covered = 0;
        for (size_t r = 0; r < num_rows; ++r) {
          if (violating[r] && tree.IsAncestorOrSelf(p, row_nodes[c][r])) {
            ++covered;
          }
        }
        const double n_leaves = static_cast<double>(tree.Leaves().size());
        steps.push_back(MergeStep{
            c, p, members_merged,
            static_cast<double>(members_merged - 1) / n_leaves, covered});
      }
    }
    if (steps.empty()) {
      return Status::Unbinnable(
          "greedy multi-attribute binning ran out of merge steps before "
          "reaching joint k-anonymity");
    }
    // Best ratio of violating rows fixed per unit of specificity loss;
    // deterministic tie-breaks (smaller loss, then column, then node id).
    const MergeStep* best = &steps[0];
    auto better = [](const MergeStep& a, const MergeStep& b) {
      const double score_a =
          static_cast<double>(a.violating_covered) / (a.delta_loss + 1e-12);
      const double score_b =
          static_cast<double>(b.violating_covered) / (b.delta_loss + 1e-12);
      if (score_a != score_b) return score_a > score_b;
      if (a.delta_loss != b.delta_loss) return a.delta_loss < b.delta_loss;
      if (a.column != b.column) return a.column < b.column;
      return a.parent < b.parent;
    };
    for (const MergeStep& step : steps) {
      if (better(step, *best)) best = &step;
    }

    // Apply the step: members under `parent` are replaced by `parent`.
    const DomainHierarchy& tree = *current[best->column].tree();
    std::vector<NodeId> next_nodes;
    next_nodes.reserve(current[best->column].nodes().size());
    for (NodeId member : current[best->column].nodes()) {
      if (!tree.IsAncestorOrSelf(best->parent, member)) {
        next_nodes.push_back(member);
      }
    }
    next_nodes.push_back(best->parent);
    PRIVMARK_ASSIGN_OR_RETURN(
        current[best->column],
        GeneralizationSet::Create(&tree, std::move(next_nodes)));
    ++result.candidates_considered;
  }

  result.ultimate = std::move(current);
  result.total_specificity_loss = TotalSpecificityLoss(result.ultimate);
  return result;
}

}  // namespace privmark
