// Mono-attribute binning (paper Sec. 4.2.1, Fig. 5).
//
// For one quasi-identifying attribute, binning starts at the maximal
// generalization nodes (the off-line usage-metric output) and searches
// *downward* for the lowest valid generalization satisfying k-anonymity:
// the minimal generalization nodes. The recursion mirrors the paper's
// GenMinNd / SubGMN / NumTuple exactly; deviations for degenerate inputs are
// documented on the options below.
//
// Hot path: the search itself only ever touches per-node tuple counts, so
// the Value-based entry points are thin wrappers that encode the column to
// leaf NodeIds once (or accept a pre-encoded column) and hand a flat counts
// vector to the integer-only kernel.

#ifndef PRIVMARK_BINNING_MONO_ATTRIBUTE_H_
#define PRIVMARK_BINNING_MONO_ATTRIBUTE_H_

#include <vector>

#include "common/status.h"
#include "hierarchy/encoded_view.h"
#include "hierarchy/generalization.h"
#include "relation/value.h"

namespace privmark {

class ThreadPool;

/// \brief What to do when a maximal-node subtree holds 0 < count < k tuples
/// (the data cannot be binned within the usage metrics).
enum class UnbinnablePolicy {
  /// Fail the whole binning run with Status::Unbinnable.
  kError,
  /// Suppress (drop) the offending tuples, the classical fallback the
  /// paper's generalization-and-suppression ancestry provides.
  kSuppress,
};

/// \brief Which minimality rationale to use (paper Sec. 4.2.1, last
/// paragraph).
enum class MinimalityStrategy {
  /// "A node is minimal if itself meets k-anonymity, but not all of its
  /// child nodes do." May over-generalize.
  kSimple,
  /// The paper's sketched aggressive variant: "a node is not minimal if any
  /// of its child nodes satisfies k-anonymity". We descend into satisfying
  /// children; empty children are kept as (vacuous) generalization nodes;
  /// children with 0 < count < k are suppressed per UnbinnablePolicy.
  kAggressive,
};

struct MonoBinningOptions {
  size_t k = 2;
  UnbinnablePolicy on_unbinnable = UnbinnablePolicy::kError;
  MinimalityStrategy strategy = MinimalityStrategy::kSimple;
};

struct MonoBinningResult {
  /// The minimal generalization nodes (a valid generalization).
  GeneralizationSet minimal;
  /// Leaves whose tuples must be suppressed (only under kSuppress); the
  /// corresponding nodes are still members of `minimal` so the cover stays
  /// valid — their bins are simply empty after suppression.
  std::vector<NodeId> suppressed_nodes;
  /// Number of tuples falling under suppressed_nodes.
  size_t suppressed_tuples = 0;
  /// Nodes whose tuple count the search inspected — the work metric behind
  /// the paper's claim that "downward binning may have efficiency
  /// advantage over previous work that bins upward" (compare with
  /// UpwardAttributeBin's figure in bench/ablation_binning_direction).
  size_t nodes_inspected = 0;
};

/// \brief Per-node tuple counts for the whole tree in O(nodes + rows):
/// leaves get direct counts, interior nodes subtree sums. Exposed so
/// callers can compute counts once and reuse them across NumTuple calls
/// and binning passes.
Result<std::vector<size_t>> CountPerNode(const DomainHierarchy& tree,
                                         const std::vector<Value>& values);

/// \brief Counts over a pre-encoded column of leaf ids (no string work).
/// OutOfRange if an id is not a valid node of `tree`. With a pool, leaf
/// counting runs as a per-shard reduction merged in shard order (integer
/// sums — byte-identical to serial for any worker count); the subtree
/// roll-up stays serial.
Result<std::vector<size_t>> CountPerNode(const DomainHierarchy& tree,
                                         const std::vector<NodeId>& leaf_ids,
                                         ThreadPool* pool = nullptr);

/// \brief Runs mono-attribute binning for one column.
///
/// \param maximal the column's maximal generalization nodes (usage metrics)
/// \param values the column's original (leaf-level) values
///
/// Degenerate-input handling beyond the paper's pseudocode:
///  - a maximal subtree with zero tuples keeps its maximal node (a valid
///    cover needs it; k-anonymity is vacuous for an empty bin);
///  - a maximal subtree with 0 < count < k triggers `on_unbinnable`;
///  - a leaf with count >= k is its own minimal node.
Result<MonoBinningResult> MonoAttributeBin(const GeneralizationSet& maximal,
                                           const std::vector<Value>& values,
                                           const MonoBinningOptions& options);

/// \brief Same over a pre-encoded column (leaf ids); the hot-loop form the
/// binning agent uses — the column is resolved to integers exactly once
/// per pipeline run, not once per binning pass. (Distinct name rather than
/// an overload: brace-initialized empty arguments would otherwise be
/// ambiguous against the Value form.)
Result<MonoBinningResult> MonoAttributeBinEncoded(
    const GeneralizationSet& maximal, const EncodedColumn& column,
    const MonoBinningOptions& options, ThreadPool* pool = nullptr);

/// \brief Same over precomputed per-node counts (from CountPerNode).
Result<MonoBinningResult> MonoAttributeBinCounts(
    const GeneralizationSet& maximal, const std::vector<size_t>& counts,
    const MonoBinningOptions& options);

/// \brief The paper's NumTuple: tuples of `values` whose leaf lies in the
/// subtree rooted at `node`. Exposed for tests and diagnostics.
Result<size_t> NumTuple(const DomainHierarchy& tree, NodeId node,
                        const std::vector<Value>& values);

/// \brief Counts-reusing form: callers holding a CountPerNode result
/// answer NumTuple queries in O(1) instead of recounting the column.
/// (Distinct name: a brace-initialized empty argument would otherwise be
/// ambiguous against the Value form.)
Result<size_t> NumTupleFromCounts(const DomainHierarchy& tree, NodeId node,
                                  const std::vector<size_t>& counts);

}  // namespace privmark

#endif  // PRIVMARK_BINNING_MONO_ATTRIBUTE_H_
