#include "binning/binning_engine.h"

#include "crypto/aes128.h"
#include "metrics/info_loss.h"

namespace privmark {

BinningAgent::BinningAgent(UsageMetrics metrics, BinningConfig config)
    : metrics_(std::move(metrics)), config_(std::move(config)) {}

Status ApplyGeneralization(Table* table, const std::vector<size_t>& qi_columns,
                           const std::vector<GeneralizationSet>& gens) {
  if (qi_columns.size() != gens.size()) {
    return Status::InvalidArgument(
        "ApplyGeneralization: column/generalization count mismatch");
  }
  for (size_t r = 0; r < table->num_rows(); ++r) {
    for (size_t c = 0; c < qi_columns.size(); ++c) {
      PRIVMARK_ASSIGN_OR_RETURN(
          Value generalized, gens[c].Generalize(table->at(r, qi_columns[c])));
      table->Set(r, qi_columns[c], std::move(generalized));
    }
  }
  return Status::OK();
}

Result<BinningOutcome> BinningAgent::Run(const Table& input) const {
  const Schema& schema = input.schema();
  PRIVMARK_ASSIGN_OR_RETURN(size_t ident_col, schema.IdentifyingColumn());
  const std::vector<size_t> qi_columns = schema.QuasiIdentifyingColumns();
  if (qi_columns.size() != metrics_.num_columns()) {
    return Status::InvalidArgument(
        "BinningAgent: schema has " + std::to_string(qi_columns.size()) +
        " quasi-identifying columns but usage metrics cover " +
        std::to_string(metrics_.num_columns()));
  }
  const size_t effective_k = config_.k + config_.epsilon;

  BinningOutcome outcome;
  outcome.qi_columns = qi_columns;
  Table working = input.Clone();

  // Phase 1: mono-attribute binning per column (Fig. 5), downward from the
  // maximal generalization nodes.
  MonoBinningOptions mono_options = config_.mono;
  mono_options.k = effective_k;
  std::vector<size_t> rows_to_suppress;
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    PRIVMARK_ASSIGN_OR_RETURN(
        MonoBinningResult mono,
        MonoAttributeBin(metrics_.maximal[c], working.ColumnValues(qi_columns[c]),
                         mono_options));
    // Collect rows under suppressed nodes.
    if (!mono.suppressed_nodes.empty()) {
      const DomainHierarchy& tree = *metrics_.trees[c];
      for (size_t r = 0; r < working.num_rows(); ++r) {
        PRIVMARK_ASSIGN_OR_RETURN(NodeId leaf,
                                  tree.LeafForValue(working.at(r, qi_columns[c])));
        for (NodeId suppressed : mono.suppressed_nodes) {
          if (tree.IsAncestorOrSelf(suppressed, leaf)) {
            rows_to_suppress.push_back(r);
            break;
          }
        }
      }
    }
    outcome.minimal.push_back(std::move(mono.minimal));
  }
  if (!rows_to_suppress.empty()) {
    working.RemoveRows(rows_to_suppress);
    outcome.suppressed_rows = rows_to_suppress.size();
    // Redo mono-attribute binning on the reduced table: suppression can
    // only shrink counts, but minimal nodes must reflect the final data.
    outcome.minimal.clear();
    for (size_t c = 0; c < qi_columns.size(); ++c) {
      PRIVMARK_ASSIGN_OR_RETURN(
          MonoBinningResult mono,
          MonoAttributeBin(metrics_.maximal[c],
                           working.ColumnValues(qi_columns[c]), mono_options));
      outcome.minimal.push_back(std::move(mono.minimal));
    }
  }

  // Mono-phase information loss (Fig. 11 series 1).
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    PRIVMARK_ASSIGN_OR_RETURN(
        double loss,
        ColumnInfoLoss(working.ColumnValues(qi_columns[c]), outcome.minimal[c]));
    outcome.mono_column_loss.push_back(loss);
  }
  outcome.mono_normalized_loss = NormalizedInfoLoss(outcome.mono_column_loss);

  // Phase 2: multi-attribute binning (Fig. 7), unless the configuration
  // asks for per-attribute k-anonymity only (the paper's evaluation setup).
  if (config_.enforce_joint) {
    MultiBinningOptions multi_options = config_.multi;
    multi_options.k = effective_k;
    PRIVMARK_ASSIGN_OR_RETURN(
        MultiBinningResult multi,
        MultiAttributeBin(working, qi_columns, outcome.minimal,
                          metrics_.maximal, multi_options));
    outcome.ultimate = std::move(multi.ultimate);
    outcome.candidates_considered = multi.candidates_considered;
  } else {
    outcome.ultimate = outcome.minimal;
    outcome.candidates_considered = 0;
  }

  for (size_t c = 0; c < qi_columns.size(); ++c) {
    PRIVMARK_ASSIGN_OR_RETURN(
        double loss,
        ColumnInfoLoss(working.ColumnValues(qi_columns[c]), outcome.ultimate[c]));
    outcome.multi_column_loss.push_back(loss);
  }
  outcome.multi_normalized_loss = NormalizedInfoLoss(outcome.multi_column_loss);

  // Phase 3 (Fig. 8): encrypt identifiers, generalize QI cells.
  const Aes128 cipher = Aes128::FromPassphrase(config_.encryption_passphrase);
  for (size_t r = 0; r < working.num_rows(); ++r) {
    PRIVMARK_ASSIGN_OR_RETURN(
        std::string encrypted,
        cipher.EncryptValue(working.at(r, ident_col).ToString()));
    working.Set(r, ident_col, Value::String(std::move(encrypted)));
  }
  PRIVMARK_RETURN_NOT_OK(
      ApplyGeneralization(&working, qi_columns, outcome.ultimate));

  outcome.binned = std::move(working);
  return outcome;
}

}  // namespace privmark
