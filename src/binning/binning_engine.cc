#include "binning/binning_engine.h"

#include "common/parallel.h"
#include "metrics/info_loss.h"

namespace privmark {

namespace {

// The schema-derived facts every run needs before touching a row.
struct RunSetup {
  size_t ident_column = 0;
  std::vector<size_t> qi_columns;
  std::vector<const DomainHierarchy*> trees;
};

Result<RunSetup> SetupFor(const Schema& schema, const UsageMetrics& metrics) {
  RunSetup setup;
  PRIVMARK_ASSIGN_OR_RETURN(setup.ident_column, schema.IdentifyingColumn());
  setup.qi_columns = schema.QuasiIdentifyingColumns();
  if (setup.qi_columns.size() != metrics.num_columns()) {
    return Status::InvalidArgument(
        "BinningAgent: schema has " +
        std::to_string(setup.qi_columns.size()) +
        " quasi-identifying columns but usage metrics cover " +
        std::to_string(metrics.num_columns()));
  }
  setup.trees.reserve(setup.qi_columns.size());
  for (const GeneralizationSet& gs : metrics.maximal) {
    setup.trees.push_back(gs.tree());
  }
  return setup;
}

}  // namespace

BinningAgent::BinningAgent(UsageMetrics metrics, BinningConfig config)
    : metrics_(std::move(metrics)), config_(std::move(config)) {}

Status ApplyGeneralization(Table* table, const std::vector<size_t>& qi_columns,
                           const std::vector<GeneralizationSet>& gens) {
  if (qi_columns.size() != gens.size()) {
    return Status::InvalidArgument(
        "ApplyGeneralization: column/generalization count mismatch");
  }
  for (size_t r = 0; r < table->num_rows(); ++r) {
    for (size_t c = 0; c < qi_columns.size(); ++c) {
      PRIVMARK_ASSIGN_OR_RETURN(
          Value generalized, gens[c].Generalize(table->at(r, qi_columns[c])));
      table->Set(r, qi_columns[c], std::move(generalized));
    }
  }
  return Status::OK();
}

Result<Table> MaterializeProtected(
    const Table& input, const std::vector<size_t>& qi_columns,
    size_t ident_column, const std::vector<GeneralizationSet>& ultimate,
    const EncodedView& view, const Aes128& cipher, ThreadPool* pool) {
  if (qi_columns.size() != ultimate.size() ||
      qi_columns.size() != view.num_columns()) {
    return Status::InvalidArgument(
        "MaterializeProtected: column/generalization/view count mismatch");
  }
  if (view.num_columns() > 0 && view.num_rows() != input.num_rows()) {
    return Status::InvalidArgument(
        "MaterializeProtected: view covers " +
        std::to_string(view.num_rows()) + " rows, table has " +
        std::to_string(input.num_rows()));
  }
  std::vector<int> qi_index_of_col(input.num_columns(), -1);
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    qi_index_of_col[qi_columns[c]] = static_cast<int>(c);
  }
  // Rows are built per contiguous shard (encryption and label lookups are
  // per-row independent) and appended in shard order, so the output table
  // is byte-identical to the serial pass for any worker count.
  PRIVMARK_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      ParallelReduce<std::vector<Row>>(
          pool, input.num_rows(), {},
          [&](size_t, size_t begin, size_t end) -> Result<std::vector<Row>> {
            std::vector<Row> shard_rows;
            shard_rows.reserve(end - begin);
            for (size_t r = begin; r < end; ++r) {
              Row row;
              row.reserve(input.num_columns());
              for (size_t col = 0; col < input.num_columns(); ++col) {
                if (col == ident_column) {
                  PRIVMARK_ASSIGN_OR_RETURN(
                      std::string encrypted,
                      cipher.EncryptValue(input.at(r, col).ToString()));
                  row.push_back(Value::String(std::move(encrypted)));
                  continue;
                }
                const int c = qi_index_of_col[col];
                if (c >= 0) {
                  const size_t ci = static_cast<size_t>(c);
                  PRIVMARK_ASSIGN_OR_RETURN(
                      NodeId node,
                      ultimate[ci].NodeForLeaf(view.column(ci).id(r)));
                  row.push_back(
                      Value::String(ultimate[ci].tree()->node(node).label));
                  continue;
                }
                row.push_back(input.at(r, col));
              }
              shard_rows.push_back(std::move(row));
            }
            return shard_rows;
          },
          [](std::vector<Row>* acc, std::vector<Row>&& shard_rows) {
            acc->insert(acc->end(), std::make_move_iterator(shard_rows.begin()),
                        std::make_move_iterator(shard_rows.end()));
          }));
  Table binned(input.schema());
  for (Row& row : rows) {
    PRIVMARK_RETURN_NOT_OK(binned.AppendRow(std::move(row)));
  }
  return binned;
}

Result<BinningOutcome> BinningAgent::Run(const Table& input) const {
  PRIVMARK_ASSIGN_OR_RETURN(RunSetup setup,
                            SetupFor(input.schema(), metrics_));

  // One pool for every row-sharded stage of this run; nullptr means the
  // plain serial code path. A caller-owned config pool is reused as-is.
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = PoolOrMake(config_.pool, config_.num_threads, &owned);

  // Count-accumulation phase. Encode every quasi-identifying column to
  // leaf NodeIds exactly once — everything until materialization (both
  // binning phases, suppression, information loss) runs on these integer
  // columns — then roll the per-node counts up. A streaming session runs
  // this phase per arriving batch and merges the CountStates instead.
  PRIVMARK_ASSIGN_OR_RETURN(
      EncodedView view,
      EncodedView::Leaves(input, setup.qi_columns, setup.trees, pool));
  PRIVMARK_ASSIGN_OR_RETURN(CountState counts,
                            CountState::FromView(setup.trees, view, pool));
  return RunImpl(input, setup.ident_column, setup.qi_columns, setup.trees,
                 std::move(view), counts, pool);
}

Result<BinningOutcome> BinningAgent::RunWithState(
    const Table& input, EncodedView view, const CountState& counts) const {
  PRIVMARK_ASSIGN_OR_RETURN(RunSetup setup,
                            SetupFor(input.schema(), metrics_));
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = PoolOrMake(config_.pool, config_.num_threads, &owned);
  return RunImpl(input, setup.ident_column, setup.qi_columns, setup.trees,
                 std::move(view), counts, pool);
}

Result<BinningOutcome> BinningAgent::RunImpl(
    const Table& input, size_t ident_col,
    const std::vector<size_t>& qi_columns,
    const std::vector<const DomainHierarchy*>& trees, EncodedView view,
    const CountState& counts, ThreadPool* pool) const {
  const Schema& schema = input.schema();
  if (view.num_columns() != qi_columns.size()) {
    return Status::InvalidArgument(
        "BinningAgent: encoded view covers " +
        std::to_string(view.num_columns()) + " columns, schema has " +
        std::to_string(qi_columns.size()) + " quasi-identifying");
  }
  if (counts.num_columns() != qi_columns.size()) {
    return Status::InvalidArgument(
        "BinningAgent: count state covers " +
        std::to_string(counts.num_columns()) + " columns, schema has " +
        std::to_string(qi_columns.size()) + " quasi-identifying");
  }
  const size_t effective_k = config_.k + config_.epsilon;

  BinningOutcome outcome;
  outcome.qi_columns = qi_columns;

  // Bin-selection phase 1: mono-attribute binning per column (Fig. 5),
  // downward from the maximal generalization nodes over the accumulated
  // counts. The search never touches rows — only the count state.
  MonoBinningOptions mono_options = config_.mono;
  mono_options.k = effective_k;
  std::vector<size_t> rows_to_suppress;
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    PRIVMARK_ASSIGN_OR_RETURN(
        MonoBinningResult mono,
        MonoAttributeBinCounts(metrics_.maximal[c], counts.column(c),
                               mono_options));
    // Collect rows under suppressed nodes: mark the suppressed subtrees'
    // leaves, then scan the encoded ids.
    if (!mono.suppressed_nodes.empty()) {
      const DomainHierarchy& tree = *trees[c];
      std::vector<char> dropped_leaf(tree.num_nodes(), 0);
      for (NodeId suppressed : mono.suppressed_nodes) {
        const auto [begin, end] = tree.LeafSpan(suppressed);
        for (size_t i = begin; i < end; ++i) {
          dropped_leaf[tree.Leaves()[i]] = 1;
        }
      }
      const std::vector<NodeId>& ids = view.column(c).ids();
      for (size_t r = 0; r < ids.size(); ++r) {
        if (dropped_leaf[ids[r]]) rows_to_suppress.push_back(r);
      }
    }
    outcome.minimal.push_back(std::move(mono.minimal));
  }

  // The table the later phases operate on: the input itself, or — after
  // suppression — a reduced copy. The encoded view is filtered in lock
  // step so downstream phases never re-resolve cells, and the count state
  // is adjusted by subtracting the removed rows' counts (exact integer
  // arithmetic: counts(all) - counts(removed) == counts(kept)).
  const Table* working = &input;
  Table reduced;
  CountState adjusted_counts;
  const CountState* selection_counts = &counts;
  if (!rows_to_suppress.empty()) {
    std::vector<char> keep(input.num_rows(), 1);
    for (size_t r : rows_to_suppress) keep[r] = 0;
    reduced = Table(schema);
    for (size_t r = 0; r < input.num_rows(); ++r) {
      if (!keep[r]) continue;
      PRIVMARK_RETURN_NOT_OK(reduced.AppendRow(input.row(r)));
    }
    // Rows actually removed: a row suppressed via several columns is
    // listed once per column above but must be counted once.
    outcome.suppressed_rows = input.num_rows() - reduced.num_rows();
    working = &reduced;
    std::vector<char> removed(input.num_rows(), 0);
    for (size_t r = 0; r < input.num_rows(); ++r) removed[r] = !keep[r];
    PRIVMARK_ASSIGN_OR_RETURN(EncodedView removed_view,
                              view.Filtered(removed));
    PRIVMARK_ASSIGN_OR_RETURN(
        CountState removed_counts,
        CountState::FromView(trees, removed_view, pool));
    adjusted_counts = counts;
    PRIVMARK_RETURN_NOT_OK(adjusted_counts.Subtract(removed_counts));
    selection_counts = &adjusted_counts;
    PRIVMARK_ASSIGN_OR_RETURN(view, view.Filtered(keep));
    // Redo mono-attribute binning on the reduced counts: suppression can
    // only shrink counts, but minimal nodes must reflect the final data.
    outcome.minimal.clear();
    for (size_t c = 0; c < qi_columns.size(); ++c) {
      PRIVMARK_ASSIGN_OR_RETURN(
          MonoBinningResult mono,
          MonoAttributeBinCounts(metrics_.maximal[c],
                                 selection_counts->column(c), mono_options));
      outcome.minimal.push_back(std::move(mono.minimal));
    }
  }

  // Mono-phase information loss (Fig. 11 series 1), measured over the
  // materialized rows (the view), not the historical count state.
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    PRIVMARK_ASSIGN_OR_RETURN(
        double loss, ColumnInfoLossEncoded(view.column(c), outcome.minimal[c],
                                           pool));
    outcome.mono_column_loss.push_back(loss);
  }
  outcome.mono_normalized_loss = NormalizedInfoLoss(outcome.mono_column_loss);

  // Bin-selection phase 2: multi-attribute binning (Fig. 7), unless the
  // configuration asks for per-attribute k-anonymity only (the paper's
  // evaluation setup).
  if (config_.enforce_joint) {
    MultiBinningOptions multi_options = config_.multi;
    multi_options.k = effective_k;
    PRIVMARK_ASSIGN_OR_RETURN(
        MultiBinningResult multi,
        MultiAttributeBin(*working, qi_columns, outcome.minimal,
                          metrics_.maximal, multi_options, &view, pool));
    outcome.ultimate = std::move(multi.ultimate);
    outcome.candidates_considered = multi.candidates_considered;
  } else {
    outcome.ultimate = outcome.minimal;
    outcome.candidates_considered = 0;
  }

  for (size_t c = 0; c < qi_columns.size(); ++c) {
    PRIVMARK_ASSIGN_OR_RETURN(
        double loss,
        ColumnInfoLossEncoded(view.column(c), outcome.ultimate[c],
                              pool));
    outcome.multi_column_loss.push_back(loss);
  }
  outcome.multi_normalized_loss = NormalizedInfoLoss(outcome.multi_column_loss);

  // Phase 3 (Fig. 8): materialize the protected table in one pass —
  // encrypted identifiers, quasi-identifier cells rewritten to their
  // ultimate generalization node's label, other cells copied through.
  const Aes128 cipher = Aes128::FromPassphrase(config_.encryption_passphrase);
  PRIVMARK_ASSIGN_OR_RETURN(
      outcome.binned,
      MaterializeProtected(*working, qi_columns, ident_col, outcome.ultimate,
                           view, cipher, pool));
  return outcome;
}

}  // namespace privmark
