#include "binning/binning_engine.h"

#include "common/parallel.h"
#include "crypto/aes128.h"
#include "hierarchy/encoded_view.h"
#include "metrics/info_loss.h"

namespace privmark {

BinningAgent::BinningAgent(UsageMetrics metrics, BinningConfig config)
    : metrics_(std::move(metrics)), config_(std::move(config)) {}

Status ApplyGeneralization(Table* table, const std::vector<size_t>& qi_columns,
                           const std::vector<GeneralizationSet>& gens) {
  if (qi_columns.size() != gens.size()) {
    return Status::InvalidArgument(
        "ApplyGeneralization: column/generalization count mismatch");
  }
  for (size_t r = 0; r < table->num_rows(); ++r) {
    for (size_t c = 0; c < qi_columns.size(); ++c) {
      PRIVMARK_ASSIGN_OR_RETURN(
          Value generalized, gens[c].Generalize(table->at(r, qi_columns[c])));
      table->Set(r, qi_columns[c], std::move(generalized));
    }
  }
  return Status::OK();
}

Result<BinningOutcome> BinningAgent::Run(const Table& input) const {
  const Schema& schema = input.schema();
  PRIVMARK_ASSIGN_OR_RETURN(size_t ident_col, schema.IdentifyingColumn());
  const std::vector<size_t> qi_columns = schema.QuasiIdentifyingColumns();
  if (qi_columns.size() != metrics_.num_columns()) {
    return Status::InvalidArgument(
        "BinningAgent: schema has " + std::to_string(qi_columns.size()) +
        " quasi-identifying columns but usage metrics cover " +
        std::to_string(metrics_.num_columns()));
  }
  const size_t effective_k = config_.k + config_.epsilon;

  // One pool for every row-sharded stage of this run; nullptr means the
  // plain serial code path (the num_threads = 1 default).
  const std::unique_ptr<ThreadPool> pool = MakeThreadPool(config_.num_threads);

  BinningOutcome outcome;
  outcome.qi_columns = qi_columns;

  // Encode every quasi-identifying column to leaf NodeIds exactly once.
  // Everything until materialization — both binning phases, suppression,
  // information loss — runs on these integer columns; the cells' strings
  // are only touched again when the output table is written.
  std::vector<const DomainHierarchy*> trees;
  trees.reserve(qi_columns.size());
  for (const GeneralizationSet& gs : metrics_.maximal) {
    trees.push_back(gs.tree());
  }
  PRIVMARK_ASSIGN_OR_RETURN(
      EncodedView view,
      EncodedView::Leaves(input, qi_columns, trees, pool.get()));

  // Phase 1: mono-attribute binning per column (Fig. 5), downward from the
  // maximal generalization nodes.
  MonoBinningOptions mono_options = config_.mono;
  mono_options.k = effective_k;
  std::vector<size_t> rows_to_suppress;
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    PRIVMARK_ASSIGN_OR_RETURN(
        MonoBinningResult mono,
        MonoAttributeBinEncoded(metrics_.maximal[c], view.column(c),
                                mono_options, pool.get()));
    // Collect rows under suppressed nodes: mark the suppressed subtrees'
    // leaves, then scan the encoded ids.
    if (!mono.suppressed_nodes.empty()) {
      const DomainHierarchy& tree = *trees[c];
      std::vector<char> dropped_leaf(tree.num_nodes(), 0);
      for (NodeId suppressed : mono.suppressed_nodes) {
        const auto [begin, end] = tree.LeafSpan(suppressed);
        for (size_t i = begin; i < end; ++i) {
          dropped_leaf[tree.Leaves()[i]] = 1;
        }
      }
      const std::vector<NodeId>& ids = view.column(c).ids();
      for (size_t r = 0; r < ids.size(); ++r) {
        if (dropped_leaf[ids[r]]) rows_to_suppress.push_back(r);
      }
    }
    outcome.minimal.push_back(std::move(mono.minimal));
  }

  // The table the later phases operate on: the input itself, or — after
  // suppression — a reduced copy. The encoded view is filtered in lock
  // step so downstream phases never re-resolve cells.
  const Table* working = &input;
  Table reduced;
  if (!rows_to_suppress.empty()) {
    std::vector<char> keep(input.num_rows(), 1);
    for (size_t r : rows_to_suppress) keep[r] = 0;
    reduced = Table(schema);
    for (size_t r = 0; r < input.num_rows(); ++r) {
      if (!keep[r]) continue;
      PRIVMARK_RETURN_NOT_OK(reduced.AppendRow(input.row(r)));
    }
    // Rows actually removed: a row suppressed via several columns is
    // listed once per column above but must be counted once.
    outcome.suppressed_rows = input.num_rows() - reduced.num_rows();
    working = &reduced;
    PRIVMARK_ASSIGN_OR_RETURN(view, view.Filtered(keep));
    // Redo mono-attribute binning on the reduced data: suppression can
    // only shrink counts, but minimal nodes must reflect the final data.
    outcome.minimal.clear();
    for (size_t c = 0; c < qi_columns.size(); ++c) {
      PRIVMARK_ASSIGN_OR_RETURN(
          MonoBinningResult mono,
          MonoAttributeBinEncoded(metrics_.maximal[c], view.column(c),
                                  mono_options, pool.get()));
      outcome.minimal.push_back(std::move(mono.minimal));
    }
  }

  // Mono-phase information loss (Fig. 11 series 1).
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    PRIVMARK_ASSIGN_OR_RETURN(
        double loss, ColumnInfoLossEncoded(view.column(c), outcome.minimal[c],
                                           pool.get()));
    outcome.mono_column_loss.push_back(loss);
  }
  outcome.mono_normalized_loss = NormalizedInfoLoss(outcome.mono_column_loss);

  // Phase 2: multi-attribute binning (Fig. 7), unless the configuration
  // asks for per-attribute k-anonymity only (the paper's evaluation setup).
  if (config_.enforce_joint) {
    MultiBinningOptions multi_options = config_.multi;
    multi_options.k = effective_k;
    PRIVMARK_ASSIGN_OR_RETURN(
        MultiBinningResult multi,
        MultiAttributeBin(*working, qi_columns, outcome.minimal,
                          metrics_.maximal, multi_options, &view));
    outcome.ultimate = std::move(multi.ultimate);
    outcome.candidates_considered = multi.candidates_considered;
  } else {
    outcome.ultimate = outcome.minimal;
    outcome.candidates_considered = 0;
  }

  for (size_t c = 0; c < qi_columns.size(); ++c) {
    PRIVMARK_ASSIGN_OR_RETURN(
        double loss,
        ColumnInfoLossEncoded(view.column(c), outcome.ultimate[c],
                              pool.get()));
    outcome.multi_column_loss.push_back(loss);
  }
  outcome.multi_normalized_loss = NormalizedInfoLoss(outcome.multi_column_loss);

  // Phase 3 (Fig. 8): materialize the protected table in one pass —
  // encrypted identifiers, quasi-identifier cells rewritten to their
  // ultimate generalization node's label, other cells copied through.
  const Aes128 cipher = Aes128::FromPassphrase(config_.encryption_passphrase);
  std::vector<int> qi_index_of_col(input.num_columns(), -1);
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    qi_index_of_col[qi_columns[c]] = static_cast<int>(c);
  }
  // Rows are built per contiguous shard (encryption and label lookups are
  // per-row independent) and appended in shard order, so the output table
  // is byte-identical to the serial pass for any worker count.
  PRIVMARK_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      ParallelReduce<std::vector<Row>>(
          pool.get(), working->num_rows(), {},
          [&](size_t, size_t begin, size_t end) -> Result<std::vector<Row>> {
            std::vector<Row> shard_rows;
            shard_rows.reserve(end - begin);
            for (size_t r = begin; r < end; ++r) {
              Row row;
              row.reserve(working->num_columns());
              for (size_t col = 0; col < working->num_columns(); ++col) {
                if (col == ident_col) {
                  PRIVMARK_ASSIGN_OR_RETURN(
                      std::string encrypted,
                      cipher.EncryptValue(working->at(r, col).ToString()));
                  row.push_back(Value::String(std::move(encrypted)));
                  continue;
                }
                const int c = qi_index_of_col[col];
                if (c >= 0) {
                  PRIVMARK_ASSIGN_OR_RETURN(
                      NodeId node,
                      outcome.ultimate[c].NodeForLeaf(
                          view.column(static_cast<size_t>(c)).id(r)));
                  row.push_back(Value::String(trees[c]->node(node).label));
                  continue;
                }
                row.push_back(working->at(r, col));
              }
              shard_rows.push_back(std::move(row));
            }
            return shard_rows;
          },
          [](std::vector<Row>* acc, std::vector<Row>&& shard_rows) {
            acc->insert(acc->end(), std::make_move_iterator(shard_rows.begin()),
                        std::make_move_iterator(shard_rows.end()));
          }));
  Table binned(schema);
  for (Row& row : rows) {
    PRIVMARK_RETURN_NOT_OK(binned.AppendRow(std::move(row)));
  }

  outcome.binned = std::move(binned);
  return outcome;
}

}  // namespace privmark
