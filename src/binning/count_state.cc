#include "binning/count_state.h"

#include "binning/mono_attribute.h"

namespace privmark {

namespace {

Status CheckTrees(const std::vector<const DomainHierarchy*>& trees) {
  for (size_t c = 0; c < trees.size(); ++c) {
    if (trees[c] == nullptr) {
      return Status::InvalidArgument("CountState: null tree for column " +
                                     std::to_string(c));
    }
  }
  return Status::OK();
}

}  // namespace

Result<CountState> CountState::Zero(
    const std::vector<const DomainHierarchy*>& trees) {
  PRIVMARK_RETURN_NOT_OK(CheckTrees(trees));
  std::vector<std::vector<size_t>> counts;
  counts.reserve(trees.size());
  for (const DomainHierarchy* tree : trees) {
    counts.emplace_back(tree->num_nodes(), 0);
  }
  return CountState(trees, std::move(counts), 0);
}

Result<CountState> CountState::FromView(
    const std::vector<const DomainHierarchy*>& trees, const EncodedView& view,
    ThreadPool* pool) {
  PRIVMARK_RETURN_NOT_OK(CheckTrees(trees));
  if (view.num_columns() != trees.size()) {
    return Status::InvalidArgument(
        "CountState: view covers " + std::to_string(view.num_columns()) +
        " columns but " + std::to_string(trees.size()) + " trees given");
  }
  std::vector<std::vector<size_t>> counts;
  counts.reserve(trees.size());
  for (size_t c = 0; c < trees.size(); ++c) {
    if (view.column(c).tree() != trees[c]) {
      return Status::InvalidArgument(
          "CountState: view column " + std::to_string(c) +
          " resolves against a different tree");
    }
    PRIVMARK_ASSIGN_OR_RETURN(
        std::vector<size_t> column_counts,
        CountPerNode(*trees[c], view.column(c).ids(), pool));
    counts.push_back(std::move(column_counts));
  }
  return CountState(trees, std::move(counts), view.num_rows());
}

Status CountState::Merge(const CountState& other) {
  if (trees_ != other.trees_) {
    return Status::InvalidArgument(
        "CountState::Merge: states cover different trees");
  }
  for (size_t c = 0; c < counts_.size(); ++c) {
    std::vector<size_t>& acc = counts_[c];
    const std::vector<size_t>& add = other.counts_[c];
    for (size_t i = 0; i < acc.size(); ++i) acc[i] += add[i];
  }
  num_rows_ += other.num_rows_;
  return Status::OK();
}

Status CountState::Subtract(const CountState& other) {
  if (trees_ != other.trees_) {
    return Status::InvalidArgument(
        "CountState::Subtract: states cover different trees");
  }
  if (other.num_rows_ > num_rows_) {
    return Status::InvalidArgument(
        "CountState::Subtract: removing " + std::to_string(other.num_rows_) +
        " rows from a state holding " + std::to_string(num_rows_));
  }
  // Validate before mutating so a bad subtrahend leaves the state intact.
  for (size_t c = 0; c < counts_.size(); ++c) {
    for (size_t i = 0; i < counts_[c].size(); ++i) {
      if (other.counts_[c][i] > counts_[c][i]) {
        return Status::InvalidArgument(
            "CountState::Subtract: node count would go negative");
      }
    }
  }
  for (size_t c = 0; c < counts_.size(); ++c) {
    std::vector<size_t>& acc = counts_[c];
    const std::vector<size_t>& sub = other.counts_[c];
    for (size_t i = 0; i < acc.size(); ++i) acc[i] -= sub[i];
  }
  num_rows_ -= other.num_rows_;
  return Status::OK();
}

}  // namespace privmark
