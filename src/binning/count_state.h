// Mergeable per-column tuple-count state — the substrate of incremental
// (batch/streaming) binning.
//
// CountPerNode produces, for one column, the full per-node histogram of a
// tree: direct counts at the leaves, subtree sums at interior nodes. Both
// layers are linear in the rows, so the counts of a concatenation of row
// batches equal the elementwise sum of the batches' counts — exactly, in
// integers. CountState packages one such histogram per quasi-identifying
// column together with that Merge: a protection session counts each
// arriving batch once (sharded, see CountPerNode's pool form) and folds it
// in, and the accumulated state is byte-identical to counting all rows in
// one pass. Merging in batch-arrival order mirrors PR 3's shard-order
// merge discipline — the same "partial results fold on one thread, in a
// deterministic order" rule, lifted from shards within a run to batches
// across a session.
//
// Bin selection (MonoAttributeBinCounts, the downward GenMinNd search)
// consumes these vectors directly, which is what splits the binning engine
// into a count-accumulation phase (incremental, mergeable) and a
// bin-selection phase (cheap, run at flush time).

#ifndef PRIVMARK_BINNING_COUNT_STATE_H_
#define PRIVMARK_BINNING_COUNT_STATE_H_

#include <vector>

#include "common/status.h"
#include "hierarchy/domain_hierarchy.h"
#include "hierarchy/encoded_view.h"

namespace privmark {

class ThreadPool;

/// \brief Per-column per-node tuple counts with an exact elementwise
/// Merge; one counts vector per quasi-identifying column, parallel to the
/// trees it was built from.
class CountState {
 public:
  CountState() = default;

  /// \brief All-zero state over `trees` (the empty-session starting point).
  static Result<CountState> Zero(
      const std::vector<const DomainHierarchy*>& trees);

  /// \brief Counts of one batch: per column, the leaf histogram of the
  /// encoded ids plus the interior subtree roll-up (CountPerNode). The
  /// view must hold one column per tree, in the same order.
  static Result<CountState> FromView(
      const std::vector<const DomainHierarchy*>& trees,
      const EncodedView& view, ThreadPool* pool = nullptr);

  /// \brief Folds another state in: elementwise integer sums per column.
  /// InvalidArgument unless `other` covers the same trees. Exact for any
  /// merge order; sessions merge in batch-arrival order for the same
  /// deterministic-fold discipline the shard merges use.
  Status Merge(const CountState& other);

  /// \brief Removes another state's counts: elementwise subtraction.
  /// `other` must cover the same trees and be a sub-multiset (every count
  /// <= this state's; InvalidArgument otherwise). Suppression uses this to
  /// drop removed rows from accumulated state without recounting history:
  /// counts(all) - counts(removed) == counts(kept), exactly.
  Status Subtract(const CountState& other);

  size_t num_columns() const { return counts_.size(); }

  /// \brief Total rows folded into this state.
  size_t num_rows() const { return num_rows_; }

  /// \brief Per-node counts of column `c` (position within the pipeline's
  /// quasi-identifier column list): counts[node] is the number of
  /// accumulated tuples whose leaf lies in the subtree rooted at `node`.
  const std::vector<size_t>& column(size_t c) const { return counts_[c]; }

  const std::vector<const DomainHierarchy*>& trees() const { return trees_; }

 private:
  CountState(std::vector<const DomainHierarchy*> trees,
             std::vector<std::vector<size_t>> counts, size_t num_rows)
      : trees_(std::move(trees)),
        counts_(std::move(counts)),
        num_rows_(num_rows) {}

  std::vector<const DomainHierarchy*> trees_;
  std::vector<std::vector<size_t>> counts_;
  size_t num_rows_ = 0;
};

}  // namespace privmark

#endif  // PRIVMARK_BINNING_COUNT_STATE_H_
