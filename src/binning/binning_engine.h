// The binning agent (paper Sec. 3 and Fig. 8).
//
// Pipeline: (1) mono-attribute binning of every quasi-identifying column
// (Fig. 5), (2) multi-attribute binning to joint k-anonymity (Fig. 7),
// (3) the Binning step of Fig. 8 — encrypt the identifying column with E()
// (AES-128 here) and replace each quasi-identifier value with the label of
// its ultimate generalization node.
//
// The identifying column is deliberately kept (encrypted, one-to-one)
// rather than suppressed: the paper needs it traceable for clinical
// follow-up, as the tuple selector for watermarking (Eq. 5), and as the
// basis of the rightful-ownership mark (Sec. 5.4).

#ifndef PRIVMARK_BINNING_BINNING_ENGINE_H_
#define PRIVMARK_BINNING_BINNING_ENGINE_H_

#include <string>
#include <vector>

#include "binning/count_state.h"
#include "binning/mono_attribute.h"
#include "binning/multi_attribute.h"
#include "common/status.h"
#include "crypto/aes128.h"
#include "hierarchy/encoded_view.h"
#include "metrics/usage_metrics.h"
#include "relation/table.h"

namespace privmark {

class ThreadPool;

/// \brief Configuration of one binning run.
struct BinningConfig {
  /// k-anonymity parameter. The *effective* k used during search is
  /// k + epsilon (Sec. 6's conservative adjustment); reports still measure
  /// against k.
  size_t k = 2;
  /// Extra slack so that post-watermark bins cannot drop below k (Sec. 6:
  /// epsilon = (s / S) * |wmd|). 0 disables the adjustment.
  size_t epsilon = 0;
  /// Passphrase from which the identifying-column AES-128 key derives.
  std::string encryption_passphrase = "privmark-default-passphrase";
  /// Run the multi-attribute phase so the *combination* of all QI columns
  /// is k-anonymous. When false the ultimate generalization equals the
  /// mono-attribute minimal nodes (each column individually k-anonymous) —
  /// this mirrors the paper's own evaluation setup: the per-attribute bin
  /// counts of its Fig. 14 (e.g. 73 age bins x 96 zip bins at k=10 over
  /// 20000 tuples) are only possible without joint 5-column k-anonymity.
  bool enforce_joint = true;
  /// Worker threads for the row-sharded stages (column encoding, per-node
  /// counting, information loss, output materialization). 1 = serial (the
  /// default), 0 = hardware concurrency, N = exactly N workers. Output is
  /// byte-identical for every value (see common/parallel.h).
  size_t num_threads = 1;
  /// Optional caller-owned worker pool. When set it wins over num_threads
  /// (the pool's worker count governs) and the agent constructs no pool of
  /// its own — a long-lived caller (the protection session, a service
  /// front-end) pays thread spawn/join once instead of per run. The pool
  /// must outlive every run using this config. Not serialized state: a
  /// borrowed execution resource.
  ThreadPool* pool = nullptr;
  MonoBinningOptions mono;
  MultiBinningOptions multi;
};

/// \brief Everything a binning run produces.
struct BinningOutcome {
  /// The protected table: encrypted identifiers, generalized QI columns.
  Table binned;
  /// Quasi-identifying column indices the run operated on (schema order).
  std::vector<size_t> qi_columns;
  /// Per-column minimal generalization nodes (after mono-attribute binning).
  std::vector<GeneralizationSet> minimal;
  /// Per-column ultimate generalization nodes (after multi-attribute
  /// binning); what the binned table's labels come from.
  std::vector<GeneralizationSet> ultimate;
  /// Eq. (1)/(2) information loss per column after mono-attribute binning
  /// only (the Fig. 11 "Mono-attribute Binning" series).
  std::vector<double> mono_column_loss;
  /// Eq. (1)/(2) loss per column under the ultimate generalization (the
  /// Fig. 11 "Multi-attribute Binning" series).
  std::vector<double> multi_column_loss;
  /// Eq. (3) normalized losses.
  double mono_normalized_loss = 0.0;
  double multi_normalized_loss = 0.0;
  /// Rows dropped by suppression (mono phase), if the policy allows it.
  size_t suppressed_rows = 0;
  /// Statistics from the multi-attribute search.
  size_t candidates_considered = 0;
};

/// \brief The binning agent.
class BinningAgent {
 public:
  /// \param metrics usage metrics: trees + maximal generalization nodes,
  ///        parallel to the schema's quasi-identifying columns (in schema
  ///        order). Trees must outlive the agent.
  BinningAgent(UsageMetrics metrics, BinningConfig config);

  /// \brief Bins `input` to (k + epsilon)-anonymity within the usage
  /// metrics and encrypts its identifying column.
  ///
  /// The input table must have exactly one identifying column and
  /// quasi-identifying columns matching the metrics (count and order).
  ///
  /// Equivalent to the count-accumulation phase (encode + CountState) over
  /// the whole table followed by RunWithState — the incremental session
  /// runs those phases itself, per arriving batch.
  Result<BinningOutcome> Run(const Table& input) const;

  /// \brief Bin-selection + materialization over pre-accumulated count
  /// state — the incremental-session entry point.
  ///
  /// \param input the rows to bin and materialize (a flush buffer)
  /// \param view `input`'s encoded quasi-identifier columns
  /// \param counts per-column counts to select generalizations from. For a
  ///        one-shot run these are exactly `input`'s counts and the result
  ///        is byte-identical to Run(input); a session may pass counts
  ///        accumulated over *more* rows than `input`, selecting
  ///        generalizations from the whole history while materializing
  ///        only the buffered batch. Suppression (kSuppress) subtracts the
  ///        dropped rows' counts before re-selecting, so the adjusted
  ///        state stays exact.
  Result<BinningOutcome> RunWithState(const Table& input, EncodedView view,
                                      const CountState& counts) const;

  const BinningConfig& config() const { return config_; }
  const UsageMetrics& metrics() const { return metrics_; }

 private:
  Result<BinningOutcome> RunImpl(const Table& input, size_t ident_column,
                                 const std::vector<size_t>& qi_columns,
                                 const std::vector<const DomainHierarchy*>& trees,
                                 EncodedView view, const CountState& counts,
                                 ThreadPool* pool) const;

  UsageMetrics metrics_;
  BinningConfig config_;
};

/// \brief Applies a per-column generalization to a table's QI cells in
/// place (the Bin(.) of Fig. 8); exposed for tests and the watermark module.
Status ApplyGeneralization(Table* table, const std::vector<size_t>& qi_columns,
                           const std::vector<GeneralizationSet>& gens);

/// \brief Fig. 8's Binning step over pre-encoded rows: the identifying
/// column encrypted with `cipher`, each quasi-identifier cell rewritten to
/// its ultimate generalization node's label, other cells copied through.
/// Rows build per contiguous shard and append in shard order, so the
/// output is byte-identical to a serial pass for any worker count. Shared
/// by BinningAgent's phase 3 and the streaming session's per-batch
/// emission, which must produce identical bytes.
Result<Table> MaterializeProtected(
    const Table& input, const std::vector<size_t>& qi_columns,
    size_t ident_column, const std::vector<GeneralizationSet>& ultimate,
    const EncodedView& view, const Aes128& cipher, ThreadPool* pool);

}  // namespace privmark

#endif  // PRIVMARK_BINNING_BINNING_ENGINE_H_
