// Multi-attribute binning (paper Sec. 4.2.2, Fig. 7).
//
// Mono-attribute binning leaves every column individually k-anonymous, but
// their *combination* may not be (the paper's 36-people/8-doctors example).
// Multi-attribute binning searches the space of allowable generalizations —
// per column, the antichains between its minimal and maximal generalization
// nodes — for an "ultimate generalization" that is jointly k-anonymous with
// the least specificity loss (N - Ng) / N.
//
// The exhaustive search is the paper's GenUltiNd: enumerate all
// combinations (EnumGen), filter by k-anonymity, Select the cheapest. Its
// cost is the product of per-column option counts, so we also provide a
// greedy strategy for production-size tables: starting from the minimal
// nodes, repeatedly apply the single cheapest one-parent merge until the
// table is jointly k-anonymous.

#ifndef PRIVMARK_BINNING_MULTI_ATTRIBUTE_H_
#define PRIVMARK_BINNING_MULTI_ATTRIBUTE_H_

#include <vector>

#include "common/status.h"
#include "hierarchy/encoded_view.h"
#include "hierarchy/generalization.h"
#include "relation/table.h"

namespace privmark {

class ThreadPool;

/// \brief Search strategy for the ultimate generalization.
enum class SearchStrategy {
  /// Fig. 7 verbatim: enumerate every allowable combination. Exponential;
  /// guarded by max_enumerations.
  kExhaustive,
  /// Greedy bottom-up merging; near-minimal loss at O(steps * table scans).
  kGreedy,
};

struct MultiBinningOptions {
  size_t k = 2;
  SearchStrategy strategy = SearchStrategy::kGreedy;
  /// Cap on enumerated combinations (kExhaustive only).
  size_t max_enumerations = 100000;
};

struct MultiBinningResult {
  /// The ultimate generalization nodes, one set per column (parallel to the
  /// input column order).
  std::vector<GeneralizationSet> ultimate;
  /// How many complete candidate generalizations were evaluated.
  size_t candidates_considered = 0;
  /// True if the minimal nodes were already jointly k-anonymous.
  bool already_satisfied = false;
  /// Summed specificity loss of the chosen generalization.
  double total_specificity_loss = 0.0;
};

/// \brief Finds the ultimate generalization (Fig. 7's GenUltiNd).
///
/// \param table the original table (leaf-level quasi-identifier values)
/// \param qi_columns quasi-identifying column indices, parallel to
///        `minimal` / `maximal`
/// \param minimal per-column minimal generalization nodes (from
///        mono-attribute binning)
/// \param maximal per-column maximal generalization nodes (usage metrics)
///
/// Returns Unbinnable if even the all-maximal combination is not jointly
/// k-anonymous (the paper's notion of "binnable data" requires it).
///
/// \param view optional pre-encoded leaf view of the table's qi_columns
///        (parallel to them); when given, the search reuses it instead of
///        re-resolving every cell through the label index.
/// \param pool optional worker pool for the candidate search. Candidates
///        are independent, so they evaluate in parallel and the verdicts
///        merge in candidate order: kGreedy fans out the per-candidate
///        violating-row scans (and shards the row-grouping passes),
///        kExhaustive shards the enumeration index space with per-shard
///        bests folded in shard order. The chosen generalization,
///        candidates_considered, and loss are identical to the serial
///        search for any worker count.
Result<MultiBinningResult> MultiAttributeBin(
    const Table& table, const std::vector<size_t>& qi_columns,
    const std::vector<GeneralizationSet>& minimal,
    const std::vector<GeneralizationSet>& maximal,
    const MultiBinningOptions& options, const EncodedView* view = nullptr,
    ThreadPool* pool = nullptr);

/// \brief Checks whether a per-column generalization combination makes the
/// table jointly k-anonymous; exposed for tests and the framework report.
///
/// Rows are mapped through each column's generalization and grouped; every
/// group must have >= k rows.
Result<bool> IsJointlyKAnonymous(const Table& table,
                                 const std::vector<size_t>& qi_columns,
                                 const std::vector<GeneralizationSet>& gens,
                                 size_t k);

}  // namespace privmark

#endif  // PRIVMARK_BINNING_MULTI_ATTRIBUTE_H_
