#include "binning/upward_baseline.h"

#include <set>

namespace privmark {

Result<UpwardBinningResult> UpwardAttributeBin(
    const GeneralizationSet& maximal, const std::vector<Value>& values,
    size_t k) {
  if (k < 1) {
    return Status::InvalidArgument("UpwardAttributeBin: k must be >= 1");
  }
  const DomainHierarchy& tree = *maximal.tree();

  // Per-node counts (one pass; the work metric counts *inspections*, not
  // this precomputation, mirroring how the downward search is measured).
  std::vector<size_t> counts(tree.num_nodes(), 0);
  for (const Value& v : values) {
    PRIVMARK_ASSIGN_OR_RETURN(NodeId leaf, tree.LeafForValue(v));
    ++counts[leaf];
  }
  for (size_t i = tree.num_nodes(); i-- > 1;) {
    const NodeId parent = tree.Parent(static_cast<NodeId>(i));
    if (parent != kInvalidNode) counts[parent] += counts[i];
  }

  UpwardBinningResult result;

  // Start at the leaves under each maximal node; merge violators upward.
  std::set<NodeId> members;
  for (NodeId max_node : maximal.nodes()) {
    ++result.nodes_inspected;
    if (counts[max_node] == 0) {
      // Whole region empty: keep the maximal node (vacuous bin), matching
      // the downward algorithm's handling.
      members.insert(max_node);
      continue;
    }
    if (counts[max_node] < k) {
      return Status::Unbinnable(
          "attribute '" + tree.attribute() + "': subtree '" +
          tree.node(max_node).label + "' holds " +
          std::to_string(counts[max_node]) +
          " tuple(s) < k=" + std::to_string(k));
    }
    for (NodeId leaf : tree.LeavesUnder(max_node)) {
      members.insert(leaf);
    }
  }

  // Iterate: find any member below its maximal node with count < k and
  // merge its parent's whole frontier into the parent.
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId member : members) {
      ++result.nodes_inspected;
      if (counts[member] >= k) continue;
      if (maximal.Contains(member)) continue;  // cannot rise further
      const NodeId parent = tree.Parent(member);
      // Replace every member under `parent` by `parent`. All of them are
      // in the current antichain (the antichain exactly tiles the tree).
      std::set<NodeId> next;
      for (NodeId m : members) {
        if (!tree.IsAncestorOrSelf(parent, m)) next.insert(m);
      }
      next.insert(parent);
      members = std::move(next);
      changed = true;
      break;  // restart the scan: the antichain changed under us
    }
  }

  PRIVMARK_ASSIGN_OR_RETURN(
      result.minimal,
      GeneralizationSet::Create(&tree, std::vector<NodeId>(members.begin(),
                                                           members.end())));
  return result;
}

}  // namespace privmark
