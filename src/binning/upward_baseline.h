// Upward-binning baseline (the approach of Lin-Hewett-Altman '02, the
// paper's ref [19], which "bins upward along the tree").
//
// The paper argues its *downward* mono-attribute binning — made possible
// by the off-line usage metrics handing it the maximal generalization
// nodes to start from — "may have efficiency advantage over previous work
// that bins upward". This baseline implements the upward direction so the
// claim can be measured: start at the leaves, repeatedly merge any member
// with fewer than k tuples into its parent, stop when every non-empty
// member satisfies k.
//
// For the simple minimality rationale both directions provably land on
// the same minimal generalization nodes (tested); they differ in how many
// nodes they must inspect, which is what bench/ablation_binning_direction
// compares across k.

#ifndef PRIVMARK_BINNING_UPWARD_BASELINE_H_
#define PRIVMARK_BINNING_UPWARD_BASELINE_H_

#include <vector>

#include "binning/mono_attribute.h"
#include "common/status.h"
#include "hierarchy/generalization.h"
#include "relation/value.h"

namespace privmark {

struct UpwardBinningResult {
  /// The minimal generalization nodes (identical to downward's result for
  /// binnable inputs under the simple strategy).
  GeneralizationSet minimal;
  /// Nodes whose tuple count the search inspected (work metric).
  size_t nodes_inspected = 0;
};

/// \brief Upward mono-attribute binning from the leaves toward the
/// maximal generalization nodes.
///
/// Returns Unbinnable if a maximal subtree holds 0 < count < k tuples
/// (no suppression policy — this is a measurement baseline).
Result<UpwardBinningResult> UpwardAttributeBin(
    const GeneralizationSet& maximal, const std::vector<Value>& values,
    size_t k);

}  // namespace privmark

#endif  // PRIVMARK_BINNING_UPWARD_BASELINE_H_
