#include "attack/attacks.h"

#include <algorithm>
#include <set>
#include <string_view>

#include "common/parallel.h"
#include "common/strings.h"
#include "watermark/ownership.h"

namespace privmark {

Result<AttackReport> SubsetAlterationAttack(
    Table* table, const std::vector<size_t>& qi_columns, double fraction,
    Random* rng, size_t num_threads) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("alteration fraction must be in [0,1]");
  }
  AttackReport report;
  if (table->num_rows() == 0 || fraction == 0.0) return report;

  // Distinct labels currently visible per column, in first-occurrence row
  // order. Row shards each collect their local first occurrences; the
  // shard-order merge keeps a label only if no earlier shard produced it,
  // which reproduces the serial first-occurrence order exactly (a label
  // surfacing first in shard s cannot have occurred in any earlier shard,
  // and earlier rows live in earlier shards).
  const std::unique_ptr<ThreadPool> pool = MakeThreadPool(num_threads);
  std::vector<std::vector<Value>> label_pool(qi_columns.size());
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    std::set<std::string, std::less<>> merged_seen;  // transparent lookups
    PRIVMARK_ASSIGN_OR_RETURN(
        label_pool[c],
        ParallelReduce<std::vector<Value>>(
            pool.get(), table->num_rows(), {},
            [&](size_t, size_t begin,
                size_t end) -> Result<std::vector<Value>> {
              std::set<std::string, std::less<>> seen;
              std::vector<Value> local;
              std::string scratch;
              for (size_t r = begin; r < end; ++r) {
                const Value& cell = table->at(r, qi_columns[c]);
                std::string_view label;
                if (cell.type() == ValueType::kString) {
                  label = cell.AsString();
                } else {
                  scratch = cell.ToString();
                  label = scratch;
                }
                const auto it = seen.lower_bound(label);
                if (it == seen.end() || *it != label) {
                  seen.emplace_hint(it, label);
                  local.push_back(Value::String(std::string(label)));
                }
              }
              return local;
            },
            [&merged_seen](std::vector<Value>* acc, std::vector<Value>&& local) {
              for (Value& value : local) {
                const std::string_view label = value.AsString();
                const auto it = merged_seen.lower_bound(label);
                if (it == merged_seen.end() || *it != label) {
                  merged_seen.emplace_hint(it, label);
                  acc->push_back(std::move(value));
                }
              }
            }));
  }

  const size_t count =
      static_cast<size_t>(fraction * static_cast<double>(table->num_rows()));
  const std::vector<size_t> victims =
      rng->SampleWithoutReplacement(table->num_rows(), count);
  for (size_t r : victims) {
    ++report.rows_affected;
    for (size_t c = 0; c < qi_columns.size(); ++c) {
      const Value& replacement =
          label_pool[c][rng->Uniform(label_pool[c].size())];
      if (table->at(r, qi_columns[c]) != replacement) {
        table->Set(r, qi_columns[c], replacement);
        ++report.cells_changed;
      }
    }
  }
  return report;
}

Result<AttackReport> SubsetAdditionAttack(Table* table, double fraction,
                                          Random* rng) {
  if (fraction < 0.0) {
    return Status::InvalidArgument("addition fraction must be >= 0");
  }
  AttackReport report;
  const size_t original_rows = table->num_rows();
  if (original_rows == 0 || fraction == 0.0) return report;
  PRIVMARK_ASSIGN_OR_RETURN(size_t ident_column,
                            table->schema().IdentifyingColumn());

  const size_t to_add =
      static_cast<size_t>(fraction * static_cast<double>(original_rows));
  for (size_t i = 0; i < to_add; ++i) {
    // Copy a random donor row, then replace its identifier with a fresh
    // random hex string the same length as the donor's (so bogus tuples are
    // indistinguishable in format from real encrypted identifiers).
    const size_t donor = rng->Uniform(original_rows);
    Row row = table->row(donor);
    const size_t ident_len =
        std::max<size_t>(2, row[ident_column].ToString().size());
    std::string fake;
    fake.reserve(ident_len);
    static constexpr char kHex[] = "0123456789abcdef";
    for (size_t j = 0; j < ident_len; ++j) {
      fake += kHex[rng->Uniform(16)];
    }
    row[ident_column] = Value::String(std::move(fake));
    PRIVMARK_RETURN_NOT_OK(table->AppendRow(std::move(row)));
    ++report.rows_affected;
  }
  return report;
}

Result<AttackReport> SubsetDeletionAttack(Table* table, double fraction,
                                          Random* rng, size_t num_threads) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("deletion fraction must be in [0,1]");
  }
  AttackReport report;
  const size_t num_rows = table->num_rows();
  if (num_rows == 0 || fraction == 0.0) return report;
  PRIVMARK_ASSIGN_OR_RETURN(size_t ident_column,
                            table->schema().IdentifyingColumn());

  // Order rows by identifier, then drop a contiguous range (the paper's
  // SQL `WHERE SSN > lval AND SSN < uval` deletions). Sort keys
  // materialize in row shards (the ToString per comparison used to
  // dominate); the sort itself is serial and sees the same key sequence
  // for any worker count.
  const std::unique_ptr<ThreadPool> pool = MakeThreadPool(num_threads);
  std::vector<std::string> keys(num_rows);
  PRIVMARK_RETURN_NOT_OK(ParallelFor(
      pool.get(), num_rows, [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t r = begin; r < end; ++r) {
          keys[r] = table->at(r, ident_column).ToString();
        }
        return Status::OK();
      }));
  std::vector<size_t> order(num_rows);
  for (size_t r = 0; r < num_rows; ++r) order[r] = r;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return keys[a] < keys[b]; });
  const size_t count =
      static_cast<size_t>(fraction * static_cast<double>(num_rows));
  if (count == 0) return report;
  const size_t start = rng->Uniform(num_rows - count + 1);
  std::vector<size_t> doomed(order.begin() + static_cast<std::ptrdiff_t>(start),
                             order.begin() +
                                 static_cast<std::ptrdiff_t>(start + count));
  table->RemoveRows(doomed);
  report.rows_affected = count;
  return report;
}

Result<AttackReport> GeneralizationAttack(
    Table* table, const std::vector<size_t>& qi_columns,
    const std::vector<GeneralizationSet>& maximal, int levels,
    size_t num_threads) {
  if (qi_columns.size() != maximal.size()) {
    return Status::InvalidArgument(
        "GeneralizationAttack: column/maximal count mismatch");
  }
  if (levels < 1) {
    return Status::InvalidArgument("GeneralizationAttack: levels must be >= 1");
  }
  // Key-free and deterministic, so the whole rewrite shards over rows:
  // each row touches only its own cells, and the integer counters merge
  // in shard order.
  const std::unique_ptr<ThreadPool> pool = MakeThreadPool(num_threads);
  return ParallelReduce<AttackReport>(
      pool.get(), table->num_rows(), AttackReport{},
      [&](size_t, size_t begin, size_t end) -> Result<AttackReport> {
        AttackReport shard;
        for (size_t r = begin; r < end; ++r) {
          bool row_touched = false;
          for (size_t c = 0; c < qi_columns.size(); ++c) {
            const DomainHierarchy& tree = *maximal[c].tree();
            const Value& cell = table->at(r, qi_columns[c]);
            auto node = cell.type() == ValueType::kString
                            ? tree.FindByLabel(cell.AsString())
                            : tree.FindByLabel(cell.ToString());
            if (!node.ok()) continue;  // altered beyond the domain; leave it
            NodeId cur = *node;
            for (int step = 0; step < levels; ++step) {
              if (maximal[c].Contains(cur)) break;  // stay within metrics
              const NodeId parent = tree.Parent(cur);
              if (parent == kInvalidNode) break;
              cur = parent;
            }
            if (cur != *node) {
              table->Set(r, qi_columns[c], Value::String(tree.node(cur).label));
              ++shard.cells_changed;
              row_touched = true;
            }
          }
          if (row_touched) ++shard.rows_affected;
        }
        return shard;
      },
      [](AttackReport* acc, AttackReport&& shard) {
        acc->rows_affected += shard.rows_affected;
        acc->cells_changed += shard.cells_changed;
      });
}

Result<AttackReport> SiblingSwapAttack(Table* table,
                                       const std::vector<size_t>& qi_columns,
                                       const std::vector<GeneralizationSet>& ultimate,
                                       double fraction, Random* rng) {
  if (qi_columns.size() != ultimate.size()) {
    return Status::InvalidArgument(
        "SiblingSwapAttack: column/generalization count mismatch");
  }
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("swap fraction must be in [0,1]");
  }
  AttackReport report;
  if (table->num_rows() == 0 || fraction == 0.0) return report;
  const size_t count =
      static_cast<size_t>(fraction * static_cast<double>(table->num_rows()));
  const std::vector<size_t> victims =
      rng->SampleWithoutReplacement(table->num_rows(), count);
  for (size_t r : victims) {
    bool touched = false;
    for (size_t c = 0; c < qi_columns.size(); ++c) {
      const DomainHierarchy& tree = *ultimate[c].tree();
      const Value& cell = table->at(r, qi_columns[c]);
      auto node = cell.type() == ValueType::kString
                      ? tree.FindByLabel(cell.AsString())
                      : tree.FindByLabel(cell.ToString());
      if (!node.ok()) continue;
      // Siblings that are themselves ultimate nodes (so the table stays a
      // plausible binned table).
      std::vector<NodeId> candidates;
      for (NodeId sib : tree.Siblings(*node)) {
        if (sib != *node && ultimate[c].Contains(sib)) {
          candidates.push_back(sib);
        }
      }
      if (candidates.empty()) continue;
      const NodeId target = candidates[rng->Uniform(candidates.size())];
      table->Set(r, qi_columns[c], Value::String(tree.node(target).label));
      ++report.cells_changed;
      touched = true;
    }
    if (touched) ++report.rows_affected;
  }
  return report;
}

Result<ForgeryReport> AttemptStatisticForgery(const BitVector& recovered_mark,
                                              size_t mark_bits,
                                              HashAlgorithm algo,
                                              double match_threshold,
                                              size_t trials, Random* rng) {
  ForgeryReport report;
  report.trials = trials;
  for (size_t t = 0; t < trials; ++t) {
    // A bogus claim: any statistic the attacker could plausibly present.
    const double fake_v = rng->NextDouble() * 1e9;
    PRIVMARK_ASSIGN_OR_RETURN(BitVector fake_mark,
                              DeriveOwnershipMark(fake_v, mark_bits, algo));
    PRIVMARK_ASSIGN_OR_RETURN(double loss,
                              fake_mark.LossFraction(recovered_mark));
    const double match = 1.0 - loss;
    report.best_match = std::max(report.best_match, match);
    if (match >= match_threshold) ++report.successes;
  }
  return report;
}

}  // namespace privmark
