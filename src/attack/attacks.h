// Attack suite (paper Sec. 5.2, Sec. 5.4 and Sec. 7.2).
//
// All attacks model a malicious data recipient who wants to destroy or
// dispute the embedded mark *without knowing the secret watermarking key*.
// Every attack is deterministic given its Random, so experiments reproduce
// bit-for-bit.

#ifndef PRIVMARK_ATTACK_ATTACKS_H_
#define PRIVMARK_ATTACK_ATTACKS_H_

#include <vector>

#include "common/bitvec.h"
#include "common/random.h"
#include "common/status.h"
#include "crypto/keyed_hash.h"
#include "hierarchy/generalization.h"
#include "relation/table.h"

namespace privmark {

class ThreadPool;

/// \brief Outcome counters common to the attacks.
struct AttackReport {
  size_t rows_affected = 0;
  size_t cells_changed = 0;
};

// Attacks accept a num_threads knob (1 = serial, 0 = hardware
// concurrency) for their deterministic scan phases — label-pool
// collection, sort-key materialization, whole-table rewrites. Phases that
// consume the Random stream stay serial: a pseudo-random sequence is
// inherently ordered, and the attacks' bit-for-bit reproducibility
// contract (same Random seed, same table) must hold for every thread
// count.

/// \brief Subset alteration (Fig. 12a): picks `fraction` of the rows at
/// random and overwrites every quasi-identifying cell with a random label
/// drawn from the labels currently present in that column (the attacker
/// sees only the published table, so plausible labels come from it).
Result<AttackReport> SubsetAlterationAttack(Table* table,
                                            const std::vector<size_t>& qi_columns,
                                            double fraction, Random* rng,
                                            size_t num_threads = 1);

/// \brief Subset addition (Fig. 12b): appends `fraction` * current-size new
/// tuples. Identifiers are fresh random hex strings (they look like
/// encrypted values); QI cells sample labels from the existing column
/// distribution; other columns copy a random donor row.
Result<AttackReport> SubsetAdditionAttack(Table* table, double fraction,
                                          Random* rng);

/// \brief Subset deletion (Fig. 12c): deletes a contiguous range of rows in
/// identifier order totalling `fraction` of the table — the paper deletes
/// `WHERE SSN > lval AND SSN < uval` ranges, i.e. contiguous identifier
/// intervals rather than uniform samples.
Result<AttackReport> SubsetDeletionAttack(Table* table, double fraction,
                                          Random* rng,
                                          size_t num_threads = 1);

/// \brief The generalization attack (Sec. 5.2): re-generalizes every
/// quasi-identifying cell `levels` steps up the domain hierarchy tree, but
/// never above the cell's maximal generalization node — precisely the
/// key-free attack that erases single-level watermarks while the data stays
/// within the usage metrics.
Result<AttackReport> GeneralizationAttack(
    Table* table, const std::vector<size_t>& qi_columns,
    const std::vector<GeneralizationSet>& maximal, int levels,
    size_t num_threads = 1);

/// \brief Sibling-swap attack: for `fraction` of the rows, replaces each
/// quasi-identifying cell's node by a random *sibling* (same parent).
///
/// This surgically randomizes the lowest level of the hierarchical
/// watermark while leaving all higher-level choices intact — the sharpest
/// test of the Sec. 5.3 claim that copies from higher levels are more
/// reliable and deserve more voting weight.
Result<AttackReport> SiblingSwapAttack(Table* table,
                                       const std::vector<size_t>& qi_columns,
                                       const std::vector<GeneralizationSet>& ultimate,
                                       double fraction, Random* rng);

/// \brief Rightful-ownership Attack 2 (Sec. 5.4): the attacker tries to
/// fabricate a "original" statistic v_a whose one-way mark F(v_a) matches
/// the mark actually recoverable from the table. With F one-way, random
/// search is the best available strategy; this helper runs `trials` random
/// claims and reports how many reach `match_threshold` — the bench shows
/// the success count is (essentially) zero.
struct ForgeryReport {
  size_t trials = 0;
  size_t successes = 0;
  double best_match = 0.0;
};
Result<ForgeryReport> AttemptStatisticForgery(const BitVector& recovered_mark,
                                              size_t mark_bits,
                                              HashAlgorithm algo,
                                              double match_threshold,
                                              size_t trials, Random* rng);

}  // namespace privmark

#endif  // PRIVMARK_ATTACK_ATTACKS_H_
