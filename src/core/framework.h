// The unified protection framework (paper Sec. 3, Fig. 2).
//
// Medical data bound for outsourcing passes through two consecutive
// transformations, both governed by the usage metrics:
//
//   original --binning agent--> k-anonymous, identifier-encrypted table
//            --watermarking agent--> ownership-marked table
//
// The framework wires the two agents together, derives the ownership mark
// from the cleartext identifiers (Sec. 5.4: wm = F(v)), optionally applies
// the Sec. 6 conservative k+epsilon adjustment, and measures the Fig. 14
// seamlessness statistics.

#ifndef PRIVMARK_CORE_FRAMEWORK_H_
#define PRIVMARK_CORE_FRAMEWORK_H_

#include <string>
#include <vector>

#include "binning/binning_engine.h"
#include "common/bitvec.h"
#include "common/status.h"
#include "metrics/usage_metrics.h"
#include "relation/table.h"
#include "watermark/hierarchical.h"
#include "watermark/ownership.h"

namespace privmark {

/// \brief End-to-end configuration.
struct FrameworkConfig {
  BinningConfig binning;
  WatermarkKey key;
  /// Non-secret name of `key` (the recipient it was issued to, e.g. a
  /// KeyRegistry entry name). Recorded in manifests as the key id so a
  /// later fingerprint scan knows which registry entry embedded this
  /// copy; empty = unnamed key, nothing recorded.
  std::string key_id;
  WatermarkOptions watermark;
  /// Mark length (the paper's experiments embed a 20-bit mark).
  size_t mark_bits = 20;
  /// Mark copies (paper's l); 0 = fill the available bandwidth.
  size_t copies = 0;
  /// Derive the mark from the identifier statistic (Sec. 5.4). When false,
  /// `explicit_mark` is embedded instead.
  bool derive_mark_from_identifiers = true;
  BitVector explicit_mark;
  /// Apply the Sec. 6 conservative adjustment: after a first binning pass,
  /// set epsilon = ceil((s / S) * |wmd|) and re-bin with k + epsilon.
  bool auto_epsilon = false;
};

/// \brief One row of the paper's Fig. 14 table.
struct AttributeSeamlessness {
  std::string attribute;
  /// Bins (distinct generalized values) of this attribute before
  /// watermarking.
  size_t total_bins = 0;
  /// Bins whose size changed during watermarking.
  size_t bins_size_changed = 0;
  /// Bins smaller than k after watermarking (the paper reports all zeros).
  size_t bins_below_k = 0;
};

/// \brief Everything one protection run produces.
struct ProtectionOutcome {
  /// Output of the binning agent (includes the binned table).
  BinningOutcome binning;
  /// The final table: binned + watermarked, ready for outsourcing.
  Table watermarked;
  /// The embedded mark.
  BitVector mark;
  /// v, the identifier statistic behind the mark (when derived).
  double identifier_statistic = 0.0;
  EmbedReport embed;
  /// The epsilon actually used (0 unless auto_epsilon or configured).
  size_t epsilon_used = 0;
  /// Fig. 14 rows, one per quasi-identifying attribute.
  std::vector<AttributeSeamlessness> seamlessness;
};

/// \brief The framework: binning agent + watermarking agent.
class ProtectionFramework {
 public:
  /// \param metrics usage metrics (trees + maximal generalization nodes)
  ///        for the schema's quasi-identifying columns, in schema order.
  ProtectionFramework(UsageMetrics metrics, FrameworkConfig config);

  /// \brief Runs the full pipeline on the original (cleartext) table.
  /// Implemented as a single-batch ProtectionSession (core/session.h) —
  /// Ingest the table, Flush once — so the one-shot and streaming paths
  /// cannot drift apart.
  Result<ProtectionOutcome> Protect(const Table& original) const;

  /// \brief Builds the watermarker matching a binning outcome — also used
  /// by detection-side tooling (the data owner re-derives it from key +
  /// recorded generalizations).
  HierarchicalWatermarker MakeWatermarker(const BinningOutcome& binning) const;

  const FrameworkConfig& config() const { return config_; }
  const UsageMetrics& metrics() const { return metrics_; }

 private:
  UsageMetrics metrics_;
  FrameworkConfig config_;
};

/// \brief Fig. 14 measurement: per attribute, group the binned and the
/// watermarked tables by that column alone and compare bin sizes.
Result<std::vector<AttributeSeamlessness>> MeasureSeamlessness(
    const Table& binned, const Table& watermarked,
    const std::vector<size_t>& qi_columns, size_t k);

/// \brief Sec. 6's conservative epsilon: ceil((s / S) * wmd_size) with s
/// the largest joint bin and S the table size.
Result<size_t> ConservativeEpsilon(const Table& binned,
                                   const std::vector<size_t>& qi_columns,
                                   size_t wmd_size);

}  // namespace privmark

#endif  // PRIVMARK_CORE_FRAMEWORK_H_
