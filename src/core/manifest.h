// Protection manifest: the non-secret metadata a data owner must keep to
// detect their watermark later or to re-derive the pipeline configuration
// in court.
//
// The watermarking key (k1, k2, eta) and the encryption passphrase are
// secrets and deliberately NOT part of the manifest; what is recorded:
//
//   - mark length, wmd length (the paper's |wm| and |wmd| = l*|wm|),
//     copies, hash algorithm, epsilon used,
//   - per quasi-identifying column: the column name and the *labels* of
//     its ultimate and maximal generalization nodes, from which the
//     GeneralizationSets (and hence the watermarker) are reconstructed
//     against the owner's domain hierarchy trees.
//
// Serialized as a line-oriented "key = value" text format (sections per
// column) so manifests diff well and need no third-party parser.

#ifndef PRIVMARK_CORE_MANIFEST_H_
#define PRIVMARK_CORE_MANIFEST_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/framework.h"
#include "core/session.h"

namespace privmark {

/// \brief One column's generalization record.
struct ManifestColumn {
  std::string name;
  std::vector<std::string> ultimate_labels;
  std::vector<std::string> maximal_labels;
};

/// \brief The serializable protection record.
struct ProtectionManifest {
  size_t mark_bits = 0;
  size_t wmd_size = 0;
  size_t copies = 0;
  size_t epsilon = 0;
  HashAlgorithm hash = HashAlgorithm::kSha1;
  /// Name of the key this copy was embedded with (FrameworkConfig::key_id;
  /// a KeyRegistry entry name, never the key itself). Empty = unnamed.
  std::string key_id;
  std::vector<ManifestColumn> columns;
};

/// \brief Builds a manifest from a protection run.
Result<ProtectionManifest> BuildManifest(const ProtectionOutcome& outcome,
                                         const UsageMetrics& metrics,
                                         const FrameworkConfig& config);

/// \brief Builds a manifest for one streaming epoch: same record shape,
/// sourced from the session's EpochRecord (each epoch has its own
/// generalization, wmd size, and epsilon, so each gets its own manifest;
/// detection over an epoch's output uses that epoch's manifest).
///
/// \param schema the stream's schema (for the column names)
Result<ProtectionManifest> ManifestFromEpoch(const EpochRecord& epoch,
                                             const Schema& schema,
                                             const UsageMetrics& metrics,
                                             const FrameworkConfig& config);

/// \brief Serializes to the text format.
std::string SerializeManifest(const ProtectionManifest& manifest);

/// \brief Parses the text format; rejects malformed input with
/// InvalidArgument.
Result<ProtectionManifest> ParseManifest(const std::string& text);

/// \brief Reconstructs the watermarker from a manifest, the owner's trees
/// (one per manifest column, same order) and the secret key.
///
/// \param table the protected table (used only to locate the identifying
///        and quasi-identifying columns by name)
Result<HierarchicalWatermarker> WatermarkerFromManifest(
    const ProtectionManifest& manifest, const Table& table,
    const std::vector<const DomainHierarchy*>& trees, const WatermarkKey& key,
    const WatermarkOptions& options);

/// \brief ReadManifestFile refuses files larger than this (a manifest
/// is a few KB of labels; a huge file is an attack or a mixup, and
/// parsing it would buffer it whole).
inline constexpr size_t kMaxManifestBytes = size_t{1} << 20;

/// \brief Writes a manifest file durably: the contents, the file, and
/// its directory entry are all fsynced before OK (the journal's
/// crash-durability discipline — see common/durable_file.h).
Status WriteManifestFile(const ProtectionManifest& manifest,
                         const std::string& path);
/// \brief Reads and parses a manifest file (size-capped, see
/// kMaxManifestBytes).
Result<ProtectionManifest> ReadManifestFile(const std::string& path);

}  // namespace privmark

#endif  // PRIVMARK_CORE_MANIFEST_H_
