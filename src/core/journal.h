// Write-ahead epoch journal for protection sessions.
//
// A SessionJournal makes a ProtectionSession durable: every Ingest batch
// is appended (write-ahead, before the session applies it), every
// explicit Flush leaves a marker, and every sealed epoch leaves a seal
// record followed by an fsync — the epoch boundary is the durability
// barrier. Because the session pipeline is deterministic (parallel
// output is byte-identical to serial for any worker count), replaying
// the journal through a fresh session reproduces the crashed session's
// state exactly: ProtectionSession::Recover (core/session.h) rebuilds a
// session whose subsequent emissions are byte-identical to those of an
// uncrashed run.
//
// On-disk format: an 8-byte magic ("PRVMWAL1") followed by records
//
//   [u32 payload length][u32 crc32][u8 type][payload bytes]
//
// with little-endian integers and the CRC taken over type + payload.
// Readers are torn-tail tolerant: a short, length-corrupt, or
// CRC-mismatching record ends the valid prefix (a crash mid-append
// loses at most the record being written), and writers roll a failed
// append back to the previous record boundary so an IO error never
// leaves a torn record behind on a live journal.
//
// Secrets (the watermark key, the encryption passphrase) are never
// written; recovery requires the caller to supply the same
// configuration, and a fingerprint of its non-secret fields is recorded
// so obvious mismatches fail loudly instead of replaying garbage.

#ifndef PRIVMARK_CORE_JOURNAL_H_
#define PRIVMARK_CORE_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/session.h"
#include "relation/schema.h"
#include "relation/table.h"

namespace privmark {

/// \brief CRC-32 (IEEE, reflected) over a byte range — the record
/// checksum; exposed for tests that hand-corrupt journals.
uint32_t JournalCrc32(const void* data, size_t size);

/// \brief Record kinds, in the order a well-formed journal emits them.
enum class JournalRecordType : uint8_t {
  /// Non-secret config fingerprint (first record of every journal).
  kConfig = 1,
  /// The config's key_id, when non-empty (recipient bookkeeping).
  kKeyId = 2,
  /// The session schema, written once before the first batch.
  kSchema = 3,
  /// One Ingest batch, as the lossless binary cell codec of
  /// EncodeBatch/DecodeBatch (write-ahead of the apply).
  kBatch = 4,
  /// An explicit Flush() was requested (replay re-executes it).
  kFlushMarker = 5,
  /// An epoch sealed; payload holds the epoch index and row counters
  /// for replay validation. Followed by fsync: the durability barrier.
  kEpochSealed = 6,
};

/// \brief One decoded record.
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kConfig;
  std::string payload;
};

/// \brief Everything a read pass found.
struct JournalContents {
  std::vector<JournalRecord> records;
  /// Byte length of the valid prefix (magic + intact records).
  size_t valid_bytes = 0;
  /// True when bytes past the valid prefix were ignored (torn tail).
  bool tail_truncated = false;
};

/// \brief Decoded kEpochSealed payload.
struct EpochSeal {
  size_t epoch = 0;
  size_t rows_emitted = 0;
  size_t rows_suppressed = 0;
};

/// \brief Append-side handle on one session's journal file.
class SessionJournal {
 public:
  /// Refuses to clobber an existing file (AlreadyExists): recovery, not
  /// truncation, is the only valid response to finding a journal.
  static Result<std::unique_ptr<SessionJournal>> Create(
      const std::string& path);

  /// Reopens an existing journal for appending after recovery,
  /// truncating it to `valid_bytes` (the valid prefix ReadAll reported)
  /// so a torn tail never precedes fresh records.
  static Result<std::unique_ptr<SessionJournal>> Resume(
      const std::string& path, size_t valid_bytes);

  ~SessionJournal();
  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;

  Status AppendConfig(const FrameworkConfig& config,
                      const SessionConfig& session);
  Status AppendKeyId(const std::string& key_id);
  Status AppendSchema(const Schema& schema);
  Status AppendBatch(const Table& batch);
  Status AppendFlushMarker();
  /// Appends the seal and syncs — the epoch-boundary durability barrier.
  Status AppendEpochSealed(const EpochRecord& record);
  Status Sync();

  const std::string& path() const { return path_; }
  /// True once a failed append could not be rolled back; every later
  /// append refuses, so a structurally broken tail is never extended.
  bool broken() const { return broken_; }

  /// \brief Reads the valid prefix of a journal file (torn-tail
  /// tolerant; see the file comment). IOError when the file cannot be
  /// read, InvalidArgument when it does not start with the magic.
  static Result<JournalContents> ReadAll(const std::string& path);

  // Payload codecs, used by ProtectionSession::Recover and by tests.
  static std::string EncodeConfig(const FrameworkConfig& config,
                                  const SessionConfig& session);
  /// OK iff `payload` is the fingerprint EncodeConfig would produce for
  /// this config; names the first differing field otherwise.
  static Status CheckConfig(const std::string& payload,
                            const FrameworkConfig& config,
                            const SessionConfig& session);
  static std::string EncodeSchema(const Schema& schema);
  static Result<Schema> DecodeSchema(const std::string& payload);
  /// Lossless batch codec: cells are type-tagged binary
  /// ([rows][cols], then per cell a ValueType tag + payload — int64 and
  /// double as their 64-bit little-endian patterns, strings
  /// length-prefixed). Replay therefore rebuilds the exact ingested
  /// values: doubles bit for bit, Null distinct from the empty string,
  /// strings with any bytes (NUL included). CSV would round-trip none
  /// of those, and a lossy replay silently diverges from the crashed
  /// session.
  static std::string EncodeBatch(const Table& batch);
  /// InvalidArgument on truncation, unknown cell tags, trailing bytes,
  /// or a column count differing from `schema`'s.
  static Result<Table> DecodeBatch(const std::string& payload,
                                   const Schema& schema);
  static Result<EpochSeal> DecodeEpochSealed(const std::string& payload);

  /// Records larger than this end the valid prefix on read and are
  /// refused on write (a corrupt length field must not drive a huge
  /// allocation).
  static constexpr size_t kMaxRecordBytes = size_t{256} * 1024 * 1024;

 private:
  SessionJournal(std::string path, int fd);

  Status AppendRecord(JournalRecordType type, const std::string& payload);

  std::string path_;
  int fd_ = -1;
  bool broken_ = false;
};

}  // namespace privmark

#endif  // PRIVMARK_CORE_JOURNAL_H_
