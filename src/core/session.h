// Incremental protection sessions: batch/streaming ingest over the
// paper's one-shot framework (Sec. 3, Fig. 2).
//
// The paper protects a frozen relation in one pass, but outsourced
// medical data arrives as a stream of admissions. A ProtectionSession is
// the long-lived form of ProtectionFramework::Protect: it accepts row
// batches (Ingest), maintains mergeable per-column count state
// (binning/count_state.h — exact integer merges, so accumulated counts
// equal one-shot counts byte for byte), and emits protected output in
// *epochs*, each with its own generalization choice and watermark embed.
//
// Lifecycle. Batches buffer until the first Flush(), which selects
// generalizations from everything accumulated, materializes + watermarks
// the buffer as epoch 0, and freezes the epoch's generalization. After
// that the re-binning policy governs:
//
//  - kFreezeBins: every later batch is emitted immediately under epoch
//    0's generalization. Rows falling in bins that had not reached
//    k + epsilon occupancy at flush time ("unestablished" bins) are
//    suppressed, so the concatenation of everything emitted stays
//    k-anonymous. Lowest latency; one epoch, one watermark.
//  - kRebinOnDrift: later batches buffer again; once the rows
//    accumulated since the last flush exceed drift_threshold times the
//    rows accumulated at that flush (the accumulated count state is the
//    drift trigger), the session re-selects
//    generalizations from the buffered window's counts and emits it as a
//    new epoch — with its own mark (derived from the epoch's own
//    identifiers), its own embed, and enough epoch-local suppression
//    that the epoch's emitted table is k-anonymous on its own.
//    Detection runs per epoch (DetectAcrossEpochs).
//
// Degenerate case, proven by the streaming-equivalence suite: Ingest the
// whole table once (or in any batch split) and Flush — the output is
// byte-identical to ProtectionFramework::Protect, which is itself
// implemented as exactly that single-batch session.
//
// The session owns one ThreadPool and threads it through every stage of
// every batch (BinningConfig::pool / WatermarkOptions::pool), so a
// steady stream pays thread spawn/join once per session, not per batch.

#ifndef PRIVMARK_CORE_SESSION_H_
#define PRIVMARK_CORE_SESSION_H_

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "binning/count_state.h"
#include "common/parallel.h"
#include "core/framework.h"
#include "crypto/aes128.h"
#include "hierarchy/encoded_view.h"
#include "watermark/fingerprint.h"

namespace privmark {

class SessionJournal;  // core/journal.h
class ProtectionSession;

/// \brief What to do when later batches no longer fit the generalization
/// chosen at the first flush.
enum class RebinPolicy {
  /// Keep epoch 0's generalization forever; suppress rows of bins that
  /// were not established (>= k + epsilon rows) when it was chosen.
  kFreezeBins,
  /// Buffer arriving batches and open a new epoch — generalization
  /// re-selected from the buffered window, fresh mark and embed — when
  /// accumulated counts have drifted past the threshold.
  kRebinOnDrift,
};

/// \brief Session-level configuration (the framework/binning/watermark
/// knobs live in FrameworkConfig).
struct SessionConfig {
  RebinPolicy policy = RebinPolicy::kFreezeBins;
  /// kRebinOnDrift: re-bin once rows buffered since the last flush reach
  /// this fraction of all rows accumulated when the live epoch was
  /// flushed (0.5 = re-bin when the stream has grown the data by half).
  /// Anchoring on the accumulated total, not the window, keeps re-bin
  /// windows growing with the stream — a logarithmic epoch cadence —
  /// instead of decaying geometrically. Values <= 0 re-bin every batch.
  double drift_threshold = 0.5;
};

/// \brief Detection-side record of one emitted epoch: everything the data
/// owner needs (besides the secret key) to detect the epoch's mark later.
struct EpochRecord {
  size_t epoch = 0;
  /// The epoch's ultimate generalization (what its labels come from).
  std::vector<GeneralizationSet> ultimate;
  /// The epoch's mark and the statistic it derives from (Sec. 5.4).
  BitVector mark;
  double identifier_statistic = 0.0;
  size_t copies = 0;
  size_t wmd_size = 0;
  size_t epsilon_used = 0;
  /// Rows emitted under this epoch; grows after the flush under
  /// kFreezeBins (later batches join epoch 0's output).
  size_t rows_emitted = 0;
  /// Rows suppressed while emitting under this epoch (engine suppression
  /// at flush + unestablished-bin / epoch-k suppression).
  size_t rows_suppressed = 0;
};

/// \brief Per-Ingest outcome.
struct IngestResult {
  /// Rows this call emitted, protected (binned + watermarked): a frozen
  /// epoch's per-batch output, or — when the call closed an epoch — the
  /// epoch's whole table. Empty while the session buffers.
  Table emitted;
  /// Embed statistics for `emitted` (zero-valued when nothing embedded).
  EmbedReport embed;
  /// Epoch the emitted rows belong to (the next epoch's index while
  /// buffering).
  size_t epoch = 0;
  /// True iff this call closed an epoch (kRebinOnDrift auto-flush).
  bool flushed = false;
  size_t rows_emitted = 0;
  size_t rows_suppressed = 0;
  /// Rows currently buffered toward the next flush, session-wide.
  size_t rows_buffered = 0;
};

/// \brief One Flush()'s full output; `outcome` matches what a one-shot
/// Protect over the flushed rows would produce (and is bit-identical to
/// it for the first flush).
struct EpochOutput {
  size_t epoch = 0;
  ProtectionOutcome outcome;
};

/// \brief The thread ask implied by a config's num_threads knobs: 0
/// ("hardware") when either agent asks for hardware concurrency,
/// otherwise the larger agent ask. One definition shared by the
/// session's own pool sizing and the service front-end's default
/// admission ask, so granted widths cannot drift from session
/// semantics.
size_t SessionThreadAsk(const FrameworkConfig& config);

/// \brief What ProtectionSession::Recover rebuilt from a journal.
struct RecoveredSession {
  /// The replayed session, ready for further Ingest/Flush calls.
  std::unique_ptr<ProtectionSession> session;
  /// Concatenation, in order, of every row the replay emitted — what
  /// the crashed process had emitted (or would have, had it applied
  /// every journaled operation before dying).
  Table emitted;
  size_t batches_applied = 0;
  /// kEpochSealed records observed (each was validated against the
  /// replayed state).
  size_t epochs_sealed = 0;
  /// Length of the journal's valid prefix, in bytes.
  size_t valid_bytes = 0;
  /// True when a torn tail past the valid prefix was discarded.
  bool tail_truncated = false;
};

/// \brief The incremental protection session.
class ProtectionSession {
 public:
  /// \param metrics usage metrics for the stream's quasi-identifying
  ///        columns, in schema order (trees must outlive the session)
  /// \param config the one-shot framework configuration; its binning /
  ///        watermark `pool` members may inject a caller-owned pool,
  ///        otherwise the session builds one from the num_threads knobs
  ///        and reuses it across all batches.
  ProtectionSession(UsageMetrics metrics, FrameworkConfig config,
                    SessionConfig session = SessionConfig());
  ~ProtectionSession();

  /// \brief Makes the session durable: every subsequent Ingest appends
  /// its batch write-ahead, every Flush leaves a marker, and every
  /// sealed epoch is fsync'd (core/journal.h). With `fresh` (a journal
  /// just created for this session) the config fingerprint and key id
  /// are appended immediately; a fresh journal must be attached before
  /// the first Ingest, or earlier batches would be unrecoverable.
  /// `fresh = false` resumes a journal whose prefix already holds the
  /// session's history (the Recover path).
  Status AttachJournal(std::unique_ptr<SessionJournal> journal,
                       bool fresh = true);
  SessionJournal* journal() const { return journal_.get(); }

  /// \brief First post-commit journal degradation, if any: an epoch
  /// sealed correctly in memory but its seal record or fsync failed, so
  /// the epoch-boundary durability barrier is weaker than configured.
  /// (Write-ahead failures are surfaced by Ingest/Flush directly and
  /// never recorded here.)
  const Status& journal_status() const { return journal_status_; }

  /// \brief Rebuilds a session from a write-ahead journal by replaying
  /// its records through a fresh session. Determinism of the pipeline
  /// makes the replayed state — counts, buffer, live epoch, emitted
  /// bytes — identical to the crashed session's, so subsequent
  /// emissions are byte-identical to an uncrashed run. The caller
  /// supplies the same metrics/config/session options as the original
  /// run (secrets are never journaled); the journal's non-secret config
  /// fingerprint is validated against them. With `resume_journaling`
  /// the journal is truncated to its valid prefix and re-attached, so
  /// the recovered session keeps journaling where the original stopped.
  static Result<RecoveredSession> Recover(
      const std::string& journal_path, UsageMetrics metrics,
      FrameworkConfig config, SessionConfig session = SessionConfig(),
      bool resume_journaling = true);

  /// \brief Feeds one batch of original (cleartext) rows. The first batch
  /// fixes the session's schema; every later batch must match it.
  Result<IngestResult> Ingest(const Table& batch);

  /// \brief Forces an epoch boundary: selects generalizations from the
  /// accumulated counts, materializes + watermarks the buffered rows, and
  /// freezes the new epoch's generalization. InvalidArgument when nothing
  /// was ever ingested, or when an epoch is live and no rows are buffered
  /// (under kFreezeBins all post-freeze rows emit through Ingest).
  Result<EpochOutput> Flush();

  /// \brief True once a flush happened (a generalization is live).
  bool frozen() const { return live_.has_value(); }

  /// \brief Detection-side metadata of every emitted epoch, in order.
  const std::vector<EpochRecord>& epochs() const { return epochs_; }

  /// \brief Runs detection over the concatenation of everything the
  /// session emitted (epoch outputs in order): splits `concatenated` by
  /// the recorded per-epoch row counts and detects each epoch's mark with
  /// its own generalization and wmd size. InvalidArgument if the row
  /// count does not equal the total emitted.
  Result<std::vector<DetectReport>> DetectAcrossEpochs(
      const Table& concatenated) const;

  /// \brief Fingerprint counterpart of DetectAcrossEpochs: scans each
  /// epoch's slice of `concatenated` against the whole registry, using
  /// the epoch's own generalization, recorded mark (as the expected
  /// mark), and wmd size. One report per epoch, registry scan order.
  Result<std::vector<FingerprintReport>> FingerprintAcrossEpochs(
      const Table& concatenated, const KeyRegistry& registry) const;

  /// \brief Streaming form of FingerprintAcrossEpochs: per-key-shard
  /// verdicts are delivered through `sink` as each epoch's scan
  /// completes them, stamped with the epoch index, in (epoch, shard)
  /// order, before the call returns. The returned reports are identical
  /// to the one-shot overload's (which is this function with a null
  /// sink), and the concatenation of each epoch's streamed shard
  /// verdicts is byte-identical to that epoch's report.verdicts — see
  /// ScanIndexForFingerprintsStreamed.
  Result<std::vector<FingerprintReport>> FingerprintAcrossEpochsStreamed(
      const Table& concatenated, const KeyRegistry& registry,
      const FingerprintShardSink& sink) const;

  /// \brief The watermarker for one epoch's output (detection tooling).
  HierarchicalWatermarker MakeEpochWatermarker(const EpochRecord& rec) const;

  size_t rows_ingested() const { return rows_ingested_; }
  size_t rows_buffered() const { return buffer_.num_rows(); }
  size_t rows_emitted() const { return rows_emitted_; }
  size_t rows_suppressed() const { return rows_suppressed_; }

  /// \brief The pool every stage of this session runs on; nullptr means
  /// serial (num_threads = 1 and no injected pool).
  ThreadPool* pool() const { return config_.binning.pool; }

  const FrameworkConfig& config() const { return config_; }
  const SessionConfig& session_config() const { return session_; }
  const UsageMetrics& metrics() const { return metrics_; }

 private:
  struct NodeVectorHash {
    size_t operator()(const std::vector<NodeId>& key) const;
  };

  // The frozen state of the most recent flush.
  struct LiveEpoch {
    size_t index = 0;
    std::vector<GeneralizationSet> ultimate;
    BitVector mark;
    size_t copies = 1;
    size_t wmd_size = 0;
    size_t effective_k = 0;
    /// Rows accumulated session-wide when this epoch flushed (the drift
    /// denominator).
    size_t basis_rows = 0;
    /// Per-attribute mode: per column, by NodeId, whether the ultimate
    /// node's bin reached effective_k rows in the epoch's emitted output.
    std::vector<std::vector<char>> established;
    /// Joint mode: established joint bin keys (ultimate NodeIds, in
    /// qi-column order).
    std::unordered_set<std::vector<NodeId>, NodeVectorHash> joint_established;
  };

  Status InitSchema(const Schema& schema);
  Result<EpochOutput> FlushBuffer();
  Result<IngestResult> EmitFrozen(const Table& batch, const EncodedView& view);
  Result<LiveEpoch> SnapshotEpoch(const BinningOutcome& binning,
                                  const EpochRecord& record) const;
  HierarchicalWatermarker MakeWatermarker(
      const std::vector<GeneralizationSet>& ultimate) const;

  UsageMetrics metrics_;
  FrameworkConfig config_;
  SessionConfig session_;
  std::unique_ptr<ThreadPool> pool_;  // owned; config_ points at it
  Aes128 cipher_;

  std::unique_ptr<SessionJournal> journal_;
  bool schema_journaled_ = false;
  Status journal_status_;

  std::optional<Schema> schema_;
  size_t ident_column_ = 0;
  std::vector<size_t> qi_columns_;
  std::vector<const DomainHierarchy*> trees_;

  // Counts of the current flush window, merged batch by batch; before
  // the first flush the window is the whole ingested history, which is
  // what makes the first flush bit-identical to one-shot Protect. Reset
  // at every flush (drift epochs select from their own window).
  CountState counts_;
  Table buffer_;            // rows pending the next flush
  EncodedView buffer_view_; // encoded in lock step with buffer_
  size_t rows_since_epoch_ = 0;

  std::optional<LiveEpoch> live_;
  std::vector<EpochRecord> epochs_;

  size_t rows_ingested_ = 0;
  size_t rows_emitted_ = 0;
  size_t rows_suppressed_ = 0;
};

}  // namespace privmark

#endif  // PRIVMARK_CORE_SESSION_H_
