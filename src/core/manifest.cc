#include "core/manifest.h"

#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>

#include "common/durable_file.h"
#include "common/failpoint.h"
#include "common/strings.h"

namespace privmark {

namespace {

// Labels may contain '|' in principle; escape the separator and backslash.
std::string EscapeLabel(const std::string& label) {
  std::string out;
  for (char c : label) {
    if (c == '|' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

Result<std::vector<std::string>> SplitEscaped(const std::string& joined) {
  std::vector<std::string> parts;
  std::string current;
  bool escaped = false;
  for (char c : joined) {
    if (escaped) {
      current += c;
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '|') {
      parts.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  // A trailing backslash escapes nothing: the manifest was truncated or
  // hand-corrupted, and silently dropping the byte would parse a
  // different label list than the writer serialized.
  if (escaped) {
    return Status::InvalidArgument(
        "manifest: unterminated escape (dangling '\\') in label list: " +
        joined);
  }
  parts.push_back(std::move(current));
  return parts;
}

std::string JoinEscaped(const std::vector<std::string>& labels) {
  std::vector<std::string> escaped;
  escaped.reserve(labels.size());
  for (const auto& label : labels) escaped.push_back(EscapeLabel(label));
  return Join(escaped, "|");
}

Result<size_t> ParseSize(const std::string& text, const char* field) {
  if (text.empty()) {
    return Status::InvalidArgument(std::string("manifest: field '") + field +
                                   "' is empty");
  }
  // Overflow-checked accumulate (the key-file eta / journal count
  // pattern): std::stoull would throw std::out_of_range past 2^64-1,
  // and an adversarial manifest must yield InvalidArgument, not an
  // uncaught exception.
  size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("manifest: field '") +
                                     field + "' is not a number: " + text);
    }
    const size_t digit = static_cast<size_t>(c - '0');
    if (value > (SIZE_MAX - digit) / 10) {
      return Status::InvalidArgument(std::string("manifest: field '") +
                                     field + "' overflows: " + text);
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

Result<ProtectionManifest> BuildManifest(const ProtectionOutcome& outcome,
                                         const UsageMetrics& metrics,
                                         const FrameworkConfig& config) {
  if (outcome.binning.qi_columns.size() != metrics.maximal.size()) {
    return Status::InvalidArgument(
        "BuildManifest: outcome and metrics disagree on column count");
  }
  ProtectionManifest manifest;
  manifest.mark_bits = outcome.mark.size();
  manifest.wmd_size = outcome.embed.wmd_size;
  manifest.copies = outcome.embed.copies;
  manifest.epsilon = outcome.epsilon_used;
  manifest.hash = config.watermark.hash;
  manifest.key_id = config.key_id;
  for (size_t c = 0; c < outcome.binning.qi_columns.size(); ++c) {
    ManifestColumn column;
    const size_t col = outcome.binning.qi_columns[c];
    column.name = outcome.binning.binned.schema().column(col).name;
    const DomainHierarchy& tree = *metrics.trees[c];
    for (NodeId id : outcome.binning.ultimate[c].nodes()) {
      column.ultimate_labels.push_back(tree.node(id).label);
    }
    for (NodeId id : metrics.maximal[c].nodes()) {
      column.maximal_labels.push_back(tree.node(id).label);
    }
    manifest.columns.push_back(std::move(column));
  }
  return manifest;
}

Result<ProtectionManifest> ManifestFromEpoch(const EpochRecord& epoch,
                                             const Schema& schema,
                                             const UsageMetrics& metrics,
                                             const FrameworkConfig& config) {
  if (epoch.ultimate.size() != metrics.maximal.size()) {
    return Status::InvalidArgument(
        "ManifestFromEpoch: epoch and metrics disagree on column count");
  }
  const std::vector<size_t> qi_columns = schema.QuasiIdentifyingColumns();
  if (qi_columns.size() != epoch.ultimate.size()) {
    return Status::InvalidArgument(
        "ManifestFromEpoch: schema and epoch disagree on column count");
  }
  ProtectionManifest manifest;
  manifest.mark_bits = epoch.mark.size();
  manifest.wmd_size = epoch.wmd_size;
  manifest.copies = epoch.copies;
  manifest.epsilon = epoch.epsilon_used;
  manifest.hash = config.watermark.hash;
  manifest.key_id = config.key_id;
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    ManifestColumn column;
    column.name = schema.column(qi_columns[c]).name;
    const DomainHierarchy& tree = *metrics.trees[c];
    for (NodeId id : epoch.ultimate[c].nodes()) {
      column.ultimate_labels.push_back(tree.node(id).label);
    }
    for (NodeId id : metrics.maximal[c].nodes()) {
      column.maximal_labels.push_back(tree.node(id).label);
    }
    manifest.columns.push_back(std::move(column));
  }
  return manifest;
}

std::string SerializeManifest(const ProtectionManifest& manifest) {
  std::string out;
  out += "privmark-manifest-version = 1\n";
  out += "mark_bits = " + std::to_string(manifest.mark_bits) + "\n";
  out += "wmd_size = " + std::to_string(manifest.wmd_size) + "\n";
  out += "copies = " + std::to_string(manifest.copies) + "\n";
  out += "epsilon = " + std::to_string(manifest.epsilon) + "\n";
  out += std::string("hash = ") + HashAlgorithmToString(manifest.hash) + "\n";
  if (!manifest.key_id.empty()) {
    out += "key_id = " + manifest.key_id + "\n";
  }
  for (const ManifestColumn& column : manifest.columns) {
    out += "[column]\n";
    out += "name = " + column.name + "\n";
    out += "ultimate = " + JoinEscaped(column.ultimate_labels) + "\n";
    out += "maximal = " + JoinEscaped(column.maximal_labels) + "\n";
  }
  return out;
}

Result<ProtectionManifest> ParseManifest(const std::string& text) {
  ProtectionManifest manifest;
  ManifestColumn* current_column = nullptr;
  bool saw_version = false;
  // Duplicate detection: a key repeated in the same scope means a
  // corrupted or spliced manifest — last-one-wins would silently parse
  // a file the writer never produced.
  std::set<std::string> seen_scalar;
  std::set<std::string> seen_column;

  for (const std::string& raw_line : Split(text, '\n')) {
    const std::string line = Trim(raw_line);
    if (line.empty()) continue;
    if (line == "[column]") {
      if (current_column != nullptr && current_column->name.empty()) {
        return Status::InvalidArgument(
            "manifest: [column] section without a name");
      }
      manifest.columns.emplace_back();
      current_column = &manifest.columns.back();
      seen_column.clear();
      continue;
    }
    const size_t eq = line.find(" = ");
    if (eq == std::string::npos) {
      return Status::InvalidArgument("manifest: malformed line: " + line);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 3);
    const bool column_key =
        key == "name" || key == "ultimate" || key == "maximal";
    if (column_key) {
      if (current_column == nullptr) {
        return Status::InvalidArgument("manifest: '" + key +
                                       "' outside a [column] section");
      }
      if (!seen_column.insert(key).second) {
        return Status::InvalidArgument("manifest: duplicate key '" + key +
                                       "' in a [column] section");
      }
      if (key == "name") {
        if (value.empty()) {
          return Status::InvalidArgument("manifest: column name is empty");
        }
        current_column->name = value;
      } else if (key == "ultimate") {
        PRIVMARK_ASSIGN_OR_RETURN(current_column->ultimate_labels,
                                  SplitEscaped(value));
      } else {
        PRIVMARK_ASSIGN_OR_RETURN(current_column->maximal_labels,
                                  SplitEscaped(value));
      }
      continue;
    }
    if (!seen_scalar.insert(key).second) {
      return Status::InvalidArgument("manifest: duplicate key '" + key + "'");
    }
    if (key == "privmark-manifest-version") {
      if (value != "1") {
        return Status::InvalidArgument("manifest: unsupported version " +
                                       value);
      }
      saw_version = true;
    } else if (key == "mark_bits") {
      PRIVMARK_ASSIGN_OR_RETURN(manifest.mark_bits,
                                ParseSize(value, "mark_bits"));
    } else if (key == "wmd_size") {
      PRIVMARK_ASSIGN_OR_RETURN(manifest.wmd_size,
                                ParseSize(value, "wmd_size"));
    } else if (key == "copies") {
      PRIVMARK_ASSIGN_OR_RETURN(manifest.copies, ParseSize(value, "copies"));
    } else if (key == "epsilon") {
      PRIVMARK_ASSIGN_OR_RETURN(manifest.epsilon,
                                ParseSize(value, "epsilon"));
    } else if (key == "hash") {
      if (value == "SHA1") {
        manifest.hash = HashAlgorithm::kSha1;
      } else if (value == "MD5") {
        manifest.hash = HashAlgorithm::kMd5;
      } else {
        return Status::InvalidArgument("manifest: unknown hash " + value);
      }
    } else if (key == "key_id") {
      manifest.key_id = value;
    } else {
      return Status::InvalidArgument("manifest: unknown key " + key);
    }
  }
  if (current_column != nullptr && current_column->name.empty()) {
    return Status::InvalidArgument(
        "manifest: [column] section without a name");
  }
  if (!saw_version) {
    return Status::InvalidArgument("manifest: missing version header");
  }
  if (manifest.mark_bits == 0 || manifest.wmd_size == 0) {
    return Status::InvalidArgument(
        "manifest: mark_bits and wmd_size must be positive");
  }
  return manifest;
}

Result<HierarchicalWatermarker> WatermarkerFromManifest(
    const ProtectionManifest& manifest, const Table& table,
    const std::vector<const DomainHierarchy*>& trees, const WatermarkKey& key,
    const WatermarkOptions& options) {
  if (trees.size() != manifest.columns.size()) {
    return Status::InvalidArgument(
        "WatermarkerFromManifest: tree count does not match manifest");
  }
  PRIVMARK_ASSIGN_OR_RETURN(size_t ident_column,
                            table.schema().IdentifyingColumn());
  std::vector<size_t> qi_columns;
  std::vector<GeneralizationSet> ultimate;
  std::vector<GeneralizationSet> maximal;
  for (size_t c = 0; c < manifest.columns.size(); ++c) {
    const ManifestColumn& column = manifest.columns[c];
    PRIVMARK_ASSIGN_OR_RETURN(size_t col,
                              table.schema().ColumnIndex(column.name));
    qi_columns.push_back(col);
    const DomainHierarchy* tree = trees[c];
    auto labels_to_set =
        [tree](const std::vector<std::string>& labels)
        -> Result<GeneralizationSet> {
      std::vector<NodeId> nodes;
      nodes.reserve(labels.size());
      for (const std::string& label : labels) {
        PRIVMARK_ASSIGN_OR_RETURN(NodeId id, tree->FindByLabel(label));
        nodes.push_back(id);
      }
      return GeneralizationSet::Create(tree, std::move(nodes));
    };
    PRIVMARK_ASSIGN_OR_RETURN(GeneralizationSet ult,
                              labels_to_set(column.ultimate_labels));
    PRIVMARK_ASSIGN_OR_RETURN(GeneralizationSet max,
                              labels_to_set(column.maximal_labels));
    ultimate.push_back(std::move(ult));
    maximal.push_back(std::move(max));
  }
  return HierarchicalWatermarker(std::move(qi_columns), ident_column,
                                 std::move(maximal), std::move(ultimate), key,
                                 options);
}

Status WriteManifestFile(const ProtectionManifest& manifest,
                         const std::string& path) {
  if (PRIVMARK_FAILPOINT("manifest.write")) {
    return Status::IOError("failpoint 'manifest.write' triggered for '" +
                           path + "'");
  }
  if (PRIVMARK_FAILPOINT("manifest.fsync")) {
    return Status::IOError("failpoint 'manifest.fsync' triggered for '" +
                           path + "'");
  }
  // Durable, matching the journal's discipline: a manifest names the
  // generalization its (fsynced) epoch was published under, so losing
  // it to a crash strands an otherwise-recoverable epoch.
  return WriteFileDurable(path, SerializeManifest(manifest));
}

Result<ProtectionManifest> ReadManifestFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  if (text.size() > kMaxManifestBytes) {
    return Status::InvalidArgument(
        "manifest file '" + path + "' is " + std::to_string(text.size()) +
        " bytes; the cap is " + std::to_string(kMaxManifestBytes));
  }
  return ParseManifest(text);
}

}  // namespace privmark
