#include "core/framework.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string_view>

#include "crypto/aes128.h"

namespace privmark {

ProtectionFramework::ProtectionFramework(UsageMetrics metrics,
                                         FrameworkConfig config)
    : metrics_(std::move(metrics)), config_(std::move(config)) {}

HierarchicalWatermarker ProtectionFramework::MakeWatermarker(
    const BinningOutcome& binning) const {
  // The identifying column index comes from the binned table's schema; the
  // binning agent guarantees exactly one.
  const size_t ident_column =
      binning.binned.schema().IdentifyingColumn().ValueOrDie();
  return HierarchicalWatermarker(binning.qi_columns, ident_column,
                                 metrics_.maximal, binning.ultimate,
                                 config_.key, config_.watermark);
}

Result<ProtectionOutcome> ProtectionFramework::Protect(
    const Table& original) const {
  ProtectionOutcome outcome;

  // The mark: F(identifier statistic) per Sec. 5.4, or an explicit mark.
  PRIVMARK_ASSIGN_OR_RETURN(size_t ident_column,
                            original.schema().IdentifyingColumn());
  if (config_.derive_mark_from_identifiers) {
    PRIVMARK_ASSIGN_OR_RETURN(outcome.identifier_statistic,
                              StatisticFromTable(original, ident_column));
    PRIVMARK_ASSIGN_OR_RETURN(
        outcome.mark,
        DeriveOwnershipMark(outcome.identifier_statistic, config_.mark_bits,
                            config_.watermark.hash));
  } else {
    if (config_.explicit_mark.empty()) {
      return Status::InvalidArgument(
          "Protect: explicit_mark is empty but mark derivation is disabled");
    }
    outcome.mark = config_.explicit_mark;
  }

  // Binning pass (possibly twice, for the Sec. 6 epsilon adjustment).
  BinningConfig binning_config = config_.binning;
  BinningAgent agent(metrics_, binning_config);
  PRIVMARK_ASSIGN_OR_RETURN(outcome.binning, agent.Run(original));
  outcome.epsilon_used = binning_config.epsilon;

  if (config_.auto_epsilon) {
    // Estimate |wmd| on the first pass, derive epsilon, re-bin.
    HierarchicalWatermarker probe = MakeWatermarker(outcome.binning);
    PRIVMARK_ASSIGN_OR_RETURN(size_t bandwidth,
                              probe.EstimateBandwidth(outcome.binning.binned));
    size_t copies = config_.copies;
    if (copies == 0) {
      copies = std::max<size_t>(1, bandwidth / config_.mark_bits);
    }
    const size_t wmd_size = copies * config_.mark_bits;
    size_t epsilon = 0;
    if (config_.binning.enforce_joint) {
      PRIVMARK_ASSIGN_OR_RETURN(
          epsilon, ConservativeEpsilon(outcome.binning.binned,
                                       outcome.binning.qi_columns, wmd_size));
    } else {
      // Per-attribute k-anonymity: a column sees roughly wmd/|columns| of
      // the moves, and its own biggest bin bounds any bin's exposure.
      const size_t per_column_moves =
          wmd_size / std::max<size_t>(1, outcome.binning.qi_columns.size());
      for (size_t col : outcome.binning.qi_columns) {
        PRIVMARK_ASSIGN_OR_RETURN(
            size_t col_epsilon,
            ConservativeEpsilon(outcome.binning.binned, {col},
                                per_column_moves));
        epsilon = std::max(epsilon, col_epsilon);
      }
    }
    if (epsilon > binning_config.epsilon) {
      binning_config.epsilon = epsilon;
      BinningAgent adjusted(metrics_, binning_config);
      PRIVMARK_ASSIGN_OR_RETURN(outcome.binning, adjusted.Run(original));
      outcome.epsilon_used = epsilon;
    }
  }

  // Watermarking pass.
  outcome.watermarked = outcome.binning.binned.Clone();
  HierarchicalWatermarker watermarker = MakeWatermarker(outcome.binning);
  PRIVMARK_ASSIGN_OR_RETURN(
      outcome.embed,
      watermarker.Embed(&outcome.watermarked, outcome.mark, config_.copies));

  // Fig. 14 seamlessness rows.
  PRIVMARK_ASSIGN_OR_RETURN(
      outcome.seamlessness,
      MeasureSeamlessness(outcome.binning.binned, outcome.watermarked,
                          outcome.binning.qi_columns, config_.binning.k));
  return outcome;
}

Result<std::vector<AttributeSeamlessness>> MeasureSeamlessness(
    const Table& binned, const Table& watermarked,
    const std::vector<size_t>& qi_columns, size_t k) {
  if (binned.num_rows() != watermarked.num_rows()) {
    return Status::InvalidArgument(
        "MeasureSeamlessness: tables have different row counts");
  }
  std::vector<AttributeSeamlessness> rows;
  rows.reserve(qi_columns.size());
  for (size_t col : qi_columns) {
    AttributeSeamlessness row;
    row.attribute = binned.schema().column(col).name;

    // Count label frequencies. Binned cells are label strings, so counting
    // by reference (transparent comparator) avoids one copy per cell.
    auto count_labels = [col](const Table& table) {
      std::map<std::string, size_t, std::less<>> counts;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        const Value& cell = table.at(r, col);
        if (cell.type() == ValueType::kString) {
          const std::string_view label = cell.AsString();
          auto it = counts.find(label);
          if (it == counts.end()) {
            counts.emplace(std::string(label), 1);
          } else {
            ++it->second;
          }
        } else {
          ++counts[cell.ToString()];
        }
      }
      return counts;
    };
    const auto before = count_labels(binned);
    const auto after = count_labels(watermarked);

    row.total_bins = before.size();
    // Changed = union of labels whose before/after sizes differ.
    std::map<std::string, std::pair<size_t, size_t>, std::less<>> merged;
    for (const auto& [label, n] : before) merged[label].first = n;
    for (const auto& [label, n] : after) merged[label].second = n;
    for (const auto& [label, sizes] : merged) {
      if (sizes.first != sizes.second) ++row.bins_size_changed;
    }
    for (const auto& [label, n] : after) {
      if (n < k) ++row.bins_below_k;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<size_t> ConservativeEpsilon(const Table& binned,
                                   const std::vector<size_t>& qi_columns,
                                   size_t wmd_size) {
  if (binned.num_rows() == 0) return size_t{0};
  size_t largest = 0;
  for (const Bin& bin : binned.GroupBy(qi_columns)) {
    largest = std::max(largest, bin.size());
  }
  const double s = static_cast<double>(largest);
  const double total = static_cast<double>(binned.num_rows());
  return static_cast<size_t>(
      std::ceil(s / total * static_cast<double>(wmd_size)));
}

}  // namespace privmark
