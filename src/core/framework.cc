#include "core/framework.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string_view>

#include "core/session.h"

namespace privmark {

ProtectionFramework::ProtectionFramework(UsageMetrics metrics,
                                         FrameworkConfig config)
    : metrics_(std::move(metrics)), config_(std::move(config)) {}

HierarchicalWatermarker ProtectionFramework::MakeWatermarker(
    const BinningOutcome& binning) const {
  // The identifying column index comes from the binned table's schema; the
  // binning agent guarantees exactly one.
  const size_t ident_column =
      binning.binned.schema().IdentifyingColumn().ValueOrDie();
  return HierarchicalWatermarker(binning.qi_columns, ident_column,
                                 metrics_.maximal, binning.ultimate,
                                 config_.key, config_.watermark);
}

Result<ProtectionOutcome> ProtectionFramework::Protect(
    const Table& original) const {
  // The one-shot protect is the degenerate streaming case: a session fed
  // the whole table as a single batch and flushed once. The session's
  // first flush runs exactly the Sec. 3 pipeline (mark derivation,
  // binning with the optional Sec. 6 epsilon re-selection, watermark
  // embed, Fig. 14 seamlessness), so the outcome is bit-identical to the
  // historical all-at-once implementation — the streaming-equivalence
  // property suite pins this down.
  ProtectionSession session(metrics_, config_, SessionConfig());
  PRIVMARK_ASSIGN_OR_RETURN(IngestResult ingested, session.Ingest(original));
  (void)ingested;
  PRIVMARK_ASSIGN_OR_RETURN(EpochOutput epoch, session.Flush());
  return std::move(epoch.outcome);
}

Result<std::vector<AttributeSeamlessness>> MeasureSeamlessness(
    const Table& binned, const Table& watermarked,
    const std::vector<size_t>& qi_columns, size_t k) {
  if (binned.num_rows() != watermarked.num_rows()) {
    return Status::InvalidArgument(
        "MeasureSeamlessness: tables have different row counts");
  }
  std::vector<AttributeSeamlessness> rows;
  rows.reserve(qi_columns.size());
  for (size_t col : qi_columns) {
    AttributeSeamlessness row;
    row.attribute = binned.schema().column(col).name;

    // Count label frequencies. Binned cells are label strings, so counting
    // by reference (transparent comparator) avoids one copy per cell.
    auto count_labels = [col](const Table& table) {
      std::map<std::string, size_t, std::less<>> counts;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        const Value& cell = table.at(r, col);
        if (cell.type() == ValueType::kString) {
          const std::string_view label = cell.AsString();
          auto it = counts.find(label);
          if (it == counts.end()) {
            counts.emplace(std::string(label), 1);
          } else {
            ++it->second;
          }
        } else {
          ++counts[cell.ToString()];
        }
      }
      return counts;
    };
    const auto before = count_labels(binned);
    const auto after = count_labels(watermarked);

    row.total_bins = before.size();
    // Changed = union of labels whose before/after sizes differ.
    std::map<std::string, std::pair<size_t, size_t>, std::less<>> merged;
    for (const auto& [label, n] : before) merged[label].first = n;
    for (const auto& [label, n] : after) merged[label].second = n;
    for (const auto& [label, sizes] : merged) {
      if (sizes.first != sizes.second) ++row.bins_size_changed;
    }
    for (const auto& [label, n] : after) {
      if (n < k) ++row.bins_below_k;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<size_t> ConservativeEpsilon(const Table& binned,
                                   const std::vector<size_t>& qi_columns,
                                   size_t wmd_size) {
  if (binned.num_rows() == 0) return size_t{0};
  size_t largest = 0;
  for (const Bin& bin : binned.GroupBy(qi_columns)) {
    largest = std::max(largest, bin.size());
  }
  const double s = static_cast<double>(largest);
  const double total = static_cast<double>(binned.num_rows());
  return static_cast<size_t>(
      std::ceil(s / total * static_cast<double>(wmd_size)));
}

}  // namespace privmark
