#include "core/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "crypto/keyed_hash.h"

#include "common/binenc.h"
#include "common/durable_file.h"
#include "common/failpoint.h"
#include "common/strings.h"

namespace privmark {

namespace {

constexpr char kMagic[8] = {'P', 'R', 'V', 'M', 'W', 'A', 'L', '1'};
constexpr size_t kMagicSize = sizeof(kMagic);
// [u32 length][u32 crc][u8 type]
constexpr size_t kRecordHeaderSize = 9;

bool IsKnownRecordType(uint8_t type) {
  return type >= static_cast<uint8_t>(JournalRecordType::kConfig) &&
         type <= static_cast<uint8_t>(JournalRecordType::kEpochSealed);
}

Result<size_t> ParseCount(const std::string& text, const char* field) {
  if (text.empty()) {
    return Status::InvalidArgument(std::string("journal: field '") + field +
                                   "' is empty");
  }
  size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("journal: field '") + field +
                                     "' is not a number: " + text);
    }
    const size_t digit = static_cast<size_t>(c - '0');
    if (value > (SIZE_MAX - digit) / 10) {
      return Status::InvalidArgument(std::string("journal: field '") + field +
                                     "' overflows: " + text);
    }
    value = value * 10 + digit;
  }
  return value;
}

Result<ColumnRole> RoleFromString(const std::string& text) {
  if (text == "identifying") return ColumnRole::kIdentifying;
  if (text == "quasi-categorical") return ColumnRole::kQuasiCategorical;
  if (text == "quasi-numeric") return ColumnRole::kQuasiNumeric;
  if (text == "other") return ColumnRole::kOther;
  return Status::InvalidArgument("journal: unknown column role: " + text);
}

Result<ValueType> TypeFromString(const std::string& text) {
  if (text == "null") return ValueType::kNull;
  if (text == "int64") return ValueType::kInt64;
  if (text == "double") return ValueType::kDouble;
  if (text == "string") return ValueType::kString;
  return Status::InvalidArgument("journal: unknown column type: " + text);
}

}  // namespace

uint32_t JournalCrc32(const void* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

SessionJournal::SessionJournal(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

SessionJournal::~SessionJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<SessionJournal>> SessionJournal::Create(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (errno == EEXIST) {
      return Status::AlreadyExists("journal '" + path +
                                   "' already exists; recover from it "
                                   "instead of overwriting");
    }
    return ErrnoError("cannot create journal", path);
  }
  if (!WriteFully(fd, kMagic, kMagicSize)) {
    const Status st = ErrnoError("cannot write journal magic to", path);
    ::close(fd);
    return st;
  }
  // Make the magic and the directory entry durable now, so the journal
  // file itself survives any crash after Create returns — only then does
  // "seal + fsync is the durability barrier" hold for a fresh journal.
  if (::fsync(fd) != 0) {
    const Status st = ErrnoError("cannot fsync fresh journal", path);
    ::close(fd);
    return st;
  }
  const Status dir_synced = SyncParentDir(path);
  if (!dir_synced.ok()) {
    ::close(fd);
    return dir_synced;
  }
  return std::unique_ptr<SessionJournal>(new SessionJournal(path, fd));
}

Result<std::unique_ptr<SessionJournal>> SessionJournal::Resume(
    const std::string& path, size_t valid_bytes) {
  if (valid_bytes < kMagicSize) {
    return Status::InvalidArgument(
        "journal resume: valid prefix shorter than the magic");
  }
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return ErrnoError("cannot open journal", path);
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    const Status st = ErrnoError("cannot truncate journal tail of", path);
    ::close(fd);
    return st;
  }
  // Persist the truncation and (re-)persist the directory entry: the
  // original Create may have crashed between its dir fsync and the
  // crash being recovered from, and resuming is the last chance to make
  // the entry durable before new records land behind it.
  if (::fsync(fd) != 0) {
    const Status st = ErrnoError("cannot fsync truncated journal", path);
    ::close(fd);
    return st;
  }
  const Status dir_synced = SyncParentDir(path);
  if (!dir_synced.ok()) {
    ::close(fd);
    return dir_synced;
  }
  return std::unique_ptr<SessionJournal>(new SessionJournal(path, fd));
}

Status SessionJournal::AppendRecord(JournalRecordType type,
                                    const std::string& payload) {
  if (fd_ < 0) {
    return Status::IOError("journal '" + path_ + "' is not open for append");
  }
  if (broken_) {
    return Status::IOError("journal '" + path_ +
                           "' is disabled after an unrecoverable append "
                           "failure");
  }
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("journal record of " +
                                   std::to_string(payload.size()) +
                                   " bytes exceeds the record size cap");
  }
  if (PRIVMARK_FAILPOINT("journal.append")) {
    return Status::IOError("failpoint 'journal.append' triggered for '" +
                           path_ + "'");
  }

  std::string crc_input;
  crc_input.reserve(1 + payload.size());
  crc_input.push_back(static_cast<char>(type));
  crc_input.append(payload);

  std::string record;
  record.reserve(kRecordHeaderSize + payload.size());
  AppendLe32(&record, static_cast<uint32_t>(payload.size()));
  AppendLe32(&record, JournalCrc32(crc_input.data(), crc_input.size()));
  record.append(crc_input);

  const off_t start = ::lseek(fd_, 0, SEEK_END);
  if (start < 0) {
    broken_ = true;
    return ErrnoError("cannot seek journal", path_);
  }
  // A short write (injected or real, e.g. disk full) leaves a torn
  // record; roll back to the record boundary so the live journal stays
  // structurally valid. Only a failed rollback disables the journal.
  size_t to_write = record.size();
  if (PRIVMARK_FAILPOINT("journal.short_write")) to_write /= 2;
  const bool wrote =
      WriteFully(fd_, record.data(), to_write) && to_write == record.size();
  if (!wrote) {
    if (::ftruncate(fd_, start) != 0) {
      broken_ = true;
      return Status::IOError("short write to journal '" + path_ +
                             "' and rollback failed; journal disabled");
    }
    return Status::IOError("short write to journal '" + path_ +
                           "' (rolled back to the last record boundary)");
  }
  return Status::OK();
}

Status SessionJournal::AppendConfig(const FrameworkConfig& config,
                                    const SessionConfig& session) {
  return AppendRecord(JournalRecordType::kConfig,
                      EncodeConfig(config, session));
}

Status SessionJournal::AppendKeyId(const std::string& key_id) {
  return AppendRecord(JournalRecordType::kKeyId, key_id);
}

Status SessionJournal::AppendSchema(const Schema& schema) {
  for (const ColumnSpec& column : schema.columns()) {
    if (column.name.find('\n') != std::string::npos) {
      return Status::InvalidArgument(
          "journal: column name with embedded newline cannot be journaled: " +
          column.name);
    }
  }
  return AppendRecord(JournalRecordType::kSchema, EncodeSchema(schema));
}

Status SessionJournal::AppendBatch(const Table& batch) {
  return AppendRecord(JournalRecordType::kBatch, EncodeBatch(batch));
}

Status SessionJournal::AppendFlushMarker() {
  return AppendRecord(JournalRecordType::kFlushMarker, std::string());
}

Status SessionJournal::AppendEpochSealed(const EpochRecord& record) {
  std::string payload;
  payload += "epoch = " + std::to_string(record.epoch) + "\n";
  payload += "rows_emitted = " + std::to_string(record.rows_emitted) + "\n";
  payload +=
      "rows_suppressed = " + std::to_string(record.rows_suppressed) + "\n";
  PRIVMARK_RETURN_NOT_OK(AppendRecord(JournalRecordType::kEpochSealed,
                                      payload));
  return Sync();
}

Status SessionJournal::Sync() {
  if (fd_ < 0) {
    return Status::IOError("journal '" + path_ + "' is not open for append");
  }
  if (PRIVMARK_FAILPOINT("journal.fsync")) {
    return Status::IOError("failpoint 'journal.fsync' triggered for '" +
                           path_ + "'");
  }
  if (::fsync(fd_) != 0) return ErrnoError("cannot fsync journal", path_);
  return Status::OK();
}

Result<JournalContents> SessionJournal::ReadAll(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open journal '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string bytes = buffer.str();

  if (bytes.size() < kMagicSize ||
      std::memcmp(bytes.data(), kMagic, kMagicSize) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a privmark session journal");
  }

  JournalContents contents;
  size_t offset = kMagicSize;
  // Stop at the first record that is short, oversized, checksum-broken,
  // or of unknown type: everything before it is the valid prefix, and a
  // crash mid-append can only have damaged the tail.
  while (bytes.size() - offset >= kRecordHeaderSize) {
    const size_t length = ReadLe32(bytes.data() + offset);
    if (length > kMaxRecordBytes) break;
    if (bytes.size() - offset - kRecordHeaderSize < length) break;
    const uint32_t expected_crc = ReadLe32(bytes.data() + offset + 4);
    const char* body = bytes.data() + offset + 8;
    if (JournalCrc32(body, 1 + length) != expected_crc) break;
    const uint8_t type = static_cast<uint8_t>(*body);
    if (!IsKnownRecordType(type)) break;
    JournalRecord record;
    record.type = static_cast<JournalRecordType>(type);
    record.payload.assign(body + 1, length);
    contents.records.push_back(std::move(record));
    offset += kRecordHeaderSize + length;
  }
  contents.valid_bytes = offset;
  contents.tail_truncated = offset < bytes.size();
  return contents;
}

std::string SessionJournal::EncodeConfig(const FrameworkConfig& config,
                                         const SessionConfig& session) {
  std::string out = "privmark-journal-config = 1\n";
  out += "k = " + std::to_string(config.binning.k) + "\n";
  out += "epsilon = " + std::to_string(config.binning.epsilon) + "\n";
  out += std::string("enforce_joint = ") +
         (config.binning.enforce_joint ? "1" : "0") + "\n";
  out += "mark_bits = " + std::to_string(config.mark_bits) + "\n";
  out += "copies = " + std::to_string(config.copies) + "\n";
  out += std::string("derive_mark = ") +
         (config.derive_mark_from_identifiers ? "1" : "0") + "\n";
  std::string mark;
  mark.reserve(config.explicit_mark.size());
  for (size_t i = 0; i < config.explicit_mark.size(); ++i) {
    mark.push_back(config.explicit_mark.Get(i) ? '1' : '0');
  }
  out += "explicit_mark = " + mark + "\n";
  out += std::string("auto_epsilon = ") + (config.auto_epsilon ? "1" : "0") +
         "\n";
  out += std::string("hash = ") + HashAlgorithmToString(config.watermark.hash) +
         "\n";
  out += std::string("policy = ") +
         (session.policy == RebinPolicy::kFreezeBins ? "freeze" : "drift") +
         "\n";
  char threshold[64];
  std::snprintf(threshold, sizeof(threshold), "%.17g",
                session.drift_threshold);
  out += std::string("drift_threshold = ") + threshold + "\n";
  return out;
}

Status SessionJournal::CheckConfig(const std::string& payload,
                                   const FrameworkConfig& config,
                                   const SessionConfig& session) {
  const std::string expected = EncodeConfig(config, session);
  if (payload == expected) return Status::OK();
  const std::vector<std::string> have = Split(payload, '\n');
  const std::vector<std::string> want = Split(expected, '\n');
  for (size_t i = 0; i < std::max(have.size(), want.size()); ++i) {
    const std::string& h = i < have.size() ? have[i] : std::string();
    const std::string& w = i < want.size() ? want[i] : std::string();
    if (h != w) {
      return Status::InvalidArgument(
          "journal config mismatch: journal records '" + h +
          "' but the supplied configuration implies '" + w + "'");
    }
  }
  return Status::InvalidArgument("journal config mismatch");
}

std::string SessionJournal::EncodeBatch(const Table& batch) {
  std::string out;
  AppendLe32(&out, static_cast<uint32_t>(batch.num_rows()));
  AppendLe32(&out, static_cast<uint32_t>(batch.num_columns()));
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      const Value& cell = batch.at(r, c);
      out.push_back(static_cast<char>(cell.type()));
      switch (cell.type()) {
        case ValueType::kNull:
          break;
        case ValueType::kInt64:
          AppendLe64(&out, static_cast<uint64_t>(cell.AsInt64()));
          break;
        case ValueType::kDouble: {
          // Bit pattern, not decimal text: replay must rebuild the exact
          // double (sign of zero, subnormals, all 17 digits), or the
          // recovered session diverges from the crashed one.
          uint64_t bits = 0;
          const double v = cell.AsDouble();
          static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
          std::memcpy(&bits, &v, sizeof(bits));
          AppendLe64(&out, bits);
          break;
        }
        case ValueType::kString: {
          const std::string& s = cell.AsString();
          AppendLe32(&out, static_cast<uint32_t>(s.size()));
          out.append(s);
          break;
        }
      }
    }
  }
  return out;
}

Result<Table> SessionJournal::DecodeBatch(const std::string& payload,
                                          const Schema& schema) {
  size_t pos = 0;
  const auto have = [&](size_t n) { return payload.size() - pos >= n; };
  const Status truncated =
      Status::InvalidArgument("journal: batch record is truncated");
  if (!have(8)) return truncated;
  const uint32_t num_rows = ReadLe32(payload.data());
  const uint32_t num_cols = ReadLe32(payload.data() + 4);
  pos = 8;
  if (num_cols != schema.num_columns()) {
    return Status::InvalidArgument(
        "journal: batch record has " + std::to_string(num_cols) +
        " columns, schema has " + std::to_string(schema.num_columns()));
  }
  Table table(schema);
  for (uint32_t r = 0; r < num_rows; ++r) {
    Row row;
    row.reserve(num_cols);
    for (uint32_t c = 0; c < num_cols; ++c) {
      if (!have(1)) return truncated;
      const uint8_t tag = static_cast<uint8_t>(payload[pos++]);
      if (tag == static_cast<uint8_t>(ValueType::kNull)) {
        row.push_back(Value::Null());
      } else if (tag == static_cast<uint8_t>(ValueType::kInt64)) {
        if (!have(8)) return truncated;
        row.push_back(Value::Int64(
            static_cast<int64_t>(ReadLe64(payload.data() + pos))));
        pos += 8;
      } else if (tag == static_cast<uint8_t>(ValueType::kDouble)) {
        if (!have(8)) return truncated;
        const uint64_t bits = ReadLe64(payload.data() + pos);
        pos += 8;
        double v = 0;
        std::memcpy(&v, &bits, sizeof(v));
        row.push_back(Value::Double(v));
      } else if (tag == static_cast<uint8_t>(ValueType::kString)) {
        if (!have(4)) return truncated;
        const uint32_t length = ReadLe32(payload.data() + pos);
        pos += 4;
        if (!have(length)) return truncated;
        row.push_back(Value::String(payload.substr(pos, length)));
        pos += length;
      } else {
        return Status::InvalidArgument(
            "journal: batch record has unknown cell tag " +
            std::to_string(tag));
      }
    }
    PRIVMARK_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  if (pos != payload.size()) {
    return Status::InvalidArgument(
        "journal: batch record has trailing bytes");
  }
  return table;
}

std::string SessionJournal::EncodeSchema(const Schema& schema) {
  std::string out;
  for (const ColumnSpec& column : schema.columns()) {
    out += std::string(ColumnRoleToString(column.role)) + "|" +
           ValueTypeToString(column.type) + "|" + column.name + "\n";
  }
  return out;
}

Result<Schema> SessionJournal::DecodeSchema(const std::string& payload) {
  Schema schema;
  for (const std::string& line : Split(payload, '\n')) {
    if (line.empty()) continue;
    const size_t first = line.find('|');
    const size_t second =
        first == std::string::npos ? std::string::npos
                                   : line.find('|', first + 1);
    if (second == std::string::npos) {
      return Status::InvalidArgument("journal: malformed schema line: " +
                                     line);
    }
    ColumnSpec spec;
    PRIVMARK_ASSIGN_OR_RETURN(spec.role, RoleFromString(line.substr(0, first)));
    PRIVMARK_ASSIGN_OR_RETURN(
        spec.type, TypeFromString(line.substr(first + 1, second - first - 1)));
    spec.name = line.substr(second + 1);
    PRIVMARK_RETURN_NOT_OK(schema.AddColumn(std::move(spec)));
  }
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("journal: schema record has no columns");
  }
  return schema;
}

Result<EpochSeal> SessionJournal::DecodeEpochSealed(
    const std::string& payload) {
  EpochSeal seal;
  bool saw_epoch = false;
  for (const std::string& raw_line : Split(payload, '\n')) {
    const std::string line = Trim(raw_line);
    if (line.empty()) continue;
    const size_t eq = line.find(" = ");
    if (eq == std::string::npos) {
      return Status::InvalidArgument("journal: malformed seal line: " + line);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 3);
    if (key == "epoch") {
      PRIVMARK_ASSIGN_OR_RETURN(seal.epoch, ParseCount(value, "epoch"));
      saw_epoch = true;
    } else if (key == "rows_emitted") {
      PRIVMARK_ASSIGN_OR_RETURN(seal.rows_emitted,
                                ParseCount(value, "rows_emitted"));
    } else if (key == "rows_suppressed") {
      PRIVMARK_ASSIGN_OR_RETURN(seal.rows_suppressed,
                                ParseCount(value, "rows_suppressed"));
    } else {
      return Status::InvalidArgument("journal: unknown seal field: " + key);
    }
  }
  if (!saw_epoch) {
    return Status::InvalidArgument("journal: seal record without an epoch");
  }
  return seal;
}

}  // namespace privmark
