// Structured (JSON) forms of detection and fingerprint reports, the
// machine-readable face of `privmark_cli detect/cmp --json` (audiowmark's
// result style: per-key margin, verdict, threshold).
//
// Hand-rolled emitters — no third-party JSON dependency — with stable
// formatting so outputs diff cleanly and golden-file tests hold across
// platforms: fractions print with 6 decimal places (FormatDouble), vote
// margins with 1 (they are whole-valued sums of +-1.0 votes), p-values in
// scientific notation with 3 significant decimals.

#ifndef PRIVMARK_CORE_REPORT_JSON_H_
#define PRIVMARK_CORE_REPORT_JSON_H_

#include <string>

#include "watermark/fingerprint.h"
#include "watermark/hierarchical.h"

namespace privmark {

/// \brief JSON escaping for strings (quotes, backslashes, control
/// characters); exposed for the CLI's own ad-hoc fields.
std::string JsonEscape(const std::string& s);

/// \brief A plain single-key detection (detect verb, no reference mark):
/// recovered mark, counters, per-bit margins. `key_name` may be empty
/// (flag-supplied key material with no name).
std::string DetectReportJson(const std::string& key_name,
                             const DetectReport& report);

/// \brief A single-key comparison against an expected mark (cmp verb).
/// The verdict is the KeyVerdict of a one-entry registry scan; emits
/// mark_match, p_value, the threshold, and verdict MATCH / NO_MATCH.
std::string CmpReportJson(const KeyVerdict& verdict,
                          const BitVector& expected, double threshold);

/// \brief A full registry scan: per-key verdicts in rank order plus the
/// detected count and collusion flag.
std::string FingerprintReportJson(const FingerprintReport& report,
                                  double threshold);

}  // namespace privmark

#endif  // PRIVMARK_CORE_REPORT_JSON_H_
