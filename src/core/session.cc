#include "core/session.h"

#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "binning/binning_engine.h"
#include "common/failpoint.h"
#include "core/journal.h"
#include "watermark/ownership.h"

namespace privmark {

// The watermark agent may run on a different thread count than the
// binning agent; one session pool serves both, sized to the larger ask
// (0 = hardware concurrency wins). Outputs are byte-identical for any
// worker count, so this only moves throughput.
size_t SessionThreadAsk(const FrameworkConfig& config) {
  const size_t b = config.binning.num_threads;
  const size_t w = config.watermark.num_threads;
  if (b == 0 || w == 0) return 0;
  return std::max(b, w);
}

namespace {

// Per-attribute epoch-k enforcement: drop rows of sub-k bins per column,
// iterating because a dropped row shrinks its bins in *other* columns.
// Counts are built once; each round judges every surviving row against
// the current counts, then decrements the victims' bins — the same
// counts(all) - counts(removed) discipline CountState::Subtract uses, so
// rounds cost O(rows x columns) map-free lookups instead of a recount.
// Converges (rows only ever decrease) and is deterministic (victims are
// chosen per round from a fixed snapshot, in row order).
Result<size_t> EnforceEpochK(Table* binned,
                             const std::vector<size_t>& qi_columns, size_t k) {
  const size_t num_rows = binned->num_rows();
  const size_t num_cols = qi_columns.size();
  std::vector<std::map<std::string, size_t>> counts(num_cols);
  using CountIt = std::map<std::string, size_t>::iterator;
  std::vector<CountIt> row_bins(num_rows * num_cols);
  for (size_t r = 0; r < num_rows; ++r) {
    for (size_t c = 0; c < num_cols; ++c) {
      const auto [it, inserted] =
          counts[c].try_emplace(binned->at(r, qi_columns[c]).ToString(), 0);
      ++it->second;
      row_bins[r * num_cols + c] = it;
    }
  }
  std::vector<char> alive(num_rows, 1);
  std::vector<size_t> victims;
  for (;;) {
    victims.clear();
    for (size_t r = 0; r < num_rows; ++r) {
      if (!alive[r]) continue;
      for (size_t c = 0; c < num_cols; ++c) {
        if (row_bins[r * num_cols + c]->second < k) {
          victims.push_back(r);
          break;
        }
      }
    }
    if (victims.empty()) break;
    for (size_t r : victims) {
      alive[r] = 0;
      for (size_t c = 0; c < num_cols; ++c) {
        --row_bins[r * num_cols + c]->second;
      }
    }
  }
  std::vector<size_t> drop;
  for (size_t r = 0; r < num_rows; ++r) {
    if (!alive[r]) drop.push_back(r);
  }
  const size_t dropped_total = drop.size();
  if (!drop.empty()) binned->RemoveRows(std::move(drop));
  return dropped_total;
}

}  // namespace

size_t ProtectionSession::NodeVectorHash::operator()(
    const std::vector<NodeId>& key) const {
  uint64_t h = 1469598103934665603ull;
  for (const NodeId id : key) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(id));
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

ProtectionSession::ProtectionSession(UsageMetrics metrics,
                                     FrameworkConfig config,
                                     SessionConfig session)
    : metrics_(std::move(metrics)),
      config_(std::move(config)),
      session_(session),
      cipher_(Aes128::FromPassphrase(config_.binning.encryption_passphrase)) {
  // One pool for the whole session, injected into both agents' configs;
  // caller-supplied pools win (PoolOrMake convention). When the caller
  // injected a pool for either agent, the *other* agent is backfilled
  // with that same pool — never with a fresh pool built from the
  // num_threads knobs, which describe what was requested, not what the
  // caller (e.g. the service's admission controller) actually granted.
  // pool_ is only built, and stays null, for a fully serial session.
  ThreadPool* injected = config_.binning.pool != nullptr
                             ? config_.binning.pool
                             : config_.watermark.pool;
  if (injected == nullptr) {
    pool_ = MakeThreadPool(SessionThreadAsk(config_));
    injected = pool_.get();
  }
  if (config_.binning.pool == nullptr) config_.binning.pool = injected;
  if (config_.watermark.pool == nullptr) config_.watermark.pool = injected;
}

// Out of line: journal_ holds a type that is incomplete in the header.
ProtectionSession::~ProtectionSession() = default;

Status ProtectionSession::AttachJournal(
    std::unique_ptr<SessionJournal> journal, bool fresh) {
  if (journal == nullptr) {
    return Status::InvalidArgument("AttachJournal: null journal");
  }
  if (journal_ != nullptr) {
    return Status::InvalidArgument(
        "AttachJournal: session already has a journal");
  }
  if (fresh && rows_ingested_ > 0) {
    return Status::InvalidArgument(
        "AttachJournal: a fresh journal must be attached before the first "
        "Ingest (earlier batches would be unrecoverable)");
  }
  journal_ = std::move(journal);
  if (fresh) {
    PRIVMARK_RETURN_NOT_OK(journal_->AppendConfig(config_, session_));
    if (!config_.key_id.empty()) {
      PRIVMARK_RETURN_NOT_OK(journal_->AppendKeyId(config_.key_id));
    }
    schema_journaled_ = false;
  } else {
    // A resumed journal's prefix already covers everything this session
    // replayed, including the schema iff a batch was ever ingested.
    schema_journaled_ = schema_.has_value();
  }
  return Status::OK();
}

Status ProtectionSession::InitSchema(const Schema& schema) {
  if (schema_.has_value()) {
    if (!(schema == *schema_)) {
      return Status::InvalidArgument(
          "Ingest: batch schema differs from the session's schema");
    }
    return Status::OK();
  }
  PRIVMARK_ASSIGN_OR_RETURN(ident_column_, schema.IdentifyingColumn());
  qi_columns_ = schema.QuasiIdentifyingColumns();
  if (qi_columns_.size() != metrics_.num_columns()) {
    return Status::InvalidArgument(
        "ProtectionSession: schema has " + std::to_string(qi_columns_.size()) +
        " quasi-identifying columns but usage metrics cover " +
        std::to_string(metrics_.num_columns()));
  }
  trees_.clear();
  trees_.reserve(qi_columns_.size());
  for (const GeneralizationSet& gs : metrics_.maximal) {
    trees_.push_back(gs.tree());
  }
  PRIVMARK_ASSIGN_OR_RETURN(counts_, CountState::Zero(trees_));
  schema_ = schema;
  buffer_ = Table(schema);
  buffer_view_ = EncodedView();
  return Status::OK();
}

Result<IngestResult> ProtectionSession::Ingest(const Table& batch) {
  PRIVMARK_RETURN_NOT_OK(InitSchema(batch.schema()));

  // Write-ahead: the batch reaches the journal before any session state
  // changes, so a crash at any later point replays it. A failed append
  // fails the Ingest cleanly — no state moved, the caller may retry.
  if (journal_ != nullptr) {
    if (!schema_journaled_) {
      PRIVMARK_RETURN_NOT_OK(journal_->AppendSchema(*schema_));
      schema_journaled_ = true;
    }
    PRIVMARK_RETURN_NOT_OK(journal_->AppendBatch(batch));
  }

  // Count-accumulation phase, per batch: encode once, roll counts up,
  // fold into the session state (exact integer merge — the accumulated
  // state equals a one-shot count of every row seen). A frozen
  // kFreezeBins session can never flush again, so its accumulated counts
  // are dead state — skip the histogram work and emit straight away.
  PRIVMARK_ASSIGN_OR_RETURN(
      EncodedView view,
      EncodedView::Leaves(batch, qi_columns_, trees_, pool()));
  rows_ingested_ += batch.num_rows();
  if (live_.has_value() && session_.policy == RebinPolicy::kFreezeBins) {
    return EmitFrozen(batch, view);
  }
  PRIVMARK_ASSIGN_OR_RETURN(CountState batch_counts,
                            CountState::FromView(trees_, view, pool()));
  PRIVMARK_RETURN_NOT_OK(counts_.Merge(batch_counts));

  // Buffer toward the next flush.
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    PRIVMARK_RETURN_NOT_OK(buffer_.AppendRow(batch.row(r)));
  }
  PRIVMARK_RETURN_NOT_OK(buffer_view_.Append(view));
  rows_since_epoch_ += batch.num_rows();

  IngestResult out;
  out.epoch = epochs_.size();
  out.rows_buffered = buffer_.num_rows();

  if (live_.has_value() && session_.policy == RebinPolicy::kRebinOnDrift &&
      static_cast<double>(rows_since_epoch_) >=
          session_.drift_threshold * static_cast<double>(live_->basis_rows)) {
    PRIVMARK_ASSIGN_OR_RETURN(EpochOutput closed, FlushBuffer());
    out.flushed = true;
    out.epoch = closed.epoch;
    out.embed = closed.outcome.embed;
    out.emitted = std::move(closed.outcome.watermarked);
    out.rows_emitted = out.emitted.num_rows();
    out.rows_suppressed = epochs_.back().rows_suppressed;
    out.rows_buffered = 0;
  }
  return out;
}

Result<EpochOutput> ProtectionSession::Flush() {
  if (PRIVMARK_FAILPOINT("session.flush")) {
    return Status::IOError("failpoint 'session.flush' triggered");
  }
  if (!schema_.has_value()) {
    return Status::InvalidArgument("Flush: nothing ingested");
  }
  if (live_.has_value() && buffer_.num_rows() == 0) {
    return Status::InvalidArgument("Flush: no rows buffered");
  }
  // Write-ahead: the marker commits the intent, so a crash anywhere in
  // FlushBuffer makes replay re-execute the (deterministic) flush.
  if (journal_ != nullptr) {
    PRIVMARK_RETURN_NOT_OK(journal_->AppendFlushMarker());
  }
  return FlushBuffer();
}

Result<ProtectionSession::LiveEpoch> ProtectionSession::SnapshotEpoch(
    const BinningOutcome& binning, const EpochRecord& record) const {
  LiveEpoch live;
  live.index = record.epoch;
  live.ultimate = binning.ultimate;
  live.mark = record.mark;
  live.copies = std::max<size_t>(1, record.copies);
  live.wmd_size = record.wmd_size;
  live.effective_k = config_.binning.k + record.epsilon_used;
  live.basis_rows = rows_ingested_;

  // Established bins, read from the epoch's own emitted output: a bin is
  // established iff the epoch emitted >= effective_k rows into it, which
  // is exactly what keeps the concatenated output k-anonymous when later
  // frozen batches join only established bins. Only frozen emission
  // (kFreezeBins) ever consults this state — drift sessions re-bin every
  // window, so skip the per-cell label resolution for them.
  if (session_.policy != RebinPolicy::kFreezeBins) return live;
  const Table& binned = binning.binned;
  std::string scratch;
  const auto label_of = [&scratch](const Value& cell) -> std::string_view {
    if (cell.type() == ValueType::kString) return cell.AsString();
    scratch = cell.ToString();
    return scratch;
  };
  if (config_.binning.enforce_joint) {
    std::unordered_map<std::vector<NodeId>, size_t, NodeVectorHash> joint;
    std::vector<NodeId> key(qi_columns_.size());
    for (size_t r = 0; r < binned.num_rows(); ++r) {
      for (size_t c = 0; c < qi_columns_.size(); ++c) {
        PRIVMARK_ASSIGN_OR_RETURN(
            key[c], live.ultimate[c].NodeForLabel(
                        label_of(binned.at(r, qi_columns_[c]))));
      }
      ++joint[key];
    }
    for (const auto& [bin_key, count] : joint) {
      if (count >= live.effective_k) live.joint_established.insert(bin_key);
    }
  } else {
    live.established.resize(qi_columns_.size());
    for (size_t c = 0; c < qi_columns_.size(); ++c) {
      const DomainHierarchy& tree = *live.ultimate[c].tree();
      std::vector<size_t> node_counts(tree.num_nodes(), 0);
      for (size_t r = 0; r < binned.num_rows(); ++r) {
        PRIVMARK_ASSIGN_OR_RETURN(
            NodeId node, live.ultimate[c].NodeForLabel(
                             label_of(binned.at(r, qi_columns_[c]))));
        ++node_counts[node];
      }
      live.established[c].assign(tree.num_nodes(), 0);
      for (size_t n = 0; n < tree.num_nodes(); ++n) {
        if (node_counts[n] >= live.effective_k) live.established[c][n] = 1;
      }
    }
  }
  return live;
}

Result<EpochOutput> ProtectionSession::FlushBuffer() {
  EpochOutput epoch;
  epoch.epoch = epochs_.size();
  ProtectionOutcome& outcome = epoch.outcome;

  // The mark: F(identifier statistic) of the epoch's own rows (Sec. 5.4),
  // or the explicit mark.
  if (config_.derive_mark_from_identifiers) {
    PRIVMARK_ASSIGN_OR_RETURN(outcome.identifier_statistic,
                              StatisticFromTable(buffer_, ident_column_));
    PRIVMARK_ASSIGN_OR_RETURN(
        outcome.mark,
        DeriveOwnershipMark(outcome.identifier_statistic, config_.mark_bits,
                            config_.watermark.hash));
  } else {
    if (config_.explicit_mark.empty()) {
      return Status::InvalidArgument(
          "Protect: explicit_mark is empty but mark derivation is disabled");
    }
    outcome.mark = config_.explicit_mark;
  }

  // Bin-selection phase over the window's counts (counts_ accumulates
  // batch merges since the last flush). For the first flush the window
  // is everything ever ingested — which is what makes the single-batch
  // session bit-identical to one-shot Protect; a re-binned (drift)
  // epoch selects from its own window, because the epoch must stand
  // alone as a k-anonymous table, so its generalization has to fit the
  // rows it actually emits, not the (much larger) history. The buffer
  // view is moved into the final agent run — it is rebuilt empty after
  // the flush either way.
  BinningConfig binning_config = config_.binning;
  BinningAgent agent(metrics_, binning_config);
  if (config_.auto_epsilon) {
    PRIVMARK_ASSIGN_OR_RETURN(outcome.binning,
                              agent.RunWithState(buffer_, buffer_view_,
                                                 counts_));
  } else {
    PRIVMARK_ASSIGN_OR_RETURN(
        outcome.binning,
        agent.RunWithState(buffer_, std::move(buffer_view_), counts_));
  }
  outcome.epsilon_used = binning_config.epsilon;

  if (config_.auto_epsilon) {
    // Estimate |wmd| on the first pass, derive epsilon, re-select from
    // the same accumulated counts (Sec. 6).
    HierarchicalWatermarker probe = MakeWatermarker(outcome.binning.ultimate);
    PRIVMARK_ASSIGN_OR_RETURN(size_t bandwidth,
                              probe.EstimateBandwidth(outcome.binning.binned));
    size_t copies = config_.copies;
    if (copies == 0) {
      copies = std::max<size_t>(1, bandwidth / config_.mark_bits);
    }
    const size_t wmd_size = copies * config_.mark_bits;
    size_t epsilon = 0;
    if (config_.binning.enforce_joint) {
      PRIVMARK_ASSIGN_OR_RETURN(
          epsilon, ConservativeEpsilon(outcome.binning.binned,
                                       outcome.binning.qi_columns, wmd_size));
    } else {
      // Per-attribute k-anonymity: a column sees roughly wmd/|columns| of
      // the moves, and its own biggest bin bounds any bin's exposure.
      const size_t per_column_moves =
          wmd_size / std::max<size_t>(1, outcome.binning.qi_columns.size());
      for (size_t col : outcome.binning.qi_columns) {
        PRIVMARK_ASSIGN_OR_RETURN(
            size_t col_epsilon,
            ConservativeEpsilon(outcome.binning.binned, {col},
                                per_column_moves));
        epsilon = std::max(epsilon, col_epsilon);
      }
    }
    if (epsilon > binning_config.epsilon) {
      binning_config.epsilon = epsilon;
      BinningAgent adjusted(metrics_, binning_config);
      PRIVMARK_ASSIGN_OR_RETURN(
          outcome.binning,
          adjusted.RunWithState(buffer_, std::move(buffer_view_), counts_));
      outcome.epsilon_used = epsilon;
    }
  }

  // Re-binned epochs must stand alone. Selecting from the window's own
  // counts already guarantees this for every bin the mono/joint phases
  // saw; the sweep below catches the residual suppression edge (a
  // kSuppress re-selection can leave a freshly sub-k node behind) by
  // dropping rows until the epoch's own table satisfies k. No-op on the
  // first flush and in joint mode by construction.
  size_t epoch_dropped = 0;
  if (session_.policy == RebinPolicy::kRebinOnDrift && !epochs_.empty() &&
      !config_.binning.enforce_joint) {
    PRIVMARK_ASSIGN_OR_RETURN(
        epoch_dropped,
        EnforceEpochK(&outcome.binning.binned, outcome.binning.qi_columns,
                      config_.binning.k + outcome.epsilon_used));
  }

  // Watermarking pass over the epoch's emitted rows.
  outcome.watermarked = outcome.binning.binned.Clone();
  HierarchicalWatermarker watermarker = MakeWatermarker(outcome.binning.ultimate);
  PRIVMARK_ASSIGN_OR_RETURN(
      outcome.embed,
      watermarker.Embed(&outcome.watermarked, outcome.mark, config_.copies));

  // Fig. 14 seamlessness rows.
  PRIVMARK_ASSIGN_OR_RETURN(
      outcome.seamlessness,
      MeasureSeamlessness(outcome.binning.binned, outcome.watermarked,
                          outcome.binning.qi_columns, config_.binning.k));

  // Record the epoch and freeze its generalization.
  EpochRecord record;
  record.epoch = epoch.epoch;
  record.ultimate = outcome.binning.ultimate;
  record.mark = outcome.mark;
  record.identifier_statistic = outcome.identifier_statistic;
  record.copies = outcome.embed.copies;
  record.wmd_size = outcome.embed.wmd_size;
  record.epsilon_used = outcome.epsilon_used;
  record.rows_emitted = outcome.watermarked.num_rows();
  record.rows_suppressed = outcome.binning.suppressed_rows + epoch_dropped;
  PRIVMARK_ASSIGN_OR_RETURN(LiveEpoch live,
                            SnapshotEpoch(outcome.binning, record));
  live_ = std::move(live);
  epochs_.push_back(std::move(record));
  rows_emitted_ += outcome.watermarked.num_rows();
  rows_suppressed_ += outcome.binning.suppressed_rows + epoch_dropped;

  buffer_ = Table(*schema_);
  buffer_view_ = EncodedView();
  PRIVMARK_ASSIGN_OR_RETURN(counts_, CountState::Zero(trees_));
  rows_since_epoch_ = 0;

  // Epoch boundary: seal + fsync is the durability barrier. The epoch
  // is already committed in memory and its write-ahead records suffice
  // for replay, so a failed seal degrades durability without corrupting
  // anything — record the first such error instead of failing the
  // flush (which would discard the epoch's output).
  if (journal_ != nullptr) {
    const Status seal =
        PRIVMARK_FAILPOINT("session.seal")
            ? Status::IOError("failpoint 'session.seal' triggered")
            : journal_->AppendEpochSealed(epochs_.back());
    if (!seal.ok() && journal_status_.ok()) journal_status_ = seal;
  }
  return epoch;
}

Result<IngestResult> ProtectionSession::EmitFrozen(const Table& batch,
                                                   const EncodedView& view) {
  const LiveEpoch& live = *live_;
  IngestResult out;
  out.epoch = live.index;

  // Keep only rows of established bins; everything else cannot meet k
  // under the frozen generalization.
  std::vector<char> keep(batch.num_rows(), 1);
  std::vector<NodeId> key(qi_columns_.size());
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    for (size_t c = 0; c < qi_columns_.size(); ++c) {
      PRIVMARK_ASSIGN_OR_RETURN(
          NodeId node, live.ultimate[c].NodeForLeaf(view.column(c).id(r)));
      if (config_.binning.enforce_joint) {
        key[c] = node;
      } else if (!live.established[c][node]) {
        keep[r] = 0;
        break;
      }
    }
    if (keep[r] && config_.binning.enforce_joint &&
        live.joint_established.find(key) == live.joint_established.end()) {
      keep[r] = 0;
    }
  }

  Table kept(*schema_);
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    if (!keep[r]) continue;
    PRIVMARK_RETURN_NOT_OK(kept.AppendRow(batch.row(r)));
  }
  out.rows_suppressed = batch.num_rows() - kept.num_rows();
  PRIVMARK_ASSIGN_OR_RETURN(EncodedView kept_view, view.Filtered(keep));

  PRIVMARK_ASSIGN_OR_RETURN(
      out.emitted,
      MaterializeProtected(kept, qi_columns_, ident_column_, live.ultimate,
                           kept_view, cipher_, pool()));

  // Embed the frozen epoch's mark with its recorded copy count, so the
  // batch's slots land in the same wmd positions detection will read.
  HierarchicalWatermarker watermarker = MakeWatermarker(live.ultimate);
  PRIVMARK_ASSIGN_OR_RETURN(
      out.embed, watermarker.Embed(&out.emitted, live.mark, live.copies));

  out.rows_emitted = out.emitted.num_rows();
  epochs_[live.index].rows_emitted += out.rows_emitted;
  epochs_[live.index].rows_suppressed += out.rows_suppressed;
  rows_emitted_ += out.rows_emitted;
  rows_suppressed_ += out.rows_suppressed;
  return out;
}

Result<RecoveredSession> ProtectionSession::Recover(
    const std::string& journal_path, UsageMetrics metrics,
    FrameworkConfig config, SessionConfig session_config,
    bool resume_journaling) {
  PRIVMARK_ASSIGN_OR_RETURN(JournalContents contents,
                            SessionJournal::ReadAll(journal_path));
  RecoveredSession out;
  out.valid_bytes = contents.valid_bytes;
  out.tail_truncated = contents.tail_truncated;

  auto session = std::make_unique<ProtectionSession>(std::move(metrics),
                                                     config, session_config);
  auto append_emitted = [&out](const Table& emitted) -> Status {
    if (emitted.num_rows() == 0) return Status::OK();
    if (out.emitted.schema().num_columns() == 0) {
      out.emitted = Table(emitted.schema());
    }
    for (size_t r = 0; r < emitted.num_rows(); ++r) {
      PRIVMARK_RETURN_NOT_OK(out.emitted.AppendRow(emitted.row(r)));
    }
    return Status::OK();
  };

  std::optional<Schema> schema;
  bool saw_config = false;
  for (size_t i = 0; i < contents.records.size(); ++i) {
    const JournalRecord& record = contents.records[i];
    switch (record.type) {
      case JournalRecordType::kConfig: {
        if (i != 0) {
          return Status::InvalidArgument(
              "journal: config record is not the first record");
        }
        PRIVMARK_RETURN_NOT_OK(SessionJournal::CheckConfig(
            record.payload, config, session_config));
        saw_config = true;
        break;
      }
      case JournalRecordType::kKeyId: {
        if (record.payload != config.key_id) {
          return Status::InvalidArgument(
              "journal: recorded key_id '" + record.payload +
              "' does not match the supplied key_id '" + config.key_id + "'");
        }
        break;
      }
      case JournalRecordType::kSchema: {
        if (schema.has_value()) {
          // A crash between the schema append and its batch append can
          // legitimately duplicate the schema; only a *different* one
          // is corruption.
          if (record.payload != SessionJournal::EncodeSchema(*schema)) {
            return Status::InvalidArgument(
                "journal: conflicting schema records");
          }
          break;
        }
        PRIVMARK_ASSIGN_OR_RETURN(Schema decoded,
                                  SessionJournal::DecodeSchema(record.payload));
        schema = std::move(decoded);
        break;
      }
      case JournalRecordType::kBatch: {
        if (!schema.has_value()) {
          return Status::InvalidArgument(
              "journal: batch record before any schema record");
        }
        PRIVMARK_ASSIGN_OR_RETURN(
            Table batch, SessionJournal::DecodeBatch(record.payload, *schema));
        Result<IngestResult> result = session->Ingest(batch);
        ++out.batches_applied;
        // A non-OK Ingest failed identically (and statelessly) in the
        // original run: the journal is write-ahead, so the record's
        // presence only proves the attempt. Replay moves on.
        if (result.ok()) {
          PRIVMARK_RETURN_NOT_OK(append_emitted(result->emitted));
        }
        break;
      }
      case JournalRecordType::kFlushMarker: {
        Result<EpochOutput> result = session->Flush();
        if (result.ok()) {
          PRIVMARK_RETURN_NOT_OK(append_emitted(result->outcome.watermarked));
        }
        break;
      }
      case JournalRecordType::kEpochSealed: {
        PRIVMARK_ASSIGN_OR_RETURN(
            EpochSeal seal, SessionJournal::DecodeEpochSealed(record.payload));
        if (session->epochs().size() != seal.epoch + 1) {
          return Status::InvalidArgument(
              "journal: seal for epoch " + std::to_string(seal.epoch) +
              " but replay sealed " +
              std::to_string(session->epochs().size()) + " epoch(s)");
        }
        const EpochRecord& replayed = session->epochs().back();
        if (replayed.rows_emitted != seal.rows_emitted ||
            replayed.rows_suppressed != seal.rows_suppressed) {
          return Status::InvalidArgument(
              "journal: epoch " + std::to_string(seal.epoch) +
              " seal records " + std::to_string(seal.rows_emitted) +
              " emitted / " + std::to_string(seal.rows_suppressed) +
              " suppressed rows, but replay produced " +
              std::to_string(replayed.rows_emitted) + " / " +
              std::to_string(replayed.rows_suppressed) +
              " — wrong key, passphrase, or metrics?");
        }
        ++out.epochs_sealed;
        break;
      }
    }
  }
  if (!saw_config && !contents.records.empty()) {
    return Status::InvalidArgument(
        "journal: first record is not a config record");
  }

  if (resume_journaling) {
    PRIVMARK_ASSIGN_OR_RETURN(
        std::unique_ptr<SessionJournal> journal,
        SessionJournal::Resume(journal_path, contents.valid_bytes));
    // An empty journal (crash between creation and the config append)
    // resumes as a fresh one so the config fingerprint gets written.
    PRIVMARK_RETURN_NOT_OK(session->AttachJournal(
        std::move(journal), /*fresh=*/contents.records.empty()));
    session->schema_journaled_ = schema.has_value();
  }
  out.session = std::move(session);
  return out;
}

HierarchicalWatermarker ProtectionSession::MakeWatermarker(
    const std::vector<GeneralizationSet>& ultimate) const {
  return HierarchicalWatermarker(qi_columns_, ident_column_, metrics_.maximal,
                                 ultimate, config_.key, config_.watermark);
}

HierarchicalWatermarker ProtectionSession::MakeEpochWatermarker(
    const EpochRecord& rec) const {
  return MakeWatermarker(rec.ultimate);
}

Result<std::vector<DetectReport>> ProtectionSession::DetectAcrossEpochs(
    const Table& concatenated) const {
  size_t total = 0;
  for (const EpochRecord& rec : epochs_) total += rec.rows_emitted;
  if (concatenated.num_rows() != total) {
    return Status::InvalidArgument(
        "DetectAcrossEpochs: table has " +
        std::to_string(concatenated.num_rows()) + " rows, session emitted " +
        std::to_string(total));
  }
  std::vector<DetectReport> reports;
  reports.reserve(epochs_.size());
  size_t offset = 0;
  for (const EpochRecord& rec : epochs_) {
    Table segment(concatenated.schema());
    for (size_t r = offset; r < offset + rec.rows_emitted; ++r) {
      PRIVMARK_RETURN_NOT_OK(segment.AppendRow(concatenated.row(r)));
    }
    offset += rec.rows_emitted;
    HierarchicalWatermarker watermarker = MakeEpochWatermarker(rec);
    PRIVMARK_ASSIGN_OR_RETURN(
        DetectReport report,
        watermarker.Detect(segment, rec.mark.size(), rec.wmd_size));
    reports.push_back(std::move(report));
  }
  return reports;
}

Result<std::vector<FingerprintReport>> ProtectionSession::
    FingerprintAcrossEpochs(const Table& concatenated,
                            const KeyRegistry& registry) const {
  return FingerprintAcrossEpochsStreamed(concatenated, registry, nullptr);
}

Result<std::vector<FingerprintReport>> ProtectionSession::
    FingerprintAcrossEpochsStreamed(const Table& concatenated,
                                    const KeyRegistry& registry,
                                    const FingerprintShardSink& sink) const {
  size_t total = 0;
  for (const EpochRecord& rec : epochs_) total += rec.rows_emitted;
  if (concatenated.num_rows() != total) {
    return Status::InvalidArgument(
        "FingerprintAcrossEpochs: table has " +
        std::to_string(concatenated.num_rows()) + " rows, session emitted " +
        std::to_string(total));
  }
  std::vector<FingerprintReport> reports;
  reports.reserve(epochs_.size());
  size_t offset = 0;
  for (size_t e = 0; e < epochs_.size(); ++e) {
    const EpochRecord& rec = epochs_[e];
    Table segment(concatenated.schema());
    for (size_t r = offset; r < offset + rec.rows_emitted; ++r) {
      PRIVMARK_RETURN_NOT_OK(segment.AppendRow(concatenated.row(r)));
    }
    offset += rec.rows_emitted;
    HierarchicalWatermarker watermarker = MakeEpochWatermarker(rec);
    FingerprintConfig scan;
    scan.wm_size = rec.mark.size();
    scan.wmd_size = rec.wmd_size;
    scan.expected_mark = rec.mark;
    PRIVMARK_ASSIGN_OR_RETURN(
        FingerprintReport report,
        ScanForFingerprintsStreamed(watermarker, segment, registry, scan,
                                    sink, /*epoch=*/e));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace privmark
