#include "core/report_json.h"

#include <cstdio>

#include "common/strings.h"

namespace privmark {

namespace {

// Fractions (matches, ratios, thresholds) with fixed 6 decimals.
std::string Frac(double v) { return FormatDouble(v, 6); }

// Vote margins are whole-valued sums of +-1.0 votes.
std::string Margin(double v) { return FormatDouble(v, 1); }

// p-values span many orders of magnitude; scientific notation keeps the
// information without 300-character fixed-point strings.
std::string PValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

size_t CountVoted(const DetectReport& report) {
  size_t voted = 0;
  for (bool b : report.bit_voted) {
    if (b) ++voted;
  }
  return voted;
}

std::string MarginArray(const DetectReport& report) {
  std::string out = "[";
  for (size_t j = 0; j < report.vote_margin.size(); ++j) {
    if (j > 0) out += ", ";
    out += Margin(report.vote_margin[j]);
  }
  out += "]";
  return out;
}

// The counter and recovery fields shared by every report flavor, emitted
// at `indent` spaces.
std::string DetectionFields(const DetectReport& report,
                            const std::string& indent) {
  std::string out;
  out += indent + "\"recovered\": \"" + report.recovered.ToString() + "\",\n";
  out += indent + "\"bits_voted\": " + std::to_string(CountVoted(report)) +
         ",\n";
  out += indent +
         "\"tuples_selected\": " + std::to_string(report.tuples_selected) +
         ",\n";
  out += indent + "\"slots_read\": " + std::to_string(report.slots_read) +
         ",\n";
  out += indent +
         "\"slots_skipped\": " + std::to_string(report.slots_skipped) + ",\n";
  out += indent + "\"vote_margin\": " + MarginArray(report);
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string DetectReportJson(const std::string& key_name,
                             const DetectReport& report) {
  std::string out = "{\n";
  out += "  \"mode\": \"detect\",\n";
  out += "  \"key\": \"" + JsonEscape(key_name) + "\",\n";
  out += DetectionFields(report, "  ") + "\n";
  out += "}\n";
  return out;
}

std::string CmpReportJson(const KeyVerdict& verdict, const BitVector& expected,
                          double threshold) {
  std::string out = "{\n";
  out += "  \"mode\": \"cmp\",\n";
  out += "  \"key\": \"" + JsonEscape(verdict.key_name) + "\",\n";
  out += "  \"expected\": \"" + expected.ToString() + "\",\n";
  out += "  \"mark_match\": " + Frac(verdict.mark_match) + ",\n";
  out += "  \"margin_ratio\": " + Frac(verdict.margin_ratio) + ",\n";
  out += "  \"p_value\": " + PValue(verdict.p_value) + ",\n";
  out += "  \"threshold\": " + Frac(threshold) + ",\n";
  out += std::string("  \"verdict\": ") +
         (verdict.detected ? "\"MATCH\"" : "\"NO_MATCH\"") + ",\n";
  out += DetectionFields(verdict.detection, "  ") + "\n";
  out += "}\n";
  return out;
}

std::string FingerprintReportJson(const FingerprintReport& report,
                                  double threshold) {
  std::string out = "{\n";
  out += "  \"mode\": \"fingerprint\",\n";
  out += "  \"keys_scanned\": " + std::to_string(report.verdicts.size()) +
         ",\n";
  out += "  \"keys_detected\": " + std::to_string(report.keys_detected) +
         ",\n";
  out += std::string("  \"collusion\": ") +
         (report.collusion ? "true" : "false") + ",\n";
  out += "  \"threshold\": " + Frac(threshold) + ",\n";
  out += "  \"keys\": [";
  for (size_t i = 0; i < report.ranking.size(); ++i) {
    const KeyVerdict& verdict = report.verdicts[report.ranking[i]];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"rank\": " + std::to_string(i + 1) + ",\n";
    out += "      \"key\": \"" + JsonEscape(verdict.key_name) + "\",\n";
    out += "      \"score\": " + Frac(verdict.score) + ",\n";
    out += "      \"mark_match\": " + Frac(verdict.mark_match) + ",\n";
    out += "      \"margin_ratio\": " + Frac(verdict.margin_ratio) + ",\n";
    out += "      \"p_value\": " + PValue(verdict.p_value) + ",\n";
    out += std::string("      \"verdict\": ") +
           (verdict.detected ? "\"DETECTED\"" : "\"CLEAR\"") + ",\n";
    out += DetectionFields(verdict.detection, "      ") + "\n";
    out += "    }";
  }
  out += "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace privmark
