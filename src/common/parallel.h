// Deterministic sharded parallel execution.
//
// Every hot stage of the pipeline — per-node counting, watermark
// embed/detect, table materialization, attack scans — is embarrassingly
// parallel over rows once the EncodedView substrate holds the columns as
// flat integers. This header supplies the one execution model they all
// share, built around a hard invariant:
//
//   parallel output is byte-identical to serial output for any worker
//   or shard count.
//
// The invariant is enforced structurally, not by luck:
//  - ShardRanges() depends only on (count, num_shards), never on
//    scheduling;
//  - shards own disjoint contiguous index ranges, so writers never touch
//    the same element;
//  - every shard's result lands in a pre-sized slot indexed by shard
//    number, and callers merge the slots in shard order on one thread;
//  - error reporting is deterministic: the Status (or exception)
//    surfaced is the one from the lowest-numbered failing shard, which —
//    because earlier shards cover earlier rows — is the same error a
//    serial scan would have hit first.
//
// Callers remain responsible for exactness of the merge itself: integer
// sums and sums of small whole-valued doubles (vote tallies of 1.0)
// commute exactly; arbitrary floating-point accumulations do not and
// must stay serial or per-shard.
//
// num_threads conventions, used by every config knob in the pipeline:
// 1 = serial (the default; no pool, no threads, the exact pre-parallel
// code path), 0 = one worker per hardware thread, N = exactly N workers.

#ifndef PRIVMARK_COMMON_PARALLEL_H_
#define PRIVMARK_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace privmark {

/// \brief One contiguous shard [begin, end) of a [0, count) index space.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool operator==(const ShardRange& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// \brief Splits [0, count) into min(num_shards, count) contiguous,
/// non-empty, near-equal ranges (the first count % shards ranges hold one
/// extra element). Deterministic in (count, num_shards) alone; empty for
/// count == 0. num_shards == 0 is treated as 1.
std::vector<ShardRange> ShardRanges(size_t count, size_t num_shards);

/// \brief A fixed-size worker pool for fork-join batches.
///
/// The pool holds num_threads - 1 background workers; the thread calling
/// Run() always participates as the remaining worker, so ThreadPool(1)
/// spawns nothing and Run() degenerates to an inline serial loop. A pool
/// outlives any number of Run() batches (workers park between batches).
///
/// Run() is fork-join and thread-safe: any number of threads may submit
/// batches concurrently (a long-lived service shares one pool across
/// sessions). Batches queue FIFO; workers drain the oldest unclaimed
/// batch first, and a submitter only executes tasks of its *own* batch,
/// so one request's compute never blocks inside another's. Tasks must
/// still not call Run() on their own pool (no nesting).
class ThreadPool {
 public:
  /// \param num_threads total workers including the caller; 0 means
  ///        std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief A capped view of `parent`: reports min(limit, parent's count)
  /// from num_threads() and forwards Run() to the parent. Agents shard by
  /// pool->num_threads(), so a lease makes them cut at most `limit`
  /// tasks per batch — at most `limit` of the shared workers ever execute
  /// this lease's work concurrently. That is how an admission controller
  /// hands a request `granted` threads of one shared pool: the lease's
  /// limit IS the grant (see service/admission.h). The view owns no
  /// threads and must not outlive `parent`; `parent` must not be null.
  static std::unique_ptr<ThreadPool> Lease(ThreadPool* parent, size_t limit);

  size_t num_threads() const {
    if (parent_ == nullptr) return num_threads_;
    return std::min(limit_.load(std::memory_order_relaxed),
                    parent_->num_threads_);
  }

  /// \brief True for Lease() views (no owned workers; Run forwards).
  bool is_lease() const { return parent_ != nullptr; }

  /// \brief Re-caps a lease (admission grants change per request). 0 is
  /// clamped to 1 — a lease is never smaller than the calling thread.
  /// Callers must not resize a lease that has a Run() in flight; the
  /// per-session serialization of the service guarantees that. No-op
  /// with an assert on non-lease pools.
  void set_limit(size_t limit);

  /// \brief Runs task(i) for every i in [0, num_tasks) across the workers
  /// and blocks until all complete. Tasks are claimed dynamically, so the
  /// *schedule* is nondeterministic — tasks must only write state they own
  /// (e.g. their shard's slot). If tasks throw, every task still runs to
  /// completion (or throws) and the exception from the lowest-numbered
  /// throwing task is rethrown on the calling thread.
  void Run(size_t num_tasks, const std::function<void(size_t)>& task);

 private:
  struct Batch {
    const std::function<void(size_t)>* task = nullptr;
    size_t num_tasks = 0;
    std::atomic<size_t> next_task{0};
    std::atomic<size_t> completed{0};
    std::vector<std::exception_ptr> errors;  // slot per task, owner-written
  };

  ThreadPool(ThreadPool* parent, size_t limit);  // lease constructor

  void WorkerLoop();
  void ExecuteTasks(Batch* batch);

  size_t num_threads_ = 1;
  ThreadPool* parent_ = nullptr;          // non-null for lease views
  std::atomic<size_t> limit_{0};          // lease views only
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new batch was published
  std::condition_variable done_cv_;  // Run(): some batch fully completed
  // FIFO of batches with (possibly) unclaimed tasks. Workers copy the
  // front shared_ptr under mu_, so a worker that wakes after a submitter
  // already retired its batch still holds a live (but fully claimed)
  // object instead of a dangling pointer.
  std::vector<std::shared_ptr<Batch>> pending_;  // guarded by mu_
  bool stop_ = false;                            // guarded by mu_
};

/// \brief nullptr for num_threads == 1 (serial — every stage treats a null
/// pool as the plain inline loop), otherwise a pool of num_threads workers
/// (0 = hardware concurrency). The one-liner every config-carrying stage
/// uses to honor its num_threads knob.
std::unique_ptr<ThreadPool> MakeThreadPool(size_t num_threads);

/// \brief Resolves the shared "caller-owned pool" config convention: when
/// `pool` is set it wins (its worker count governs; num_threads is
/// ignored) and no pool is constructed; otherwise a private pool built
/// from num_threads is stored in *owned and returned. Long-lived callers
/// (the protection session, a future service front-end) inject one pool
/// across many agent runs instead of paying thread spawn/join per run.
inline ThreadPool* PoolOrMake(ThreadPool* pool, size_t num_threads,
                              std::unique_ptr<ThreadPool>* owned) {
  if (pool != nullptr) return pool;
  *owned = MakeThreadPool(num_threads);
  return owned->get();
}

/// \brief Shards [0, count) into at most pool->num_threads() ranges and
/// runs fn(shard_index, begin, end) on each; a null pool (or a single
/// shard) runs inline on the caller. Returns the Status of the
/// lowest-numbered failing shard, OK when all succeed.
Status ParallelFor(ThreadPool* pool, size_t count,
                   const std::function<Status(size_t, size_t, size_t)>& fn);

/// \brief Sharded map-reduce with a deterministic merge: map(shard, begin,
/// end) produces one T per shard, and merge(&acc, shard_result) is applied
/// *in shard order* on the calling thread, folding into `init`. Returns
/// the lowest-numbered failing shard's Status on error; `init` when
/// count == 0.
template <typename T>
Result<T> ParallelReduce(
    ThreadPool* pool, size_t count, T init,
    const std::function<Result<T>(size_t, size_t, size_t)>& map,
    const std::function<void(T*, T&&)>& merge) {
  const std::vector<ShardRange> shards =
      ShardRanges(count, pool == nullptr ? 1 : pool->num_threads());
  if (shards.empty()) return init;

  std::vector<std::optional<Result<T>>> results(shards.size());
  if (pool == nullptr || shards.size() == 1) {
    for (size_t s = 0; s < shards.size(); ++s) {
      results[s].emplace(map(s, shards[s].begin, shards[s].end));
    }
  } else {
    pool->Run(shards.size(), [&](size_t s) {
      results[s].emplace(map(s, shards[s].begin, shards[s].end));
    });
  }
  T acc = std::move(init);
  for (size_t s = 0; s < shards.size(); ++s) {
    Result<T>& result = *results[s];
    if (!result.ok()) return result.status();
    merge(&acc, std::move(result).ValueOrDie());
  }
  return acc;
}

}  // namespace privmark

#endif  // PRIVMARK_COMMON_PARALLEL_H_
