#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace privmark {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(const std::vector<uint8_t>& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

Result<std::vector<uint8_t>> HexDecode(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("HexDecode: odd-length input");
  }
  std::vector<uint8_t> out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexNibble(hex[i]);
    const int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("HexDecode: non-hex character at offset " +
                                     std::to_string(i));
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace privmark
