// Compact bit vector used to represent watermark bit strings.

#ifndef PRIVMARK_COMMON_BITVEC_H_
#define PRIVMARK_COMMON_BITVEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace privmark {

/// \brief Fixed-or-growable sequence of bits with value semantics.
///
/// Used for the watermark `wm`, its replicated form `wmd`, and recovered
/// marks. Bit i of the mark is Get(i); the textual form is e.g. "01011".
class BitVector {
 public:
  BitVector() = default;
  /// \brief `size` bits, all initialized to `value`.
  explicit BitVector(size_t size, bool value = false);

  /// \brief Parses a string of '0'/'1' characters.
  static Result<BitVector> FromString(const std::string& bits);

  /// \brief Derives `size` bits from a byte digest (e.g. SHA-1 output),
  /// taking bits MSB-first. Requires size <= 8 * digest.size().
  static Result<BitVector> FromDigest(const std::vector<uint8_t>& digest,
                                      size_t size);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Get(size_t i) const;
  void Set(size_t i, bool value);
  void PushBack(bool value);

  /// \brief Concatenates `copies` copies of this vector (the paper's
  /// Duplicate(wm) used for multiple embedding).
  BitVector Duplicate(size_t copies) const;

  /// \brief Number of positions where the two vectors differ.
  /// Requires equal sizes.
  Result<size_t> HammingDistance(const BitVector& other) const;

  /// \brief Fraction of differing bits in [0,1]; 0 for two empty vectors.
  Result<double> LossFraction(const BitVector& other) const;

  /// \brief '0'/'1' string, MSB of the logical mark first.
  std::string ToString() const;

  bool operator==(const BitVector& other) const;

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

}  // namespace privmark

#endif  // PRIVMARK_COMMON_BITVEC_H_
