#include "common/parallel.h"

#include <algorithm>
#include <stdexcept>

#include "common/failpoint.h"

namespace privmark {

std::vector<ShardRange> ShardRanges(size_t count, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  const size_t shards = std::min(num_shards, count);
  std::vector<ShardRange> ranges;
  ranges.reserve(shards);
  const size_t base = shards == 0 ? 0 : count / shards;
  const size_t extra = shards == 0 ? 0 : count % shards;
  size_t begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t size = base + (s < extra ? 1 : 0);
    ranges.push_back(ShardRange{begin, begin + size});
    begin += size;
  }
  return ranges;
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = num_threads;
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::ThreadPool(ThreadPool* parent, size_t limit) : parent_(parent) {
  limit_.store(std::max<size_t>(1, limit), std::memory_order_relaxed);
}

std::unique_ptr<ThreadPool> ThreadPool::Lease(ThreadPool* parent,
                                              size_t limit) {
  assert(parent != nullptr && "Lease of a null pool");
  assert(!parent->is_lease() && "Lease of a lease");
  return std::unique_ptr<ThreadPool>(new ThreadPool(parent, limit));
}

void ThreadPool::set_limit(size_t limit) {
  assert(parent_ != nullptr && "set_limit on a non-lease pool");
  if (parent_ == nullptr) return;
  limit_.store(std::max<size_t>(1, limit), std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  if (parent_ != nullptr) return;  // a lease owns no workers
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
    if (stop_) return;
    // Copy the front batch under the lock: a worker holding the
    // shared_ptr after the submitter retired the batch sees a live,
    // fully-claimed object — never a dangling pointer. Fully claimed
    // batches are retired here so later batches become the front (the
    // submitter also erases its own batch when it finishes waiting).
    std::shared_ptr<Batch> batch = pending_.front();
    if (batch->next_task.load(std::memory_order_relaxed) >=
        batch->num_tasks) {
      pending_.erase(pending_.begin());
      continue;
    }
    lock.unlock();
    ExecuteTasks(batch.get());
    lock.lock();
  }
}

void ThreadPool::ExecuteTasks(Batch* batch) {
  for (;;) {
    const size_t i = batch->next_task.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->num_tasks) return;
    try {
      if (PRIVMARK_FAILPOINT("threadpool.dispatch")) {
        throw std::runtime_error(
            "failpoint 'threadpool.dispatch' triggered in task dispatch");
      }
      (*batch->task)(i);
    } catch (...) {
      // Slot i is owned by whoever claimed task i; no lock needed.
      batch->errors[i] = std::current_exception();
    }
    if (batch->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->num_tasks) {
      // Notify under the lock so the waiter cannot check the predicate,
      // see an incomplete batch, and then miss this notify.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::Run(size_t num_tasks,
                     const std::function<void(size_t)>& task) {
  if (parent_ != nullptr) {
    // A lease caps how many tasks its callers *cut* (they shard by
    // num_threads()); execution itself happens on the parent's workers.
    parent_->Run(num_tasks, task);
    return;
  }
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1) {
    // Serial: exactly the inline loop, exceptions propagate directly.
    // Safe under concurrent submitters — nothing shared is touched.
    for (size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->task = &task;
  batch->num_tasks = num_tasks;
  batch->errors.resize(num_tasks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(batch);
  }
  work_cv_.notify_all();
  // The submitter helps with its own batch only: concurrent submitters
  // never execute each other's tasks, so a request's latency is bounded
  // by its own work plus worker availability, not by whichever batch
  // happens to sit in front of the queue.
  ExecuteTasks(batch.get());

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return batch->completed.load(std::memory_order_acquire) ==
           batch->num_tasks;
  });
  // Retire the batch if a worker has not already: it is fully claimed by
  // now, so a worker still holding its shared_ptr copy finds no task and
  // never dereferences `task` (which dangles once this function returns).
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i] == batch) {
      pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  lock.unlock();

  // Deterministic propagation: the lowest-numbered failing task wins,
  // matching the error a serial left-to-right loop would have hit first.
  for (std::exception_ptr& error : batch->errors) {
    if (error) std::rethrow_exception(error);
  }
}

std::unique_ptr<ThreadPool> MakeThreadPool(size_t num_threads) {
  if (num_threads == 1) return nullptr;
  return std::make_unique<ThreadPool>(num_threads);
}

Status ParallelFor(ThreadPool* pool, size_t count,
                   const std::function<Status(size_t, size_t, size_t)>& fn) {
  const std::vector<ShardRange> shards =
      ShardRanges(count, pool == nullptr ? 1 : pool->num_threads());
  if (shards.empty()) return Status::OK();
  if (pool == nullptr || shards.size() == 1) {
    for (size_t s = 0; s < shards.size(); ++s) {
      PRIVMARK_RETURN_NOT_OK(fn(s, shards[s].begin, shards[s].end));
    }
    return Status::OK();
  }
  std::vector<Status> statuses(shards.size());
  pool->Run(shards.size(), [&](size_t s) {
    statuses[s] = fn(s, shards[s].begin, shards[s].end);
  });
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

}  // namespace privmark
