#include "common/durable_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace privmark {

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

bool WriteFully(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? "."
                              : slash == 0 ? "/" : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoError("cannot open parent directory", dir);
  const Status status = ::fsync(fd) == 0
                            ? Status::OK()
                            : ErrnoError("cannot fsync parent directory", dir);
  ::close(fd);
  return status;
}

Status WriteFileDurable(const std::string& path,
                        const std::string& contents) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoError("cannot open for writing", path);
  if (!WriteFully(fd, contents.data(), contents.size())) {
    const Status st = ErrnoError("short write to", path);
    ::close(fd);
    return st;
  }
  if (::fsync(fd) != 0) {
    const Status st = ErrnoError("cannot fsync", path);
    ::close(fd);
    return st;
  }
  if (::close(fd) != 0) return ErrnoError("cannot close", path);
  return SyncParentDir(path);
}

}  // namespace privmark
