// Deterministic failpoint registry for fault-injection testing.
//
// A failpoint is a named site in production code where a test (or the
// PRIVMARK_FAILPOINTS environment variable) can inject a failure:
//
//   if (PRIVMARK_FAILPOINT("journal.append")) {
//     return Status::IOError("failpoint 'journal.append' triggered");
//   }
//
// The macro is the only thing call sites use. In builds without
// PRIVMARK_FAILPOINTS_ENABLED it expands to the constant `false`, so
// every failpoint compiles to nothing — zero code, zero branches on the
// hot path. The CMake option PRIVMARK_FAILPOINTS (default ON for Debug,
// OFF for Release) controls the define; the Release bench trees never
// carry it, which is what keeps the bench-gate baselines honest.
//
// Triggers are deterministic by construction so crash tests replay
// exactly:
//   off          never fires (the default for unconfigured names)
//   always       fires on every hit
//   nth:N        fires on the Nth hit (1-based) and every hit after
//   once:N       fires on exactly the Nth hit, then disarms
//   prob:P:SEED  fires with probability P per hit, drawn from a
//                splitmix64 stream seeded with SEED — the same seed
//                always yields the same firing pattern
//   kill:N       on the Nth hit the process exits immediately with
//                kKillExitCode (no destructors, no flushes) — the
//                crash-recovery suites' simulated power cut
//
// Configuration sources, in precedence order: explicit Configure() calls
// (tests), then the PRIVMARK_FAILPOINTS env var, parsed once at first
// use ("name=trigger;name2=trigger2").
//
// Thread safety: all registry operations are mutex-guarded; hits from
// pool workers are serialized, which is fine for a test-only facility
// (the fast path when *no* failpoint is armed is one relaxed atomic
// load).

#ifndef PRIVMARK_COMMON_FAILPOINT_H_
#define PRIVMARK_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace privmark {

/// \brief Process-wide registry of armed failpoints.
class FailpointRegistry {
 public:
  /// Exit code of a kill-mode failpoint — waitpid-visible so a parent
  /// can distinguish the injected crash from ordinary failures.
  static constexpr int kKillExitCode = 87;

  static FailpointRegistry& Instance();

  /// \brief Arms (or re-arms) one failpoint. `trigger` is one of
  /// off | always | nth:N | once:N | prob:P:SEED | kill:N.
  Status Configure(const std::string& name, const std::string& trigger);

  /// \brief Parses a semicolon-separated "name=trigger;..." spec (the
  /// PRIVMARK_FAILPOINTS env var format).
  Status ConfigureFromSpec(const std::string& spec);

  /// \brief Disarms every failpoint and zeroes hit counters.
  void Reset();

  /// \brief Records a hit of `name` and returns true iff the failpoint
  /// fires. kill-mode failpoints do not return when they fire: the
  /// process exits with kKillExitCode on the spot.
  bool Hit(const char* name);

  /// \brief Hits recorded for `name` (armed or not since the last
  /// Configure of that name).
  uint64_t hit_count(const std::string& name) const;

 private:
  enum class Mode { kOff, kAlways, kNth, kOnce, kProb, kKill };
  struct Point {
    Mode mode = Mode::kOff;
    uint64_t n = 0;        // nth / once / kill threshold (1-based)
    double probability = 0.0;
    uint64_t rng_state = 0;  // prob: splitmix64 stream
    uint64_t hits = 0;
  };

  FailpointRegistry();
  bool ShouldFireLocked(Point* point);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Point> points_;  // guarded by mu_
  // Number of points whose mode != kOff; lets Hit() bail without the
  // lock when nothing is armed.
  std::atomic<uint64_t> armed_{0};
};

}  // namespace privmark

#if defined(PRIVMARK_FAILPOINTS_ENABLED)
#define PRIVMARK_FAILPOINT(name) \
  (::privmark::FailpointRegistry::Instance().Hit(name))
#else
#define PRIVMARK_FAILPOINT(name) (false)
#endif

#endif  // PRIVMARK_COMMON_FAILPOINT_H_
