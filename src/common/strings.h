// Small string utilities shared across modules.

#ifndef PRIVMARK_COMMON_STRINGS_H_
#define PRIVMARK_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace privmark {

/// \brief Lower-case hex encoding of a byte buffer.
std::string HexEncode(const std::vector<uint8_t>& bytes);

/// \brief Inverse of HexEncode; rejects odd lengths and non-hex characters.
Result<std::vector<uint8_t>> HexDecode(const std::string& hex);

/// \brief Splits on a delimiter; keeps empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(const std::string& s, char delim);

/// \brief Joins with a delimiter.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim);

/// \brief Strips ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// \brief True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// \brief Formats a double with fixed precision (e.g. FormatDouble(3.14159,2)
/// == "3.14"); used by bench output so tables align.
std::string FormatDouble(double v, int precision);

}  // namespace privmark

#endif  // PRIVMARK_COMMON_STRINGS_H_
