// Little-endian binary encoding primitives shared by every on-disk and
// on-wire codec (the session journal, the daemon wire protocol). All
// integers are encoded little-endian regardless of host order, so a
// journal or a socket stream written on one machine decodes on any
// other.
//
// BinReader is the decode side: a bounds-checked cursor over an
// immutable byte buffer. Every Read* checks the remaining length first
// and fails the reader permanently on underrun — codecs test ok() (or
// the per-call return) once instead of guarding every field, and a
// truncated input can never read past the buffer.

#ifndef PRIVMARK_COMMON_BINENC_H_
#define PRIVMARK_COMMON_BINENC_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace privmark {

inline void AppendLe32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

inline uint32_t ReadLe32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

inline void AppendLe64(std::string* out, uint64_t v) {
  AppendLe32(out, static_cast<uint32_t>(v & 0xffffffffu));
  AppendLe32(out, static_cast<uint32_t>(v >> 32));
}

inline uint64_t ReadLe64(const char* p) {
  return static_cast<uint64_t>(ReadLe32(p)) |
         (static_cast<uint64_t>(ReadLe32(p + 4)) << 32);
}

/// \brief Appends a double as its 64-bit IEEE bit pattern — decode
/// rebuilds the exact value (sign of zero, subnormals, NaN payloads),
/// which decimal text cannot guarantee.
inline void AppendDoubleBits(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendLe64(out, bits);
}

/// \brief Appends a u32 length prefix then the bytes (NUL-safe).
inline void AppendLengthPrefixed(std::string* out, const std::string& s) {
  AppendLe32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// \brief Bounds-checked forward-only cursor over a byte buffer. Any
/// underrun sets a sticky failure; reads after a failure return zeroes
/// / empty strings and leave the cursor untouched.
class BinReader {
 public:
  BinReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit BinReader(const std::string& bytes)
      : BinReader(bytes.data(), bytes.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  /// True iff no failure occurred and every byte was consumed — codecs
  /// reject trailing bytes with this.
  bool Exhausted() const { return ok_ && pos_ == size_; }

  bool ReadU8(uint8_t* v) {
    if (!Require(1)) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (!Require(4)) return false;
    *v = ReadLe32(data_ + pos_);
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (!Require(8)) return false;
    *v = ReadLe64(data_ + pos_);
    pos_ += 8;
    return true;
  }

  bool ReadDoubleBits(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  /// Reads a u32 length prefix then that many raw bytes. `max_bytes`
  /// caps the length *before* any allocation, so a corrupt prefix can
  /// never drive a huge reserve.
  bool ReadLengthPrefixed(std::string* out, size_t max_bytes) {
    uint32_t length = 0;
    if (!ReadU32(&length)) return false;
    if (length > max_bytes || !Require(length)) {
      ok_ = false;
      return false;
    }
    out->assign(data_ + pos_, length);
    pos_ += length;
    return true;
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace privmark

#endif  // PRIVMARK_COMMON_BINENC_H_
