#include "common/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/strings.h"

namespace privmark {

namespace {

// splitmix64: tiny, seedable, and statistically fine for trigger draws.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Result<uint64_t> ParseCount(const std::string& text, const char* what) {
  if (text.empty()) {
    return Status::InvalidArgument(std::string("failpoint: empty ") + what);
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("failpoint: ") + what +
                                     " is not a number: " + text);
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument(std::string("failpoint: ") + what +
                                     " overflows: " + text);
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = [] {
    auto* r = new FailpointRegistry();
    if (const char* spec = std::getenv("PRIVMARK_FAILPOINTS");
        spec != nullptr && spec[0] != '\0') {
      // Env misconfiguration must be loud, not silently ignored: a chaos
      // run with a typo'd spec would otherwise report a clean pass.
      const Status status = r->ConfigureFromSpec(spec);
      if (!status.ok()) {
        std::fprintf(stderr, "PRIVMARK_FAILPOINTS: %s\n",
                     status.ToString().c_str());
        std::abort();
      }
    }
    return r;
  }();
  return *registry;
}

FailpointRegistry::FailpointRegistry() = default;

Status FailpointRegistry::Configure(const std::string& name,
                                    const std::string& trigger) {
  if (name.empty()) {
    return Status::InvalidArgument("failpoint: empty name");
  }
  Point point;
  const std::vector<std::string> parts = Split(trigger, ':');
  const std::string& mode = parts[0];
  if (mode == "off") {
    if (parts.size() != 1) {
      return Status::InvalidArgument("failpoint: 'off' takes no arguments");
    }
    point.mode = Mode::kOff;
  } else if (mode == "always") {
    if (parts.size() != 1) {
      return Status::InvalidArgument("failpoint: 'always' takes no arguments");
    }
    point.mode = Mode::kAlways;
  } else if (mode == "nth" || mode == "once" || mode == "kill") {
    if (parts.size() != 2) {
      return Status::InvalidArgument("failpoint: '" + mode +
                                     "' needs exactly one count: " + trigger);
    }
    PRIVMARK_ASSIGN_OR_RETURN(point.n, ParseCount(parts[1], "hit count"));
    if (point.n == 0) {
      return Status::InvalidArgument("failpoint: hit count is 1-based, got 0");
    }
    point.mode = mode == "nth" ? Mode::kNth
                               : (mode == "once" ? Mode::kOnce : Mode::kKill);
  } else if (mode == "prob") {
    if (parts.size() != 3) {
      return Status::InvalidArgument(
          "failpoint: 'prob' needs probability and seed: " + trigger);
    }
    char* end = nullptr;
    point.probability = std::strtod(parts[1].c_str(), &end);
    if (end == parts[1].c_str() || *end != '\0' || point.probability < 0.0 ||
        point.probability > 1.0) {
      return Status::InvalidArgument("failpoint: probability must be in "
                                     "[0, 1], got '" + parts[1] + "'");
    }
    PRIVMARK_ASSIGN_OR_RETURN(point.rng_state, ParseCount(parts[2], "seed"));
    point.mode = Mode::kProb;
  } else {
    return Status::InvalidArgument("failpoint: unknown trigger '" + trigger +
                                   "' (off|always|nth:N|once:N|prob:P:SEED|"
                                   "kill:N)");
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.insert_or_assign(name, point);
  (void)it;
  (void)inserted;
  uint64_t armed = 0;
  for (const auto& [point_name, p] : points_) {
    if (p.mode != Mode::kOff) ++armed;
  }
  armed_.store(armed, std::memory_order_release);
  return Status::OK();
}

Status FailpointRegistry::ConfigureFromSpec(const std::string& spec) {
  for (const std::string& raw : Split(spec, ';')) {
    const std::string entry = Trim(raw);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          "failpoint spec: missing '=' in entry '" + entry + "'");
    }
    PRIVMARK_RETURN_NOT_OK(
        Configure(entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::OK();
}

void FailpointRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_.store(0, std::memory_order_release);
}

bool FailpointRegistry::ShouldFireLocked(Point* point) {
  ++point->hits;
  switch (point->mode) {
    case Mode::kOff:
      return false;
    case Mode::kAlways:
      return true;
    case Mode::kNth:
    case Mode::kKill:
      return point->hits >= point->n;
    case Mode::kOnce:
      if (point->hits == point->n) {
        point->mode = Mode::kOff;
        return true;
      }
      return false;
    case Mode::kProb: {
      // 53-bit uniform draw in [0, 1).
      const double draw =
          static_cast<double>(SplitMix64(&point->rng_state) >> 11) *
          (1.0 / 9007199254740992.0);
      return draw < point->probability;
    }
  }
  return false;
}

bool FailpointRegistry::Hit(const char* name) {
  if (armed_.load(std::memory_order_acquire) == 0) return false;
  bool kill = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return false;
    if (!ShouldFireLocked(&it->second)) return false;
    kill = it->second.mode == Mode::kKill;
  }
  if (kill) {
    // Simulated power cut: no atexit handlers, no stream flushes, no
    // stack unwinding — exactly what a crashed publisher leaves behind.
    std::_Exit(kKillExitCode);
  }
  return true;
}

uint64_t FailpointRegistry::hit_count(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

}  // namespace privmark
