// Status / Result error model for privmark.
//
// The core library does not throw exceptions on data-dependent failures;
// every fallible operation returns a Status (or a Result<T> carrying either a
// value or a Status), in the style of Apache Arrow / RocksDB.

#ifndef PRIVMARK_COMMON_STATUS_H_
#define PRIVMARK_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace privmark {

/// \brief Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument is malformed or out of contract.
  kInvalidArgument,
  /// A lookup (column name, node label, value) found nothing.
  kKeyError,
  /// A numeric index or value is outside its valid range.
  kOutOfRange,
  /// The requested combination of options is not implemented.
  kNotImplemented,
  /// An entity that must be unique already exists.
  kAlreadyExists,
  /// File or stream I/O failed.
  kIOError,
  /// The data cannot satisfy the k-anonymity spec within the usage metrics.
  kUnbinnable,
  /// An enumeration or buffer exceeded its configured capacity.
  kCapacityExceeded,
  /// A cryptographic or ownership verification failed.
  kVerificationFailed,
  /// An operation's deadline expired before it completed.
  kDeadlineExceeded,
  /// The system is over capacity; retry later (retry_after_ms() carries
  /// a typed hint when the admission layer can estimate one).
  kResourceExhausted,
};

/// \brief Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Success-or-error outcome of an operation.
///
/// Cheap to copy in the OK case (no allocation). Construct error statuses via
/// the static factories, e.g. `Status::InvalidArgument("k must be >= 2")`.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unbinnable(std::string msg) {
    return Status(StatusCode::kUnbinnable, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status VerificationFailed(std::string msg) {
    return Status(StatusCode::kVerificationFailed, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Typed backpressure hint: milliseconds to wait before
  /// retrying the failed operation. -1 = no hint. Shedding paths
  /// (queue depth, admission waiters) attach it to ResourceExhausted
  /// statuses via WithRetryAfterMs; callers must never parse message
  /// text for it.
  int64_t retry_after_ms() const { return retry_after_ms_; }

  /// \brief Returns a copy of this status carrying the hint.
  Status WithRetryAfterMs(int64_t retry_after_ms) const {
    Status status = *this;
    status.retry_after_ms_ = retry_after_ms;
    return status;
  }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_ &&
           retry_after_ms_ == other.retry_after_ms_;
  }

 private:
  StatusCode code_;
  std::string message_;
  int64_t retry_after_ms_ = -1;
};

/// \brief Value-or-Status. Access the value only after checking ok().
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error Status. Must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    assert(!std::get<Status>(payload_).ok() &&
           "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// \brief The error status; Status::OK() if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie called on error Result");
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace privmark

/// Evaluates an expression returning Status; propagates errors to the caller.
#define PRIVMARK_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::privmark::Status st_ = (expr);            \
    if (!st_.ok()) return st_;                  \
  } while (false)

#define PRIVMARK_CONCAT_IMPL(x, y) x##y
#define PRIVMARK_CONCAT(x, y) PRIVMARK_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on success assigns the value
/// to `lhs` (which may be a declaration), on error propagates the Status.
#define PRIVMARK_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  PRIVMARK_ASSIGN_OR_RETURN_IMPL(PRIVMARK_CONCAT(result_, __LINE__), lhs, \
                                 rexpr)

#define PRIVMARK_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                   \
  if (!result_name.ok()) return result_name.status();           \
  lhs = std::move(result_name).ValueOrDie()

#endif  // PRIVMARK_COMMON_STATUS_H_
