#include "common/text_table.h"

#include <algorithm>

#include "common/strings.h"

namespace privmark {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToAligned() const {
  // Compute column widths across header and all rows.
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  std::string out;
  auto emit = [&out, &widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += "  ";
      out += row[i];
      if (i + 1 < row.size()) {
        out.append(widths[i] - row[i].size(), ' ');
      }
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i > 0 ? 2 : 0);
    }
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string TextTable::ToCsv() const {
  std::string out;
  if (!header_.empty()) {
    out += Join(header_, ",");
    out += '\n';
  }
  for (const auto& row : rows_) {
    out += Join(row, ",");
    out += '\n';
  }
  return out;
}

}  // namespace privmark
