#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace privmark {

namespace {

// SplitMix64: seed expander recommended by the xoshiro authors.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  // 53 high bits -> [0, 1) double.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Random::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Random::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[Uniform(i)]);
  }
  return perm;
}

std::vector<size_t> Random::SampleWithoutReplacement(size_t n, size_t count) {
  assert(count <= n);
  // Floyd's algorithm would be ideal for tiny samples; a partial shuffle is
  // simple and n here is at most a few hundred thousand.
  std::vector<size_t> perm = Permutation(n);
  perm.resize(count);
  std::sort(perm.begin(), perm.end());
  return perm;
}

std::string Random::DigitString(size_t length) {
  std::string out(length, '0');
  for (auto& c : out) c = static_cast<char>('0' + Uniform(10));
  return out;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n >= 1);
  cdf_.resize(n);
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

size_t ZipfSampler::Sample(Random* rng) const {
  const double x = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace privmark
