#include "common/bitvec.h"

#include <cassert>

namespace privmark {

BitVector::BitVector(size_t size, bool value) : size_(size) {
  words_.assign((size + 63) / 64, value ? ~uint64_t{0} : 0);
  if (value && size % 64 != 0 && !words_.empty()) {
    // Keep unused high bits zero so operator== can compare words directly.
    words_.back() &= (uint64_t{1} << (size % 64)) - 1;
  }
}

Result<BitVector> BitVector::FromString(const std::string& bits) {
  BitVector out(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      out.Set(i, true);
    } else if (bits[i] != '0') {
      return Status::InvalidArgument("BitVector::FromString: character '" +
                                     std::string(1, bits[i]) +
                                     "' is not '0' or '1'");
    }
  }
  return out;
}

Result<BitVector> BitVector::FromDigest(const std::vector<uint8_t>& digest,
                                        size_t size) {
  if (size > digest.size() * 8) {
    return Status::InvalidArgument(
        "BitVector::FromDigest: requested " + std::to_string(size) +
        " bits from a " + std::to_string(digest.size()) + "-byte digest");
  }
  BitVector out(size);
  for (size_t i = 0; i < size; ++i) {
    const uint8_t byte = digest[i / 8];
    const bool bit = (byte >> (7 - i % 8)) & 1;
    out.Set(i, bit);
  }
  return out;
}

bool BitVector::Get(size_t i) const {
  assert(i < size_);
  return (words_[i / 64] >> (i % 64)) & 1;
}

void BitVector::Set(size_t i, bool value) {
  assert(i < size_);
  const uint64_t mask = uint64_t{1} << (i % 64);
  if (value) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

void BitVector::PushBack(bool value) {
  if (size_ % 64 == 0) words_.push_back(0);
  ++size_;
  Set(size_ - 1, value);
}

BitVector BitVector::Duplicate(size_t copies) const {
  BitVector out(size_ * copies);
  for (size_t c = 0; c < copies; ++c) {
    for (size_t i = 0; i < size_; ++i) {
      out.Set(c * size_ + i, Get(i));
    }
  }
  return out;
}

Result<size_t> BitVector::HammingDistance(const BitVector& other) const {
  if (size_ != other.size_) {
    return Status::InvalidArgument(
        "HammingDistance: size mismatch (" + std::to_string(size_) + " vs " +
        std::to_string(other.size_) + ")");
  }
  size_t dist = 0;
  for (size_t w = 0; w < words_.size(); ++w) {
    dist += static_cast<size_t>(__builtin_popcountll(words_[w] ^
                                                     other.words_[w]));
  }
  return dist;
}

Result<double> BitVector::LossFraction(const BitVector& other) const {
  PRIVMARK_ASSIGN_OR_RETURN(size_t dist, HammingDistance(other));
  if (size_ == 0) return 0.0;
  return static_cast<double>(dist) / static_cast<double>(size_);
}

std::string BitVector::ToString() const {
  std::string out(size_, '0');
  for (size_t i = 0; i < size_; ++i) {
    if (Get(i)) out[i] = '1';
  }
  return out;
}

bool BitVector::operator==(const BitVector& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

}  // namespace privmark
