#include "common/status.h"

namespace privmark {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kKeyError:
      return "KeyError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnbinnable:
      return "Unbinnable";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kVerificationFailed:
      return "VerificationFailed";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace privmark
