// Crash-durable file writes, factored out of the session journal so
// every artifact that must survive a crash (journals, per-epoch
// manifests) shares one fsync discipline:
//
//   - the file's *contents* become durable with fsync(fd);
//   - the file's *name* becomes durable only when its parent directory
//     is fsynced too — a freshly created file can vanish wholesale after
//     a crash even though its contents were synced.

#ifndef PRIVMARK_COMMON_DURABLE_FILE_H_
#define PRIVMARK_COMMON_DURABLE_FILE_H_

#include <string>

#include "common/status.h"

namespace privmark {

/// \brief IOError carrying strerror(errno) — the shared error shape of
/// the raw-fd write paths.
Status ErrnoError(const std::string& what, const std::string& path);

/// \brief write(2) until done, retrying EINTR; false on error (errno
/// holds the cause).
bool WriteFully(int fd, const char* data, size_t size);

/// \brief Fsyncs the directory containing `path`, making `path`'s
/// directory entry durable.
Status SyncParentDir(const std::string& path);

/// \brief Writes `contents` to `path` (creating or truncating), then
/// fsyncs the file and its parent directory: after OK, both the bytes
/// and the name survive a crash.
Status WriteFileDurable(const std::string& path, const std::string& contents);

}  // namespace privmark

#endif  // PRIVMARK_COMMON_DURABLE_FILE_H_
