// Deterministic pseudo-random number generation for data synthesis, attacks
// and property tests.
//
// privmark never uses std::random_device or global RNG state: every consumer
// receives an explicitly seeded Random so that benches and tests are
// reproducible bit-for-bit across runs and platforms.

#ifndef PRIVMARK_COMMON_RANDOM_H_
#define PRIVMARK_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace privmark {

/// \brief xoshiro256** 1.0 pseudo-random generator (Blackman & Vigna).
///
/// Small, fast, and fully deterministic from a 64-bit seed (expanded through
/// SplitMix64). Not cryptographic — crypto lives in src/crypto.
class Random {
 public:
  /// \brief Seeds the generator; equal seeds yield equal streams.
  explicit Random(uint64_t seed);

  /// \brief Next raw 64-bit value.
  uint64_t Next();

  /// \brief Uniform integer in [0, bound). bound must be > 0.
  ///
  /// Uses rejection sampling, so the distribution is exactly uniform.
  uint64_t Uniform(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// \brief Random index weighted by `weights` (need not be normalized).
  ///
  /// Requires a non-empty vector with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// \brief Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// \brief Uniformly chosen subset of size `count` from [0, n), sorted.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

  /// \brief Random digit string of the given length (e.g. synthetic SSNs).
  std::string DigitString(size_t length);

 private:
  uint64_t state_[4];
};

/// \brief Zipf(s) sampler over ranks {0, .., n-1}; rank 0 is most frequent.
///
/// Precomputes the CDF once; sampling is O(log n). The paper's evaluation
/// data is real clinical data with skewed value frequencies; the generator
/// uses Zipf draws to reproduce that skew.
class ZipfSampler {
 public:
  /// \param n number of distinct ranks, must be >= 1
  /// \param s skew exponent, s >= 0 (s = 0 degenerates to uniform)
  ZipfSampler(size_t n, double s);

  /// \brief Draws one rank in [0, n).
  size_t Sample(Random* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace privmark

#endif  // PRIVMARK_COMMON_RANDOM_H_
