// Aligned plain-text table writer used by bench binaries and examples so
// that regenerated paper tables/figures print readably and diff cleanly.

#ifndef PRIVMARK_COMMON_TEXT_TABLE_H_
#define PRIVMARK_COMMON_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace privmark {

/// \brief Collects rows of string cells and renders them column-aligned.
///
/// Also renders as CSV so experiment outputs can be post-processed.
class TextTable {
 public:
  /// \brief Sets the header row (optional).
  void SetHeader(std::vector<std::string> header);

  /// \brief Appends one data row; rows may have differing cell counts.
  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }

  /// \brief Space-padded aligned rendering with a header underline.
  std::string ToAligned() const;

  /// \brief RFC-4180-ish CSV rendering (no quoting needed for our cells).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace privmark

#endif  // PRIVMARK_COMMON_TEXT_TABLE_H_
