// Dictionary-encoded columnar substrate over relational tables.
//
// Every stage of the pipeline — binning, watermark embed/detect, metrics,
// attacks — walks (row, quasi-identifier column) cells. The row store holds
// those cells as dynamically typed Values whose payload is a string label,
// so a naive pass re-materializes each cell as a std::string and resolves
// it through the tree's label index per row, per column, per stage. This
// header factors that resolution out: an EncodedColumn resolves one column
// against its DomainHierarchy *once*, yielding a flat std::vector<NodeId>
// the hot loops consume as plain integers; an EncodedView bundles one
// EncodedColumn per quasi-identifying column of a table. Labels are only
// rematerialized when a stage writes cells back, via the tree's
// NodeId -> label arena.
//
// Integer columns are also what later scaling work keys on: NodeId vectors
// shard, batch and vectorize; string maps do not.
//
// Two encodings exist because the pipeline sees two kinds of tables:
//  - Leaves(): original tables, whose cells are raw domain values (ints,
//    doubles, leaf labels). Unknown values are hard errors — binning must
//    not silently drop data.
//  - Labels(): binned/watermarked tables, whose cells are generalization
//    node labels. Cells may have been altered by an attacker beyond the
//    domain, so unknown labels encode as kInvalidNode and are counted
//    rather than rejected; detection-side code skips them.

#ifndef PRIVMARK_HIERARCHY_ENCODED_VIEW_H_
#define PRIVMARK_HIERARCHY_ENCODED_VIEW_H_

#include <vector>

#include "common/status.h"
#include "hierarchy/domain_hierarchy.h"
#include "relation/table.h"

namespace privmark {

class ThreadPool;

/// \brief One table column resolved to NodeIds of its DomainHierarchy.
class EncodedColumn {
 public:
  EncodedColumn() = default;

  /// \brief Encodes raw (leaf-level) cells of `table`'s column `column`:
  /// each cell maps to its leaf via DomainHierarchy::LeafForValue.
  /// KeyError / OutOfRange on a value outside the domain; InvalidArgument
  /// on a null tree or a column index outside the schema. With a pool,
  /// rows resolve in contiguous shards into disjoint slots of one
  /// pre-sized id vector — byte-identical to the serial pass (including
  /// which error surfaces) for any worker count.
  static Result<EncodedColumn> Leaves(const Table& table, size_t column,
                                      const DomainHierarchy* tree,
                                      ThreadPool* pool = nullptr);

  /// \brief Same, over an already-extracted value vector (for callers that
  /// hold a std::vector<Value> instead of a table).
  static Result<EncodedColumn> Leaves(const std::vector<Value>& values,
                                      const DomainHierarchy* tree);

  /// \brief Encodes generalized cells (node labels): each cell maps to the
  /// tree node carrying its label. Labels outside the domain — attacked
  /// cells — encode as kInvalidNode and are tallied in unknown_cells();
  /// they are not errors, mirroring detection's skip semantics.
  static Result<EncodedColumn> Labels(const Table& table, size_t column,
                                      const DomainHierarchy* tree);

  const DomainHierarchy* tree() const { return tree_; }
  const std::vector<NodeId>& ids() const { return ids_; }
  size_t size() const { return ids_.size(); }
  NodeId id(size_t row) const { return ids_[row]; }

  /// \brief Cells whose label did not resolve (Labels() encoding only).
  size_t unknown_cells() const { return unknown_cells_; }

  /// \brief Copy keeping only rows with keep[r] != 0 (order preserved);
  /// the columnar analogue of Table::RemoveRows for suppression.
  /// InvalidArgument unless the mask covers exactly this column's rows —
  /// a mask built against a different table must not silently truncate.
  Result<EncodedColumn> Filtered(const std::vector<char>& keep) const;

  /// \brief Appends another column's rows (the columnar analogue of
  /// appending a batch of rows to a table — the streaming-ingest buffer
  /// concatenates per-batch encodings instead of re-resolving cells).
  /// InvalidArgument unless both columns resolve against the same tree.
  /// Encoded ids are per-row facts, so the concatenation is identical to
  /// encoding the concatenated rows in one pass.
  Status Append(const EncodedColumn& other);

 private:
  EncodedColumn(const DomainHierarchy* tree, std::vector<NodeId> ids,
                size_t unknown_cells)
      : tree_(tree), ids_(std::move(ids)), unknown_cells_(unknown_cells) {}

  const DomainHierarchy* tree_ = nullptr;
  std::vector<NodeId> ids_;
  size_t unknown_cells_ = 0;
};

/// \brief Per-table bundle: one EncodedColumn per quasi-identifying column,
/// parallel to `qi_columns`. Encodes each column exactly once; every stage
/// that used to re-resolve strings borrows the same view.
class EncodedView {
 public:
  EncodedView() = default;

  /// \brief Leaf-encodes the QI columns of `table` (original tables).
  /// InvalidArgument if `qi_columns` and `trees` sizes differ or a column
  /// index falls outside the schema; value errors propagate per column.
  /// (Per-column label encoding is EncodedColumn::Labels; a whole-view
  /// label form can join it once a stage consumes one.)
  static Result<EncodedView> Leaves(
      const Table& table, const std::vector<size_t>& qi_columns,
      const std::vector<const DomainHierarchy*>& trees,
      ThreadPool* pool = nullptr);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  /// \brief Encoded column `c` (position within qi_columns, not the schema).
  const EncodedColumn& column(size_t c) const { return columns_[c]; }

  /// \brief View keeping only rows with keep[r] != 0 in every column.
  Result<EncodedView> Filtered(const std::vector<char>& keep) const;

  /// \brief Appends another view's rows column by column. The views must
  /// cover the same number of columns with matching trees. An empty view
  /// (default-constructed) adopts `other`'s columns wholesale, so a
  /// streaming buffer can start from EncodedView() and Append every batch.
  Status Append(const EncodedView& other);

 private:
  explicit EncodedView(std::vector<EncodedColumn> columns)
      : columns_(std::move(columns)) {}

  std::vector<EncodedColumn> columns_;
};

}  // namespace privmark

#endif  // PRIVMARK_HIERARCHY_ENCODED_VIEW_H_
