#include "hierarchy/domain_hierarchy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace privmark {

// ---------------------------------------------------------------------------
// LabelHashIndex

uint64_t LabelHashIndex::HashLabel(std::string_view label) {
  // FNV-1a 64. Labels are short (ontology terms, interval strings); a
  // simple byte-wise hash beats std::hash's indirection here and is
  // deterministic across processes, which keeps tree layouts reproducible.
  uint64_t h = 1469598103934665603ull;
  for (const char c : label) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

NodeId LabelHashIndex::Find(std::string_view label,
                            const std::vector<HierarchyNode>& nodes) const {
  if (slots_.empty()) return kInvalidNode;
  const uint64_t hash = HashLabel(label);
  const size_t mask = slots_.size() - 1;
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const Entry& entry = slots_[i];
    if (entry.id == kInvalidNode) return kInvalidNode;
    if (entry.hash == hash && nodes[entry.id].label == label) return entry.id;
  }
}

void LabelHashIndex::Insert(std::string_view label, NodeId id,
                            const std::vector<HierarchyNode>& nodes) {
  if (slots_.empty() || size_ + 1 > slots_.size() - slots_.size() / 4) {
    Grow(nodes);
  }
  const uint64_t hash = HashLabel(label);
  const size_t mask = slots_.size() - 1;
  size_t i = hash & mask;
  while (slots_[i].id != kInvalidNode) i = (i + 1) & mask;
  slots_[i] = Entry{hash, id};
  ++size_;
}

void LabelHashIndex::Grow(const std::vector<HierarchyNode>& nodes) {
  const size_t new_capacity = slots_.empty() ? 16 : slots_.size() * 2;
  std::vector<Entry> old = std::move(slots_);
  slots_.assign(new_capacity, Entry{});
  const size_t mask = new_capacity - 1;
  (void)nodes;  // content compares are unnecessary: stored labels are unique
  for (const Entry& entry : old) {
    if (entry.id == kInvalidNode) continue;
    size_t i = entry.hash & mask;
    while (slots_[i].id != kInvalidNode) i = (i + 1) & mask;
    slots_[i] = entry;
  }
}

// ---------------------------------------------------------------------------
// DomainHierarchy

std::vector<NodeId> DomainHierarchy::Siblings(NodeId id) const {
  const NodeId parent = nodes_[id].parent;
  if (parent == kInvalidNode) return {id};
  return nodes_[parent].children;
}

std::vector<NodeId> DomainHierarchy::LeavesUnder(NodeId id) const {
  const auto [begin, end] = LeafSpan(id);
  return std::vector<NodeId>(leaves_.begin() + begin, leaves_.begin() + end);
}

Result<NodeId> DomainHierarchy::FindByLabel(std::string_view label) const {
  const NodeId id = label_index_.Find(label, nodes_);
  if (id == kInvalidNode) {
    return Status::KeyError("tree '" + attribute_ + "' has no node labeled '" +
                            std::string(label) + "'");
  }
  return id;
}

Result<NodeId> DomainHierarchy::LeafForLabel(std::string_view label) const {
  PRIVMARK_ASSIGN_OR_RETURN(NodeId id, FindByLabel(label));
  if (!nodes_[id].is_leaf()) {
    return Status::InvalidArgument("value '" + std::string(label) +
                                   "' names an interior node of '" +
                                   attribute_ + "', not a leaf");
  }
  return id;
}

Result<NodeId> DomainHierarchy::LeafForValue(const Value& value) const {
  if (numeric_ && value.type() != ValueType::kString) {
    const double v = value.AsDouble();
    // leaf_lower_bounds_[i] is the lower bound of leaves_[i].
    auto it = std::upper_bound(leaf_lower_bounds_.begin(),
                               leaf_lower_bounds_.end(), v);
    if (it == leaf_lower_bounds_.begin()) {
      return Status::OutOfRange("value " + value.ToString() +
                                " below the domain of '" + attribute_ + "'");
    }
    const size_t idx = static_cast<size_t>(it - leaf_lower_bounds_.begin()) - 1;
    const NodeId leaf = leaves_[idx];
    if (v >= nodes_[leaf].hi) {
      return Status::OutOfRange("value " + value.ToString() +
                                " above the domain of '" + attribute_ + "'");
    }
    return leaf;
  }
  // Categorical (or an already-labelled cell in a numeric tree). String
  // cells resolve by reference — no per-call label copy.
  if (value.type() == ValueType::kString) {
    return LeafForLabel(value.AsString());
  }
  return LeafForLabel(value.ToString());
}

bool DomainHierarchy::IsAncestorOrSelf(NodeId ancestor,
                                       NodeId descendant) const {
  NodeId cur = descendant;
  while (cur != kInvalidNode) {
    if (cur == ancestor) return true;
    // Depth check lets us stop early instead of walking to the root.
    if (nodes_[cur].depth <= nodes_[ancestor].depth) return false;
    cur = nodes_[cur].parent;
  }
  return false;
}

int DomainHierarchy::LevelsBetween(NodeId ancestor, NodeId descendant) const {
  assert(IsAncestorOrSelf(ancestor, descendant));
  return nodes_[descendant].depth - nodes_[ancestor].depth;
}

std::string DomainHierarchy::ToString() const {
  std::string out;
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    const NodeId nd = stack.back();
    stack.pop_back();
    out.append(static_cast<size_t>(nodes_[nd].depth) * 2, ' ');
    out += nodes_[nd].label;
    out += '\n';
    const auto& children = nodes_[nd].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

void DomainHierarchy::FinalizeDerived() {
  // Leaves, left-to-right (iterative DFS pushing children in reverse).
  leaves_.clear();
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    const NodeId nd = stack.back();
    stack.pop_back();
    if (nodes_[nd].is_leaf()) {
      leaves_.push_back(nd);
      continue;
    }
    const auto& children = nodes_[nd].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }

  // Leaf spans: a subtree's leaves are consecutive in leaves_, so spans
  // merge bottom-up. Child ids are always larger than their parent's, so a
  // single reverse pass folds each node's span into its parent's.
  const uint32_t invalid_begin = static_cast<uint32_t>(leaves_.size());
  leaf_span_begin_.assign(nodes_.size(), invalid_begin);
  leaf_span_end_.assign(nodes_.size(), 0);
  for (uint32_t i = 0; i < leaves_.size(); ++i) {
    leaf_span_begin_[leaves_[i]] = i;
    leaf_span_end_[leaves_[i]] = i + 1;
  }
  for (size_t i = nodes_.size(); i-- > 1;) {
    const NodeId parent = nodes_[i].parent;
    if (parent == kInvalidNode) continue;
    leaf_span_begin_[parent] =
        std::min(leaf_span_begin_[parent], leaf_span_begin_[i]);
    leaf_span_end_[parent] = std::max(leaf_span_end_[parent], leaf_span_end_[i]);
  }

  // Sibling indices (root stays 0) and the dense-child-range check.
  sibling_index_.assign(nodes_.size(), 0);
  dense_children_ = true;
  for (const HierarchyNode& node : nodes_) {
    const auto& children = node.children;
    for (size_t i = 0; i < children.size(); ++i) {
      sibling_index_[children[i]] = static_cast<uint32_t>(i);
      if (i > 0 && children[i] != children[i - 1] + 1) {
        dense_children_ = false;
      }
    }
  }
}

HierarchyBuilder::HierarchyBuilder(std::string attribute,
                                   std::string root_label) {
  tree_.attribute_ = std::move(attribute);
  HierarchyNode root;
  root.label = std::move(root_label);
  tree_.nodes_.push_back(root);
  tree_.label_index_.Insert(tree_.nodes_[0].label, 0, tree_.nodes_);
}

Result<NodeId> HierarchyBuilder::AddChild(NodeId parent,
                                          const std::string& label) {
  assert(!built_);
  if (parent < 0 || static_cast<size_t>(parent) >= tree_.nodes_.size()) {
    return Status::OutOfRange("AddChild: parent id " + std::to_string(parent) +
                              " out of range");
  }
  if (tree_.label_index_.Find(label, tree_.nodes_) != kInvalidNode) {
    return Status::AlreadyExists("label '" + label +
                                 "' already used in tree '" +
                                 tree_.attribute_ + "'");
  }
  HierarchyNode node;
  node.label = label;
  node.parent = parent;
  const NodeId id = static_cast<NodeId>(tree_.nodes_.size());
  tree_.nodes_.push_back(std::move(node));
  tree_.nodes_[parent].children.push_back(id);
  tree_.label_index_.Insert(label, id, tree_.nodes_);
  return id;
}

Result<NodeId> HierarchyBuilder::AddPath(const std::vector<std::string>& labels) {
  NodeId cur = tree_.root();
  for (const auto& label : labels) {
    const NodeId existing = tree_.label_index_.Find(label, tree_.nodes_);
    if (existing != kInvalidNode) {
      if (tree_.nodes_[existing].parent != cur) {
        return Status::InvalidArgument("AddPath: label '" + label +
                                       "' exists under a different parent");
      }
      cur = existing;
    } else {
      PRIVMARK_ASSIGN_OR_RETURN(cur, AddChild(cur, label));
    }
  }
  return cur;
}

Result<DomainHierarchy> HierarchyBuilder::Build() {
  assert(!built_);
  built_ = true;
  // Depths by BFS from the root (children ids are always larger than their
  // parent's id, so a single forward pass also works).
  for (size_t i = 1; i < tree_.nodes_.size(); ++i) {
    tree_.nodes_[i].depth = tree_.nodes_[tree_.nodes_[i].parent].depth + 1;
  }
  tree_.FinalizeDerived();
  return std::move(tree_);
}

Result<DomainHierarchy> HierarchyBuilder::FromOutline(
    const std::string& attribute, const std::string& outline) {
  std::vector<std::string> lines = Split(outline, '\n');
  // Drop blank lines.
  std::vector<std::string> kept;
  for (auto& line : lines) {
    if (!Trim(line).empty()) kept.push_back(line);
  }
  if (kept.empty()) {
    return Status::InvalidArgument("FromOutline: empty outline");
  }
  auto indent_of = [](const std::string& line) -> Result<int> {
    size_t spaces = 0;
    for (char c : line) {
      if (c == ' ') {
        ++spaces;
      } else if (c == '\t') {
        return Status::InvalidArgument("FromOutline: tabs not allowed");
      } else {
        break;
      }
    }
    if (spaces % 2 != 0) {
      return Status::InvalidArgument("FromOutline: odd indentation");
    }
    return static_cast<int>(spaces / 2);
  };

  PRIVMARK_ASSIGN_OR_RETURN(int root_indent, indent_of(kept[0]));
  if (root_indent != 0) {
    return Status::InvalidArgument("FromOutline: root must not be indented");
  }
  HierarchyBuilder builder(attribute, Trim(kept[0]));
  // Stack of (indent level -> node) along the current path.
  std::vector<NodeId> path = {0};
  for (size_t i = 1; i < kept.size(); ++i) {
    PRIVMARK_ASSIGN_OR_RETURN(int indent, indent_of(kept[i]));
    if (indent < 1 || static_cast<size_t>(indent) > path.size()) {
      return Status::InvalidArgument(
          "FromOutline: bad indentation at line " + std::to_string(i + 1));
    }
    path.resize(static_cast<size_t>(indent));
    PRIVMARK_ASSIGN_OR_RETURN(NodeId id,
                              builder.AddChild(path.back(), Trim(kept[i])));
    path.push_back(id);
  }
  return builder.Build();
}

std::string IntervalLabel(double lo, double hi) {
  auto fmt = [](double v) {
    if (v == std::floor(v) && std::abs(v) < 1e15) {
      return std::to_string(static_cast<long long>(v));
    }
    std::string s = FormatDouble(v, 6);
    // Strip trailing zeros and a trailing dot.
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
  };
  std::string out = "[";
  out += fmt(lo);
  out += ',';
  out += fmt(hi);
  out += ')';
  return out;
}

Result<DomainHierarchy> BuildNumericHierarchy(
    const std::string& attribute, const std::vector<double>& boundaries) {
  if (boundaries.size() < 2) {
    return Status::InvalidArgument(
        "BuildNumericHierarchy: need at least 2 boundaries");
  }
  for (size_t i = 1; i < boundaries.size(); ++i) {
    if (!(boundaries[i - 1] < boundaries[i])) {
      return Status::InvalidArgument(
          "BuildNumericHierarchy: boundaries must be strictly increasing");
    }
  }

  // We build bottom-up conceptually but materialize top-down so that node
  // ids still satisfy parent-id < child-id. First compute the interval of
  // every node of the final tree level by level.
  struct ProtoNode {
    double lo, hi;
    int left = -1, right = -1;  // indices into protos (children), -1 = none
  };
  std::vector<ProtoNode> protos;
  std::vector<int> level;  // current level, as proto indices
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    protos.push_back(ProtoNode{boundaries[i], boundaries[i + 1], -1, -1});
    level.push_back(static_cast<int>(protos.size()) - 1);
  }
  while (level.size() > 1) {
    std::vector<int> next;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      const ProtoNode& a = protos[level[i]];
      const ProtoNode& b = protos[level[i + 1]];
      protos.push_back(ProtoNode{a.lo, b.hi, level[i], level[i + 1]});
      next.push_back(static_cast<int>(protos.size()) - 1);
    }
    if (level.size() % 2 == 1) {
      // Odd node carried upward unchanged.
      next.push_back(level.back());
    }
    level = std::move(next);
  }
  const int proto_root = level[0];

  // Materialize with a builder, descending from the proto root.
  HierarchyBuilder builder(
      attribute, IntervalLabel(protos[proto_root].lo, protos[proto_root].hi));
  // DFS pairing proto index with materialized node id.
  std::vector<std::pair<int, NodeId>> stack = {{proto_root, 0}};
  while (!stack.empty()) {
    const auto [pidx, nid] = stack.back();
    stack.pop_back();
    const ProtoNode& proto = protos[pidx];
    for (int child : {proto.left, proto.right}) {
      if (child < 0) continue;
      PRIVMARK_ASSIGN_OR_RETURN(
          NodeId cid,
          builder.AddChild(nid, IntervalLabel(protos[child].lo,
                                              protos[child].hi)));
      stack.push_back({child, cid});
    }
  }
  PRIVMARK_ASSIGN_OR_RETURN(DomainHierarchy tree, builder.Build());

  // Fill numeric metadata: intervals per node from the labels.
  tree.numeric_ = true;
  for (size_t i = 0; i < tree.nodes_.size(); ++i) {
    const std::string& label = tree.nodes_[i].label;
    // label is "[lo,hi)"
    const size_t comma = label.find(',');
    tree.nodes_[i].lo = std::stod(label.substr(1, comma - 1));
    tree.nodes_[i].hi =
        std::stod(label.substr(comma + 1, label.size() - comma - 2));
  }
  // Re-sort children by interval lower bound for deterministic order, then
  // recompute the order-derived state (leaves, spans, sibling indices).
  for (auto& node : tree.nodes_) {
    std::sort(node.children.begin(), node.children.end(),
              [&tree](NodeId a, NodeId b) {
                return tree.nodes_[a].lo < tree.nodes_[b].lo;
              });
  }
  tree.FinalizeDerived();
  tree.leaf_lower_bounds_.clear();
  for (NodeId leaf : tree.leaves_) {
    tree.leaf_lower_bounds_.push_back(tree.nodes_[leaf].lo);
  }
  return tree;
}

}  // namespace privmark
