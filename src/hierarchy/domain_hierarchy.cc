#include "hierarchy/domain_hierarchy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace privmark {

std::vector<NodeId> DomainHierarchy::Siblings(NodeId id) const {
  const NodeId parent = nodes_[id].parent;
  if (parent == kInvalidNode) return {id};
  return nodes_[parent].children;
}

size_t DomainHierarchy::SiblingIndex(NodeId id) const {
  const std::vector<NodeId> sibs = Siblings(id);
  for (size_t i = 0; i < sibs.size(); ++i) {
    if (sibs[i] == id) return i;
  }
  assert(false && "node not found among its siblings");
  return 0;
}

std::vector<NodeId> DomainHierarchy::LeavesUnder(NodeId id) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack = {id};
  while (!stack.empty()) {
    const NodeId nd = stack.back();
    stack.pop_back();
    if (nodes_[nd].is_leaf()) {
      out.push_back(nd);
      continue;
    }
    // Push children in reverse so leaves come out left-to-right.
    const auto& children = nodes_[nd].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

Result<NodeId> DomainHierarchy::FindByLabel(const std::string& label) const {
  auto it = label_index_.find(label);
  if (it == label_index_.end()) {
    return Status::KeyError("tree '" + attribute_ + "' has no node labeled '" +
                            label + "'");
  }
  return it->second;
}

Result<NodeId> DomainHierarchy::LeafForValue(const Value& value) const {
  if (numeric_ && value.type() != ValueType::kString) {
    const double v = value.AsDouble();
    // leaf_lower_bounds_[i] is the lower bound of leaves_[i].
    auto it = std::upper_bound(leaf_lower_bounds_.begin(),
                               leaf_lower_bounds_.end(), v);
    if (it == leaf_lower_bounds_.begin()) {
      return Status::OutOfRange("value " + value.ToString() +
                                " below the domain of '" + attribute_ + "'");
    }
    const size_t idx = static_cast<size_t>(it - leaf_lower_bounds_.begin()) - 1;
    const NodeId leaf = leaves_[idx];
    if (v >= nodes_[leaf].hi) {
      return Status::OutOfRange("value " + value.ToString() +
                                " above the domain of '" + attribute_ + "'");
    }
    return leaf;
  }
  // Categorical (or an already-labelled cell in a numeric tree).
  PRIVMARK_ASSIGN_OR_RETURN(NodeId id, FindByLabel(value.ToString()));
  if (!nodes_[id].is_leaf()) {
    return Status::InvalidArgument("value '" + value.ToString() +
                                   "' names an interior node of '" +
                                   attribute_ + "', not a leaf");
  }
  return id;
}

bool DomainHierarchy::IsAncestorOrSelf(NodeId ancestor,
                                       NodeId descendant) const {
  NodeId cur = descendant;
  while (cur != kInvalidNode) {
    if (cur == ancestor) return true;
    // Depth check lets us stop early instead of walking to the root.
    if (nodes_[cur].depth <= nodes_[ancestor].depth) return false;
    cur = nodes_[cur].parent;
  }
  return false;
}

int DomainHierarchy::LevelsBetween(NodeId ancestor, NodeId descendant) const {
  assert(IsAncestorOrSelf(ancestor, descendant));
  return nodes_[descendant].depth - nodes_[ancestor].depth;
}

std::string DomainHierarchy::ToString() const {
  std::string out;
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    const NodeId nd = stack.back();
    stack.pop_back();
    out.append(static_cast<size_t>(nodes_[nd].depth) * 2, ' ');
    out += nodes_[nd].label;
    out += '\n';
    const auto& children = nodes_[nd].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

HierarchyBuilder::HierarchyBuilder(std::string attribute,
                                   std::string root_label) {
  tree_.attribute_ = std::move(attribute);
  HierarchyNode root;
  root.label = std::move(root_label);
  tree_.nodes_.push_back(root);
  tree_.label_index_[tree_.nodes_[0].label] = 0;
}

Result<NodeId> HierarchyBuilder::AddChild(NodeId parent,
                                          const std::string& label) {
  assert(!built_);
  if (parent < 0 || static_cast<size_t>(parent) >= tree_.nodes_.size()) {
    return Status::OutOfRange("AddChild: parent id " + std::to_string(parent) +
                              " out of range");
  }
  if (tree_.label_index_.count(label) > 0) {
    return Status::AlreadyExists("label '" + label +
                                 "' already used in tree '" +
                                 tree_.attribute_ + "'");
  }
  HierarchyNode node;
  node.label = label;
  node.parent = parent;
  const NodeId id = static_cast<NodeId>(tree_.nodes_.size());
  tree_.nodes_.push_back(std::move(node));
  tree_.nodes_[parent].children.push_back(id);
  tree_.label_index_[label] = id;
  return id;
}

Result<NodeId> HierarchyBuilder::AddPath(const std::vector<std::string>& labels) {
  NodeId cur = tree_.root();
  for (const auto& label : labels) {
    auto it = tree_.label_index_.find(label);
    if (it != tree_.label_index_.end()) {
      if (tree_.nodes_[it->second].parent != cur) {
        return Status::InvalidArgument("AddPath: label '" + label +
                                       "' exists under a different parent");
      }
      cur = it->second;
    } else {
      PRIVMARK_ASSIGN_OR_RETURN(cur, AddChild(cur, label));
    }
  }
  return cur;
}

Result<DomainHierarchy> HierarchyBuilder::Build() {
  assert(!built_);
  built_ = true;
  // Depths by BFS from the root (children ids are always larger than their
  // parent's id, so a single forward pass also works).
  for (size_t i = 1; i < tree_.nodes_.size(); ++i) {
    tree_.nodes_[i].depth = tree_.nodes_[tree_.nodes_[i].parent].depth + 1;
  }
  // Leaves, left-to-right.
  tree_.leaves_ = tree_.LeavesUnder(tree_.root());
  // Leaf counts via reverse pass (children have larger ids than parents).
  tree_.leaf_counts_.assign(tree_.nodes_.size(), 0);
  for (size_t i = tree_.nodes_.size(); i-- > 0;) {
    if (tree_.nodes_[i].is_leaf()) {
      tree_.leaf_counts_[i] = 1;
    }
    const NodeId parent = tree_.nodes_[i].parent;
    if (parent != kInvalidNode) {
      tree_.leaf_counts_[parent] += tree_.leaf_counts_[i];
    }
  }
  return std::move(tree_);
}

Result<DomainHierarchy> HierarchyBuilder::FromOutline(
    const std::string& attribute, const std::string& outline) {
  std::vector<std::string> lines = Split(outline, '\n');
  // Drop blank lines.
  std::vector<std::string> kept;
  for (auto& line : lines) {
    if (!Trim(line).empty()) kept.push_back(line);
  }
  if (kept.empty()) {
    return Status::InvalidArgument("FromOutline: empty outline");
  }
  auto indent_of = [](const std::string& line) -> Result<int> {
    size_t spaces = 0;
    for (char c : line) {
      if (c == ' ') {
        ++spaces;
      } else if (c == '\t') {
        return Status::InvalidArgument("FromOutline: tabs not allowed");
      } else {
        break;
      }
    }
    if (spaces % 2 != 0) {
      return Status::InvalidArgument("FromOutline: odd indentation");
    }
    return static_cast<int>(spaces / 2);
  };

  PRIVMARK_ASSIGN_OR_RETURN(int root_indent, indent_of(kept[0]));
  if (root_indent != 0) {
    return Status::InvalidArgument("FromOutline: root must not be indented");
  }
  HierarchyBuilder builder(attribute, Trim(kept[0]));
  // Stack of (indent level -> node) along the current path.
  std::vector<NodeId> path = {0};
  for (size_t i = 1; i < kept.size(); ++i) {
    PRIVMARK_ASSIGN_OR_RETURN(int indent, indent_of(kept[i]));
    if (indent < 1 || static_cast<size_t>(indent) > path.size()) {
      return Status::InvalidArgument(
          "FromOutline: bad indentation at line " + std::to_string(i + 1));
    }
    path.resize(static_cast<size_t>(indent));
    PRIVMARK_ASSIGN_OR_RETURN(NodeId id,
                              builder.AddChild(path.back(), Trim(kept[i])));
    path.push_back(id);
  }
  return builder.Build();
}

std::string IntervalLabel(double lo, double hi) {
  auto fmt = [](double v) {
    if (v == std::floor(v) && std::abs(v) < 1e15) {
      return std::to_string(static_cast<long long>(v));
    }
    std::string s = FormatDouble(v, 6);
    // Strip trailing zeros and a trailing dot.
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
  };
  std::string out = "[";
  out += fmt(lo);
  out += ',';
  out += fmt(hi);
  out += ')';
  return out;
}

Result<DomainHierarchy> BuildNumericHierarchy(
    const std::string& attribute, const std::vector<double>& boundaries) {
  if (boundaries.size() < 2) {
    return Status::InvalidArgument(
        "BuildNumericHierarchy: need at least 2 boundaries");
  }
  for (size_t i = 1; i < boundaries.size(); ++i) {
    if (!(boundaries[i - 1] < boundaries[i])) {
      return Status::InvalidArgument(
          "BuildNumericHierarchy: boundaries must be strictly increasing");
    }
  }

  // We build bottom-up conceptually but materialize top-down so that node
  // ids still satisfy parent-id < child-id. First compute the interval of
  // every node of the final tree level by level.
  struct ProtoNode {
    double lo, hi;
    int left = -1, right = -1;  // indices into protos (children), -1 = none
  };
  std::vector<ProtoNode> protos;
  std::vector<int> level;  // current level, as proto indices
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    protos.push_back(ProtoNode{boundaries[i], boundaries[i + 1], -1, -1});
    level.push_back(static_cast<int>(protos.size()) - 1);
  }
  while (level.size() > 1) {
    std::vector<int> next;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      const ProtoNode& a = protos[level[i]];
      const ProtoNode& b = protos[level[i + 1]];
      protos.push_back(ProtoNode{a.lo, b.hi, level[i], level[i + 1]});
      next.push_back(static_cast<int>(protos.size()) - 1);
    }
    if (level.size() % 2 == 1) {
      // Odd node carried upward unchanged.
      next.push_back(level.back());
    }
    level = std::move(next);
  }
  const int proto_root = level[0];

  // Materialize with a builder, descending from the proto root.
  HierarchyBuilder builder(
      attribute, IntervalLabel(protos[proto_root].lo, protos[proto_root].hi));
  // DFS pairing proto index with materialized node id.
  std::vector<std::pair<int, NodeId>> stack = {{proto_root, 0}};
  while (!stack.empty()) {
    const auto [pidx, nid] = stack.back();
    stack.pop_back();
    const ProtoNode& proto = protos[pidx];
    for (int child : {proto.left, proto.right}) {
      if (child < 0) continue;
      PRIVMARK_ASSIGN_OR_RETURN(
          NodeId cid,
          builder.AddChild(nid, IntervalLabel(protos[child].lo,
                                              protos[child].hi)));
      stack.push_back({child, cid});
    }
  }
  PRIVMARK_ASSIGN_OR_RETURN(DomainHierarchy tree, builder.Build());

  // Fill numeric metadata: intervals per node, sorted leaf bounds.
  tree.numeric_ = true;
  for (size_t i = 0; i < tree.nodes_.size(); ++i) {
    // Parse the label back; cheaper to recompute from children, so walk
    // leaves first (reverse pass like leaf counts).
    (void)i;
  }
  // Assign intervals: leaves in left-to-right order match boundary order
  // only if children were pushed so that the left child is visited first.
  // The DFS above pushes {left, right} then pops right first, so child
  // insertion order is left-then... verify via labels instead: parse labels.
  for (size_t i = 0; i < tree.nodes_.size(); ++i) {
    const std::string& label = tree.nodes_[i].label;
    // label is "[lo,hi)"
    const size_t comma = label.find(',');
    tree.nodes_[i].lo = std::stod(label.substr(1, comma - 1));
    tree.nodes_[i].hi =
        std::stod(label.substr(comma + 1, label.size() - comma - 2));
  }
  // Re-sort children by interval lower bound for deterministic order.
  for (auto& node : tree.nodes_) {
    std::sort(node.children.begin(), node.children.end(),
              [&tree](NodeId a, NodeId b) {
                return tree.nodes_[a].lo < tree.nodes_[b].lo;
              });
  }
  tree.leaves_ = tree.LeavesUnder(tree.root());
  tree.leaf_lower_bounds_.clear();
  for (NodeId leaf : tree.leaves_) {
    tree.leaf_lower_bounds_.push_back(tree.nodes_[leaf].lo);
  }
  return tree;
}

}  // namespace privmark
