// Generalizations over a domain hierarchy tree.
//
// The paper (Sec. 4) uses the *broader* notion of generalization from
// Iyengar'02: a valid generalization is a set of nodes such that the path
// from every leaf to the root encounters exactly one of them — one
// occurrence guarantees generalizability, only-one guarantees determinism.
// Nodes need not share a tree level, and a leaf may itself be a
// generalization node.

#ifndef PRIVMARK_HIERARCHY_GENERALIZATION_H_
#define PRIVMARK_HIERARCHY_GENERALIZATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "hierarchy/domain_hierarchy.h"
#include "relation/value.h"

namespace privmark {

/// \brief A validated generalization: an antichain of nodes covering every
/// leaf of its tree exactly once.
///
/// Holds a non-owning pointer to its DomainHierarchy; the tree must outlive
/// the set (trees are immutable and owned by the pipeline/config).
class GeneralizationSet {
 public:
  GeneralizationSet() = default;

  /// \brief Validates and builds. InvalidArgument if `nodes` is not a valid
  /// generalization of `tree`.
  static Result<GeneralizationSet> Create(const DomainHierarchy* tree,
                                          std::vector<NodeId> nodes);

  /// \brief Checks the cover property without building.
  static Status ValidateCover(const DomainHierarchy& tree,
                              const std::vector<NodeId>& nodes);

  /// \brief The trivial generalization: every leaf is its own node.
  static GeneralizationSet AllLeaves(const DomainHierarchy* tree);

  /// \brief The fully generalized set: just the root.
  static GeneralizationSet RootOnly(const DomainHierarchy* tree);

  const DomainHierarchy* tree() const { return tree_; }

  /// \brief Member nodes in ascending NodeId order.
  const std::vector<NodeId>& nodes() const { return nodes_; }
  size_t size() const { return nodes_.size(); }

  bool Contains(NodeId id) const;

  /// \brief The member node covering this leaf (O(1), precomputed).
  Result<NodeId> NodeForLeaf(NodeId leaf) const;

  /// \brief The member node covering an *original* cell value (maps the
  /// value to its leaf first). This is the paper's Val2Nd(v, nds[]) for
  /// raw values.
  Result<NodeId> NodeForValue(const Value& value) const;

  /// \brief The member node whose label equals an already-generalized cell
  /// (a binned table stores node labels). KeyError if the label is not a
  /// member's label. Heterogeneous lookup: no temporary string.
  Result<NodeId> NodeForLabel(std::string_view label) const;

  /// \brief Generalizes a raw value to its member node's label.
  Result<Value> Generalize(const Value& value) const;

  /// \brief True iff every node of *this is a descendant-or-self of some
  /// node of `other` (i.e. *this is at least as specific). Both sets must
  /// share a tree.
  bool IsRefinementOf(const GeneralizationSet& other) const;

  /// \brief Specificity loss (N - Ng) / N from Sec. 4.2.2, where N is the
  /// tree's leaf count and Ng the generalization's node count.
  double SpecificityLoss() const;

  bool operator==(const GeneralizationSet& other) const {
    return tree_ == other.tree_ && nodes_ == other.nodes_;
  }

 private:
  GeneralizationSet(const DomainHierarchy* tree, std::vector<NodeId> nodes);
  void IndexLeaves();

  const DomainHierarchy* tree_ = nullptr;
  std::vector<NodeId> nodes_;
  std::vector<char> is_member_;        // by NodeId
  std::vector<NodeId> leaf_to_node_;   // by NodeId (leaves filled)
};

/// \brief The "cut at depth d" generalization: every node at depth d, plus
/// any leaf shallower than d. Always a valid generalization; a convenient
/// way to pin maximal generalization nodes at a natural ontology level
/// (e.g. ICD-9 chapters, zip regions) the way the paper's experiments hand
/// maximal nodes directly to each column.
GeneralizationSet CutAtDepth(const DomainHierarchy* tree, int depth);

/// \brief Enumerates every valid generalization lying between `lower`
/// (more specific) and `upper` (more general): each output contains, for
/// every leaf, a covering node n with lower_cover(n ancestor-or-self) and
/// n descendant-or-self of its upper cover.
///
/// This is the set of "allowable generalizations" of Sec. 4.2.2 when called
/// with lower = minimal generalization nodes and upper = maximal
/// generalization nodes. Output size can be exponential in tree width;
/// enumeration aborts with CapacityExceeded once `max_results` is passed.
Result<std::vector<GeneralizationSet>> EnumerateBetween(
    const GeneralizationSet& lower, const GeneralizationSet& upper,
    size_t max_results);

}  // namespace privmark

#endif  // PRIVMARK_HIERARCHY_GENERALIZATION_H_
