// Domain hierarchy trees (DHTs).
//
// The paper (Sec. 2, Fig. 1) arranges each quasi-identifying attribute's
// domain in a tree: leaves are the most specific values, the root the most
// general description. Categorical attributes get hand-built ontologies;
// numeric attributes get a binary tree of intervals (Sec. 4, Fig. 3).
//
// Nodes live in an arena (vector indexed by NodeId) and each node's children
// are kept in a deterministic sorted order. Order stability matters: the
// hierarchical watermark encodes bits in the *parity of a node's index among
// its sorted siblings* (Fig. 9), so embedding and detection must see the same
// order in every process.
//
// Hot-path layout: the label index is a flat open-addressing hash table
// with heterogeneous std::string_view lookup (std::unordered_map would need
// C++20 for that; this index also avoids per-lookup temporary strings and
// stores only {hash, NodeId}, comparing through the node arena so it stays
// valid across tree moves and copies). Sibling indices and per-node leaf
// spans are precomputed at build time so SiblingIndex / LeafCountUnder /
// LeavesUnder are O(1) (plus output size) instead of tree walks.

#ifndef PRIVMARK_HIERARCHY_DOMAIN_HIERARCHY_H_
#define PRIVMARK_HIERARCHY_DOMAIN_HIERARCHY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relation/value.h"

namespace privmark {

/// \brief Index of a node within its DomainHierarchy.
using NodeId = int32_t;

/// \brief Sentinel for "no node" (e.g. the root's parent).
constexpr NodeId kInvalidNode = -1;

/// \brief One node of a domain hierarchy tree.
struct HierarchyNode {
  /// Unique label within the tree; doubles as the generalized cell value.
  std::string label;
  NodeId parent = kInvalidNode;
  /// Children in deterministic order (insertion order for categorical
  /// ontologies, interval order for numeric trees).
  std::vector<NodeId> children;
  /// Distance from the root (root = 0).
  int depth = 0;
  /// Numeric trees only: the half-open interval [lo, hi) this node covers.
  /// NaN for categorical nodes.
  double lo = std::numeric_limits<double>::quiet_NaN();
  double hi = std::numeric_limits<double>::quiet_NaN();

  bool is_leaf() const { return children.empty(); }
  bool has_interval() const { return lo == lo; }  // NaN check
};

/// \brief Flat hash index from node label to NodeId.
///
/// Open addressing with linear probing over {hash, id} entries; labels are
/// compared through the caller-supplied node arena, so the index holds no
/// string storage and survives moves/copies of the owning tree. Lookup
/// takes a std::string_view — no temporary std::string on the hot path.
class LabelHashIndex {
 public:
  /// \brief Id of the node labeled `label`, or kInvalidNode.
  NodeId Find(std::string_view label,
              const std::vector<HierarchyNode>& nodes) const;

  /// \brief Inserts a label known to be absent (callers dedupe via Find).
  void Insert(std::string_view label, NodeId id,
              const std::vector<HierarchyNode>& nodes);

  size_t size() const { return size_; }

 private:
  struct Entry {
    uint64_t hash = 0;
    NodeId id = kInvalidNode;  // kInvalidNode marks an empty slot
  };

  static uint64_t HashLabel(std::string_view label);
  void Grow(const std::vector<HierarchyNode>& nodes);

  std::vector<Entry> slots_;
  size_t size_ = 0;
};

/// \brief Immutable domain hierarchy tree over one attribute's domain.
class DomainHierarchy {
 public:
  /// \brief The attribute name this tree describes (e.g. "age").
  const std::string& attribute() const { return attribute_; }

  /// \brief True for trees built over numeric intervals.
  bool is_numeric() const { return numeric_; }

  NodeId root() const { return 0; }
  size_t num_nodes() const { return nodes_.size(); }
  const HierarchyNode& node(NodeId id) const { return nodes_[id]; }

  NodeId Parent(NodeId id) const { return nodes_[id].parent; }
  const std::vector<NodeId>& Children(NodeId id) const {
    return nodes_[id].children;
  }

  /// \brief The node together with its siblings, in the parent's child
  /// order (the paper's Siblings(nd, tr)). For the root: {root}.
  std::vector<NodeId> Siblings(NodeId id) const;

  /// \brief Index of `id` within Siblings(id) (the paper's Index(nd, S)).
  /// O(1): precomputed at build time.
  size_t SiblingIndex(NodeId id) const { return sibling_index_[id]; }

  /// \brief Number of siblings of `id` including itself (O(1)).
  size_t SiblingCount(NodeId id) const {
    const NodeId parent = nodes_[id].parent;
    return parent == kInvalidNode ? 1 : nodes_[parent].children.size();
  }

  bool IsLeaf(NodeId id) const { return nodes_[id].is_leaf(); }
  int Depth(NodeId id) const { return nodes_[id].depth; }

  /// \brief All leaves of the tree, in left-to-right order.
  const std::vector<NodeId>& Leaves() const { return leaves_; }

  /// \brief Leaves of the subtree rooted at `id`, left-to-right.
  std::vector<NodeId> LeavesUnder(NodeId id) const;

  /// \brief The subtree's leaves as a contiguous [begin, end) range of
  /// indices into Leaves() — a subtree's leaves are always consecutive in
  /// left-to-right order, so this is O(1) and allocation-free.
  std::pair<size_t, size_t> LeafSpan(NodeId id) const {
    return {leaf_span_begin_[id], leaf_span_end_[id]};
  }

  /// \brief Leftmost leaf of the subtree rooted at `id`, in O(1).
  NodeId FirstLeafUnder(NodeId id) const {
    return leaves_[leaf_span_begin_[id]];
  }

  /// \brief |LeavesUnder(id)| in O(1) (precomputed).
  size_t LeafCountUnder(NodeId id) const {
    return leaf_span_end_[id] - leaf_span_begin_[id];
  }

  /// \brief True iff every interior node's children occupy a contiguous,
  /// ascending NodeId range. Numeric interval trees satisfy this by
  /// construction; categorical outlines generally do not. Dense child
  /// ranges are what future SoA/batched layouts key on, so the property is
  /// computed once at build time and exposed here.
  bool has_dense_child_ranges() const { return dense_children_; }

  /// \brief Node with the given label (heterogeneous lookup, no temporary).
  Result<NodeId> FindByLabel(std::string_view label) const;

  /// \brief Leaf with the given label: FindByLabel plus a leaf check.
  /// InvalidArgument if the label names an interior node.
  Result<NodeId> LeafForLabel(std::string_view label) const;

  /// \brief Maps an original cell value to its leaf.
  ///
  /// Categorical: leaf whose label equals the value's string. Numeric: the
  /// leaf interval containing the value. KeyError / OutOfRange on no match.
  Result<NodeId> LeafForValue(const Value& value) const;

  /// \brief True iff `ancestor` lies on the path from `descendant` to the
  /// root (inclusive of descendant == ancestor).
  bool IsAncestorOrSelf(NodeId ancestor, NodeId descendant) const;

  /// \brief Number of edges from `descendant` up to `ancestor`; requires
  /// IsAncestorOrSelf(ancestor, descendant).
  int LevelsBetween(NodeId ancestor, NodeId descendant) const;

  /// \brief ASCII rendering (one node per line, indented), for debugging.
  std::string ToString() const;

 private:
  friend class HierarchyBuilder;
  friend Result<DomainHierarchy> BuildNumericHierarchy(
      const std::string& attribute, const std::vector<double>& boundaries);
  DomainHierarchy() = default;

  // Computes leaves_, leaf spans, sibling indices and the dense-children
  // flag from nodes_. Called by Build() and again by BuildNumericHierarchy
  // after it re-sorts children into interval order.
  void FinalizeDerived();

  std::string attribute_;
  bool numeric_ = false;
  std::vector<HierarchyNode> nodes_;
  std::vector<NodeId> leaves_;
  // Per node: [begin, end) into leaves_ covering the node's subtree.
  std::vector<uint32_t> leaf_span_begin_;
  std::vector<uint32_t> leaf_span_end_;
  // Per node: index among its parent's children (0 for the root).
  std::vector<uint32_t> sibling_index_;
  bool dense_children_ = false;
  LabelHashIndex label_index_;
  // Numeric trees: leaves_ sorted by interval; lower bounds for binary search.
  std::vector<double> leaf_lower_bounds_;
};

/// \brief Incremental constructor for categorical DHTs (Fig. 1 style).
class HierarchyBuilder {
 public:
  /// \param attribute column name the tree describes
  /// \param root_label label of the root (most general description)
  HierarchyBuilder(std::string attribute, std::string root_label);

  /// \brief Adds a child under `parent`; labels must be unique in the tree.
  Result<NodeId> AddChild(NodeId parent, const std::string& label);

  /// \brief Convenience: adds a chain of children under the root, e.g.
  /// AddPath({"Paramedic", "Nurse"}) creates/reuses "Paramedic" under the
  /// root and "Nurse" under it, returning the last node.
  Result<NodeId> AddPath(const std::vector<std::string>& labels);

  /// \brief Finalizes: computes depths, leaf lists/counts and label index.
  /// The builder must not be reused afterwards.
  Result<DomainHierarchy> Build();

  /// \brief Parses an indented outline (2 spaces per level) into a tree:
  ///
  ///   Person
  ///     Medical Practitioner
  ///       General Practitioner
  ///       Specialist
  ///     Paramedic
  ///
  /// The first line is the root. Tabs are rejected.
  static Result<DomainHierarchy> FromOutline(const std::string& attribute,
                                             const std::string& outline);

 private:
  DomainHierarchy tree_;
  bool built_ = false;
};

/// \brief Builds the binary interval DHT of Fig. 3 for a numeric attribute.
///
/// \param attribute column name
/// \param boundaries ascending cut points; leaf i covers
///        [boundaries[i], boundaries[i+1]). Requires >= 2 strictly
///        increasing values. Intervals "need not be of equal size" (paper).
///
/// Leaves are combined pairwise, left to right, into parents one level up;
/// an odd node is carried upward unchanged; repeat until a single root
/// covers [first, last). Node labels are "[lo,hi)" with trailing-zero-free
/// formatting.
Result<DomainHierarchy> BuildNumericHierarchy(
    const std::string& attribute, const std::vector<double>& boundaries);

/// \brief Formats a numeric interval label exactly as BuildNumericHierarchy
/// does ("[25,50)"); exposed so tests and generators can predict labels.
std::string IntervalLabel(double lo, double hi);

}  // namespace privmark

#endif  // PRIVMARK_HIERARCHY_DOMAIN_HIERARCHY_H_
