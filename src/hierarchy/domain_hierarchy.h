// Domain hierarchy trees (DHTs).
//
// The paper (Sec. 2, Fig. 1) arranges each quasi-identifying attribute's
// domain in a tree: leaves are the most specific values, the root the most
// general description. Categorical attributes get hand-built ontologies;
// numeric attributes get a binary tree of intervals (Sec. 4, Fig. 3).
//
// Nodes live in an arena (vector indexed by NodeId) and each node's children
// are kept in a deterministic sorted order. Order stability matters: the
// hierarchical watermark encodes bits in the *parity of a node's index among
// its sorted siblings* (Fig. 9), so embedding and detection must see the same
// order in every process.

#ifndef PRIVMARK_HIERARCHY_DOMAIN_HIERARCHY_H_
#define PRIVMARK_HIERARCHY_DOMAIN_HIERARCHY_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/value.h"

namespace privmark {

/// \brief Index of a node within its DomainHierarchy.
using NodeId = int32_t;

/// \brief Sentinel for "no node" (e.g. the root's parent).
constexpr NodeId kInvalidNode = -1;

/// \brief One node of a domain hierarchy tree.
struct HierarchyNode {
  /// Unique label within the tree; doubles as the generalized cell value.
  std::string label;
  NodeId parent = kInvalidNode;
  /// Children in deterministic order (insertion order for categorical
  /// ontologies, interval order for numeric trees).
  std::vector<NodeId> children;
  /// Distance from the root (root = 0).
  int depth = 0;
  /// Numeric trees only: the half-open interval [lo, hi) this node covers.
  /// NaN for categorical nodes.
  double lo = std::numeric_limits<double>::quiet_NaN();
  double hi = std::numeric_limits<double>::quiet_NaN();

  bool is_leaf() const { return children.empty(); }
  bool has_interval() const { return lo == lo; }  // NaN check
};

/// \brief Immutable domain hierarchy tree over one attribute's domain.
class DomainHierarchy {
 public:
  /// \brief The attribute name this tree describes (e.g. "age").
  const std::string& attribute() const { return attribute_; }

  /// \brief True for trees built over numeric intervals.
  bool is_numeric() const { return numeric_; }

  NodeId root() const { return 0; }
  size_t num_nodes() const { return nodes_.size(); }
  const HierarchyNode& node(NodeId id) const { return nodes_[id]; }

  NodeId Parent(NodeId id) const { return nodes_[id].parent; }
  const std::vector<NodeId>& Children(NodeId id) const {
    return nodes_[id].children;
  }

  /// \brief The node together with its siblings, in the parent's child
  /// order (the paper's Siblings(nd, tr)). For the root: {root}.
  std::vector<NodeId> Siblings(NodeId id) const;

  /// \brief Index of `id` within Siblings(id) (the paper's Index(nd, S)).
  size_t SiblingIndex(NodeId id) const;

  bool IsLeaf(NodeId id) const { return nodes_[id].is_leaf(); }
  int Depth(NodeId id) const { return nodes_[id].depth; }

  /// \brief All leaves of the tree, in left-to-right order.
  const std::vector<NodeId>& Leaves() const { return leaves_; }

  /// \brief Leaves of the subtree rooted at `id`, left-to-right.
  std::vector<NodeId> LeavesUnder(NodeId id) const;

  /// \brief |LeavesUnder(id)| in O(1) (precomputed).
  size_t LeafCountUnder(NodeId id) const { return leaf_counts_[id]; }

  /// \brief Node with the given label.
  Result<NodeId> FindByLabel(const std::string& label) const;

  /// \brief Maps an original cell value to its leaf.
  ///
  /// Categorical: leaf whose label equals the value's string. Numeric: the
  /// leaf interval containing the value. KeyError / OutOfRange on no match.
  Result<NodeId> LeafForValue(const Value& value) const;

  /// \brief True iff `ancestor` lies on the path from `descendant` to the
  /// root (inclusive of descendant == ancestor).
  bool IsAncestorOrSelf(NodeId ancestor, NodeId descendant) const;

  /// \brief Number of edges from `descendant` up to `ancestor`; requires
  /// IsAncestorOrSelf(ancestor, descendant).
  int LevelsBetween(NodeId ancestor, NodeId descendant) const;

  /// \brief ASCII rendering (one node per line, indented), for debugging.
  std::string ToString() const;

 private:
  friend class HierarchyBuilder;
  friend Result<DomainHierarchy> BuildNumericHierarchy(
      const std::string& attribute, const std::vector<double>& boundaries);
  DomainHierarchy() = default;

  std::string attribute_;
  bool numeric_ = false;
  std::vector<HierarchyNode> nodes_;
  std::vector<NodeId> leaves_;
  std::vector<size_t> leaf_counts_;
  std::map<std::string, NodeId> label_index_;
  // Numeric trees: leaves_ sorted by interval; lower bounds for binary search.
  std::vector<double> leaf_lower_bounds_;
};

/// \brief Incremental constructor for categorical DHTs (Fig. 1 style).
class HierarchyBuilder {
 public:
  /// \param attribute column name the tree describes
  /// \param root_label label of the root (most general description)
  HierarchyBuilder(std::string attribute, std::string root_label);

  /// \brief Adds a child under `parent`; labels must be unique in the tree.
  Result<NodeId> AddChild(NodeId parent, const std::string& label);

  /// \brief Convenience: adds a chain of children under the root, e.g.
  /// AddPath({"Paramedic", "Nurse"}) creates/reuses "Paramedic" under the
  /// root and "Nurse" under it, returning the last node.
  Result<NodeId> AddPath(const std::vector<std::string>& labels);

  /// \brief Finalizes: computes depths, leaf lists/counts and label index.
  /// The builder must not be reused afterwards.
  Result<DomainHierarchy> Build();

  /// \brief Parses an indented outline (2 spaces per level) into a tree:
  ///
  ///   Person
  ///     Medical Practitioner
  ///       General Practitioner
  ///       Specialist
  ///     Paramedic
  ///
  /// The first line is the root. Tabs are rejected.
  static Result<DomainHierarchy> FromOutline(const std::string& attribute,
                                             const std::string& outline);

 private:
  DomainHierarchy tree_;
  bool built_ = false;
};

/// \brief Builds the binary interval DHT of Fig. 3 for a numeric attribute.
///
/// \param attribute column name
/// \param boundaries ascending cut points; leaf i covers
///        [boundaries[i], boundaries[i+1]). Requires >= 2 strictly
///        increasing values. Intervals "need not be of equal size" (paper).
///
/// Leaves are combined pairwise, left to right, into parents one level up;
/// an odd node is carried upward unchanged; repeat until a single root
/// covers [first, last). Node labels are "[lo,hi)" with trailing-zero-free
/// formatting.
Result<DomainHierarchy> BuildNumericHierarchy(
    const std::string& attribute, const std::vector<double>& boundaries);

/// \brief Formats a numeric interval label exactly as BuildNumericHierarchy
/// does ("[25,50)"); exposed so tests and generators can predict labels.
std::string IntervalLabel(double lo, double hi);

}  // namespace privmark

#endif  // PRIVMARK_HIERARCHY_DOMAIN_HIERARCHY_H_
