#include "hierarchy/encoded_view.h"

#include "common/parallel.h"

namespace privmark {

namespace {

Status CheckColumn(const Table& table, size_t column,
                   const DomainHierarchy* tree) {
  if (tree == nullptr) {
    return Status::InvalidArgument("EncodedColumn: null tree");
  }
  if (column >= table.num_columns()) {
    return Status::InvalidArgument(
        "EncodedColumn: column " + std::to_string(column) +
        " out of range for schema with " +
        std::to_string(table.num_columns()) + " columns");
  }
  return Status::OK();
}

}  // namespace

Result<EncodedColumn> EncodedColumn::Leaves(const Table& table, size_t column,
                                            const DomainHierarchy* tree,
                                            ThreadPool* pool) {
  PRIVMARK_RETURN_NOT_OK(CheckColumn(table, column, tree));
  std::vector<NodeId> ids(table.num_rows());
  PRIVMARK_RETURN_NOT_OK(ParallelFor(
      pool, table.num_rows(), [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t r = begin; r < end; ++r) {
          PRIVMARK_ASSIGN_OR_RETURN(ids[r],
                                    tree->LeafForValue(table.at(r, column)));
        }
        return Status::OK();
      }));
  return EncodedColumn(tree, std::move(ids), 0);
}

Result<EncodedColumn> EncodedColumn::Leaves(const std::vector<Value>& values,
                                            const DomainHierarchy* tree) {
  if (tree == nullptr) {
    return Status::InvalidArgument("EncodedColumn: null tree");
  }
  std::vector<NodeId> ids(values.size());
  for (size_t r = 0; r < values.size(); ++r) {
    PRIVMARK_ASSIGN_OR_RETURN(ids[r], tree->LeafForValue(values[r]));
  }
  return EncodedColumn(tree, std::move(ids), 0);
}

Result<EncodedColumn> EncodedColumn::Labels(const Table& table, size_t column,
                                            const DomainHierarchy* tree) {
  PRIVMARK_RETURN_NOT_OK(CheckColumn(table, column, tree));
  std::vector<NodeId> ids(table.num_rows());
  size_t unknown = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& cell = table.at(r, column);
    NodeId id = kInvalidNode;
    if (cell.type() == ValueType::kString) {
      auto found = tree->FindByLabel(cell.AsString());
      if (found.ok()) id = *found;
    } else {
      auto found = tree->FindByLabel(cell.ToString());
      if (found.ok()) id = *found;
    }
    if (id == kInvalidNode) ++unknown;
    ids[r] = id;
  }
  return EncodedColumn(tree, std::move(ids), unknown);
}

Result<EncodedColumn> EncodedColumn::Filtered(
    const std::vector<char>& keep) const {
  // A mask built against a different table is a caller bug; fail fast in
  // every build type instead of silently truncating the view out of sync
  // with its table.
  if (keep.size() != ids_.size()) {
    return Status::InvalidArgument(
        "Filtered: keep mask covers " + std::to_string(keep.size()) +
        " rows, column has " + std::to_string(ids_.size()));
  }
  EncodedColumn out;
  out.tree_ = tree_;
  out.ids_.reserve(ids_.size());
  size_t unknown = 0;
  for (size_t r = 0; r < ids_.size(); ++r) {
    if (!keep[r]) continue;
    out.ids_.push_back(ids_[r]);
    if (ids_[r] == kInvalidNode) ++unknown;
  }
  out.unknown_cells_ = unknown;
  return out;
}

Status EncodedColumn::Append(const EncodedColumn& other) {
  if (tree_ != other.tree_) {
    return Status::InvalidArgument(
        "Append: columns resolve against different trees");
  }
  ids_.insert(ids_.end(), other.ids_.begin(), other.ids_.end());
  unknown_cells_ += other.unknown_cells_;
  return Status::OK();
}

Result<EncodedView> EncodedView::Filtered(const std::vector<char>& keep) const {
  std::vector<EncodedColumn> columns;
  columns.reserve(columns_.size());
  for (const EncodedColumn& column : columns_) {
    PRIVMARK_ASSIGN_OR_RETURN(EncodedColumn filtered, column.Filtered(keep));
    columns.push_back(std::move(filtered));
  }
  return EncodedView(std::move(columns));
}

Result<EncodedView> EncodedView::Leaves(
    const Table& table, const std::vector<size_t>& qi_columns,
    const std::vector<const DomainHierarchy*>& trees, ThreadPool* pool) {
  if (qi_columns.size() != trees.size()) {
    return Status::InvalidArgument(
        "EncodedView: " + std::to_string(qi_columns.size()) +
        " columns but " + std::to_string(trees.size()) + " trees");
  }
  std::vector<EncodedColumn> columns;
  columns.reserve(qi_columns.size());
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    PRIVMARK_ASSIGN_OR_RETURN(
        EncodedColumn column,
        EncodedColumn::Leaves(table, qi_columns[c], trees[c], pool));
    columns.push_back(std::move(column));
  }
  return EncodedView(std::move(columns));
}

Status EncodedView::Append(const EncodedView& other) {
  if (columns_.empty()) {
    columns_ = other.columns_;
    return Status::OK();
  }
  if (columns_.size() != other.columns_.size()) {
    return Status::InvalidArgument(
        "Append: view covers " + std::to_string(columns_.size()) +
        " columns, batch covers " + std::to_string(other.columns_.size()));
  }
  // Validate every tree before mutating any column so a mismatched batch
  // leaves the view untouched.
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].tree() != other.columns_[c].tree()) {
      return Status::InvalidArgument(
          "Append: column " + std::to_string(c) +
          " resolves against a different tree");
    }
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    PRIVMARK_RETURN_NOT_OK(columns_[c].Append(other.columns_[c]));
  }
  return Status::OK();
}

}  // namespace privmark
