#include "hierarchy/generalization.h"

#include <algorithm>
#include <cassert>

namespace privmark {

GeneralizationSet::GeneralizationSet(const DomainHierarchy* tree,
                                     std::vector<NodeId> nodes)
    : tree_(tree), nodes_(std::move(nodes)) {
  std::sort(nodes_.begin(), nodes_.end());
  IndexLeaves();
}

void GeneralizationSet::IndexLeaves() {
  is_member_.assign(tree_->num_nodes(), 0);
  for (NodeId id : nodes_) is_member_[id] = 1;
  leaf_to_node_.assign(tree_->num_nodes(), kInvalidNode);
  const std::vector<NodeId>& leaves = tree_->Leaves();
  for (NodeId member : nodes_) {
    const auto [begin, end] = tree_->LeafSpan(member);
    for (size_t i = begin; i < end; ++i) {
      leaf_to_node_[leaves[i]] = member;
    }
  }
}

Status GeneralizationSet::ValidateCover(const DomainHierarchy& tree,
                                        const std::vector<NodeId>& nodes) {
  std::vector<char> member(tree.num_nodes(), 0);
  for (NodeId id : nodes) {
    if (id < 0 || static_cast<size_t>(id) >= tree.num_nodes()) {
      return Status::OutOfRange("generalization node id " +
                                std::to_string(id) + " out of range");
    }
    if (member[id]) {
      return Status::InvalidArgument("node '" + tree.node(id).label +
                                     "' listed twice in generalization");
    }
    member[id] = 1;
  }
  // Each leaf->root path must meet exactly one member (paper Sec. 4).
  for (NodeId leaf : tree.Leaves()) {
    int hits = 0;
    for (NodeId cur = leaf; cur != kInvalidNode; cur = tree.Parent(cur)) {
      hits += member[cur];
    }
    if (hits == 0) {
      return Status::InvalidArgument(
          "leaf '" + tree.node(leaf).label +
          "' is not covered by the generalization (tree '" +
          tree.attribute() + "')");
    }
    if (hits > 1) {
      return Status::InvalidArgument(
          "leaf '" + tree.node(leaf).label +
          "' is covered more than once (non-deterministic generalization)");
    }
  }
  return Status::OK();
}

Result<GeneralizationSet> GeneralizationSet::Create(
    const DomainHierarchy* tree, std::vector<NodeId> nodes) {
  if (tree == nullptr) {
    return Status::InvalidArgument("GeneralizationSet: null tree");
  }
  PRIVMARK_RETURN_NOT_OK(ValidateCover(*tree, nodes));
  return GeneralizationSet(tree, std::move(nodes));
}

GeneralizationSet GeneralizationSet::AllLeaves(const DomainHierarchy* tree) {
  return GeneralizationSet(tree, tree->Leaves());
}

GeneralizationSet GeneralizationSet::RootOnly(const DomainHierarchy* tree) {
  return GeneralizationSet(tree, {tree->root()});
}

bool GeneralizationSet::Contains(NodeId id) const {
  return id >= 0 && static_cast<size_t>(id) < is_member_.size() &&
         is_member_[id] != 0;
}

Result<NodeId> GeneralizationSet::NodeForLeaf(NodeId leaf) const {
  if (leaf < 0 || static_cast<size_t>(leaf) >= leaf_to_node_.size() ||
      leaf_to_node_[leaf] == kInvalidNode) {
    return Status::KeyError("no generalization node covers leaf id " +
                            std::to_string(leaf));
  }
  return leaf_to_node_[leaf];
}

Result<NodeId> GeneralizationSet::NodeForValue(const Value& value) const {
  PRIVMARK_ASSIGN_OR_RETURN(NodeId leaf, tree_->LeafForValue(value));
  return NodeForLeaf(leaf);
}

Result<NodeId> GeneralizationSet::NodeForLabel(std::string_view label) const {
  PRIVMARK_ASSIGN_OR_RETURN(NodeId id, tree_->FindByLabel(label));
  if (!Contains(id)) {
    return Status::KeyError("label '" + std::string(label) +
                            "' is not a member of this generalization");
  }
  return id;
}

Result<Value> GeneralizationSet::Generalize(const Value& value) const {
  PRIVMARK_ASSIGN_OR_RETURN(NodeId node, NodeForValue(value));
  return Value::String(tree_->node(node).label);
}

bool GeneralizationSet::IsRefinementOf(const GeneralizationSet& other) const {
  assert(tree_ == other.tree_);
  for (NodeId node : nodes_) {
    // Take any leaf under `node`; its cover in `other` must sit at or above
    // `node`, which implies all of node's leaves share that cover.
    auto cover = other.NodeForLeaf(tree_->FirstLeafUnder(node));
    if (!cover.ok()) return false;
    if (!tree_->IsAncestorOrSelf(*cover, node)) return false;
  }
  return true;
}

double GeneralizationSet::SpecificityLoss() const {
  const double n = static_cast<double>(tree_->Leaves().size());
  const double ng = static_cast<double>(nodes_.size());
  return (n - ng) / n;
}

GeneralizationSet CutAtDepth(const DomainHierarchy* tree, int depth) {
  std::vector<NodeId> members;
  std::vector<NodeId> stack = {tree->root()};
  while (!stack.empty()) {
    const NodeId nd = stack.back();
    stack.pop_back();
    if (tree->Depth(nd) == depth || tree->IsLeaf(nd)) {
      members.push_back(nd);
      continue;
    }
    for (NodeId child : tree->Children(nd)) stack.push_back(child);
  }
  // By construction every leaf->root path crosses exactly one member.
  return GeneralizationSet::Create(tree, std::move(members)).ValueOrDie();
}

namespace {

// All antichains within the subtree rooted at `v`, floored by members of
// `lower` (recursion stops at a lower member: it must be taken as-is).
// Appends complete antichains to `out`; honors the result cap.
Status OptionsUnder(const DomainHierarchy& tree, const GeneralizationSet& lower,
                    NodeId v, size_t max_results,
                    std::vector<std::vector<NodeId>>* out) {
  if (lower.Contains(v)) {
    out->push_back({v});
    return Status::OK();
  }
  // Option 1: keep v itself.
  out->push_back({v});
  // Option 2..: cross product of children's options.
  std::vector<std::vector<NodeId>> partial = {{}};
  for (NodeId child : tree.Children(v)) {
    std::vector<std::vector<NodeId>> child_opts;
    PRIVMARK_RETURN_NOT_OK(
        OptionsUnder(tree, lower, child, max_results, &child_opts));
    std::vector<std::vector<NodeId>> next;
    next.reserve(partial.size() * child_opts.size());
    for (const auto& p : partial) {
      for (const auto& o : child_opts) {
        if (next.size() + out->size() > max_results) {
          return Status::CapacityExceeded(
              "generalization enumeration exceeded " +
              std::to_string(max_results) + " results");
        }
        std::vector<NodeId> merged = p;
        merged.insert(merged.end(), o.begin(), o.end());
        next.push_back(std::move(merged));
      }
    }
    partial = std::move(next);
  }
  for (auto& p : partial) out->push_back(std::move(p));
  if (out->size() > max_results) {
    return Status::CapacityExceeded("generalization enumeration exceeded " +
                                    std::to_string(max_results) + " results");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<GeneralizationSet>> EnumerateBetween(
    const GeneralizationSet& lower, const GeneralizationSet& upper,
    size_t max_results) {
  if (lower.tree() != upper.tree() || lower.tree() == nullptr) {
    return Status::InvalidArgument(
        "EnumerateBetween: bounds must share a tree");
  }
  const DomainHierarchy& tree = *lower.tree();
  if (!lower.IsRefinementOf(upper)) {
    return Status::InvalidArgument(
        "EnumerateBetween: lower bound is not a refinement of upper bound");
  }

  // Per upper member, the antichain options under it; then cross product.
  std::vector<std::vector<NodeId>> combos = {{}};
  for (NodeId member : upper.nodes()) {
    std::vector<std::vector<NodeId>> opts;
    PRIVMARK_RETURN_NOT_OK(
        OptionsUnder(tree, lower, member, max_results, &opts));
    std::vector<std::vector<NodeId>> next;
    next.reserve(combos.size() * opts.size());
    for (const auto& c : combos) {
      for (const auto& o : opts) {
        if (next.size() > max_results) {
          return Status::CapacityExceeded(
              "generalization enumeration exceeded " +
              std::to_string(max_results) + " results");
        }
        std::vector<NodeId> merged = c;
        merged.insert(merged.end(), o.begin(), o.end());
        next.push_back(std::move(merged));
      }
    }
    combos = std::move(next);
  }

  std::vector<GeneralizationSet> out;
  out.reserve(combos.size());
  for (auto& combo : combos) {
    PRIVMARK_ASSIGN_OR_RETURN(GeneralizationSet gs,
                              GeneralizationSet::Create(&tree, std::move(combo)));
    out.push_back(std::move(gs));
  }
  return out;
}

}  // namespace privmark
