// AES-128 (FIPS 197), implemented from scratch.
//
// The paper's binning algorithm (Fig. 8) replaces each identifying value by
// its encryption under "an encryption function E() e.g., DES or AES"; the
// mapping must be one-to-one so the data holder can later decrypt the
// identifiers during an ownership dispute (Sec. 5.4). We implement AES-128
// and apply it per-value in ECB mode over length-prefixed padded input —
// deterministic and injective, exactly the property the paper relies on.
//
// This is a table-free, constant-size implementation tuned for clarity, not
// a side-channel-hardened production cipher.

#ifndef PRIVMARK_CRYPTO_AES128_H_
#define PRIVMARK_CRYPTO_AES128_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace privmark {

/// \brief AES-128 block cipher with per-value string encryption helpers.
class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;

  /// \brief Expands the 16-byte key schedule.
  explicit Aes128(const std::array<uint8_t, kKeySize>& key);

  /// \brief Builds a key by hashing an arbitrary passphrase (SHA-1 truncated
  /// to 16 bytes), so callers can use human-readable secrets.
  static Aes128 FromPassphrase(const std::string& passphrase);

  /// \brief Encrypts one 16-byte block in place.
  void EncryptBlock(uint8_t block[kBlockSize]) const;

  /// \brief Decrypts one 16-byte block in place.
  void DecryptBlock(uint8_t block[kBlockSize]) const;

  /// \brief Deterministically encrypts a value string to lowercase hex.
  ///
  /// The plaintext is encoded as [1-byte length]... per 15-byte chunk, so
  /// distinct inputs yield distinct outputs (injective) and EncryptValue /
  /// DecryptValue round-trip for values up to 255 bytes.
  Result<std::string> EncryptValue(const std::string& value) const;

  /// \brief Inverse of EncryptValue.
  Result<std::string> DecryptValue(const std::string& hex_ciphertext) const;

 private:
  static constexpr int kRounds = 10;
  // Round keys: (kRounds + 1) * 16 bytes.
  std::array<uint8_t, (kRounds + 1) * kBlockSize> round_keys_;
};

}  // namespace privmark

#endif  // PRIVMARK_CRYPTO_AES128_H_
