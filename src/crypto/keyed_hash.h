// Keyed hashing used by the watermarking algorithm.
//
// The paper (Eq. 5 and Fig. 9) computes H(ti.ident, k1) and H(ti.ident, k2)
// where H is "a cryptographic hash function e.g., MD5 or SHA1" and k1/k2 are
// elements of the secret watermarking key. We realize H(m, k) as
// Hash(k || 0x00 || m) truncated to a uint64 (big-endian leading bytes);
// the 0x00 separator prevents key/message boundary ambiguity.

#ifndef PRIVMARK_CRYPTO_KEYED_HASH_H_
#define PRIVMARK_CRYPTO_KEYED_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace privmark {

/// \brief Which underlying hash the watermarking pipeline uses.
enum class HashAlgorithm {
  kSha1,
  kMd5,
};

const char* HashAlgorithmToString(HashAlgorithm algo);

/// \brief Full digest of key || 0x00 || message.
std::vector<uint8_t> KeyedDigest(HashAlgorithm algo, std::string_view key,
                                 std::string_view message);

/// \brief First 8 digest bytes as a big-endian uint64.
///
/// This is the quantity the paper reduces mod eta (selection) or mod |S| /
/// |wmd| (permutation and position choice). Streams key, separator and
/// message into the hasher directly — no concatenation buffer, no digest
/// allocation — so the watermarking hot loops can call it per tuple/slot
/// without touching the heap.
uint64_t KeyedHash64(HashAlgorithm algo, std::string_view key,
                     std::string_view message);

/// \brief One (key, message) pair for batched keyed hashing. Views must
/// outlive the KeyedHash64Batch call.
struct KeyedHashInput {
  std::string_view key;
  std::string_view message;
};

/// \brief Batched KeyedHash64: outs[i] = KeyedHash64(algo, inputs[i].key,
/// inputs[i].message), value-identical to the scalar call.
///
/// SHA-1 batches flow through the multi-buffer kernel (4–8 interleaved
/// lanes, see crypto/sha1_multibuffer.h), so cost per hash drops several-
/// fold when `n` covers at least one full lane group; MD5 falls back to the
/// scalar path per element. The watermark embed/detect loops hand whole
/// blocks of tuples (and multi-key detection whole key groups) to this
/// entry point instead of hashing one tuple at a time.
void KeyedHash64Batch(HashAlgorithm algo, const KeyedHashInput* inputs,
                      size_t n, uint64_t* outs);

/// \brief Single-key convenience overload: outs[i] = KeyedHash64(algo, key,
/// messages[i]).
void KeyedHash64Batch(HashAlgorithm algo, std::string_view key,
                      const std::string_view* messages, size_t n,
                      uint64_t* outs);

}  // namespace privmark

#endif  // PRIVMARK_CRYPTO_KEYED_HASH_H_
