// Keyed hashing used by the watermarking algorithm.
//
// The paper (Eq. 5 and Fig. 9) computes H(ti.ident, k1) and H(ti.ident, k2)
// where H is "a cryptographic hash function e.g., MD5 or SHA1" and k1/k2 are
// elements of the secret watermarking key. We realize H(m, k) as
// Hash(k || 0x00 || m) truncated to a uint64 (big-endian leading bytes);
// the 0x00 separator prevents key/message boundary ambiguity.

#ifndef PRIVMARK_CRYPTO_KEYED_HASH_H_
#define PRIVMARK_CRYPTO_KEYED_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace privmark {

/// \brief Which underlying hash the watermarking pipeline uses.
enum class HashAlgorithm {
  kSha1,
  kMd5,
};

const char* HashAlgorithmToString(HashAlgorithm algo);

/// \brief Full digest of key || 0x00 || message.
std::vector<uint8_t> KeyedDigest(HashAlgorithm algo, std::string_view key,
                                 std::string_view message);

/// \brief First 8 digest bytes as a big-endian uint64.
///
/// This is the quantity the paper reduces mod eta (selection) or mod |S| /
/// |wmd| (permutation and position choice). Streams key, separator and
/// message into the hasher directly — no concatenation buffer, no digest
/// allocation — so the watermarking hot loops can call it per tuple/slot
/// without touching the heap.
uint64_t KeyedHash64(HashAlgorithm algo, std::string_view key,
                     std::string_view message);

}  // namespace privmark

#endif  // PRIVMARK_CRYPTO_KEYED_HASH_H_
