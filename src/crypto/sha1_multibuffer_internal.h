// Internal seam between sha1_multibuffer.cc (dispatch + block scheduling)
// and sha1_multibuffer_avx2.cc (the 8-lane kernel, which must live in its
// own translation unit compiled with -mavx2: only that TU may contain AVX2
// intrinsics, and the dispatcher itself must stay runnable on SSE2-only
// CPUs). Not part of the public crypto API.

#ifndef PRIVMARK_CRYPTO_SHA1_MULTIBUFFER_INTERNAL_H_
#define PRIVMARK_CRYPTO_SHA1_MULTIBUFFER_INTERNAL_H_

#include <cstdint>

namespace privmark {
namespace crypto_internal {

#if defined(__x86_64__) || defined(_M_X64)
/// \brief True when the binary carries a real AVX2 kernel (the AVX2 TU was
/// compiled with -mavx2). Callers must still check the CPU at runtime.
bool Sha1Avx2Compiled();

/// \brief Eight-lane SHA-1 compression. `h` is word-major chaining state
/// (h[word * 8 + lane]); blocks[lane] points at lane's 64-byte block. Must
/// only be called when Sha1Avx2Compiled() and the CPU supports AVX2.
void Sha1CompressLanes8Avx2(uint32_t* h, const uint8_t* const* blocks);
#endif

}  // namespace crypto_internal
}  // namespace privmark

#endif  // PRIVMARK_CRYPTO_SHA1_MULTIBUFFER_INTERNAL_H_
