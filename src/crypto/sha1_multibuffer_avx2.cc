// Eight-lane AVX2 SHA-1 kernel. This translation unit is the only one
// compiled with -mavx2 (see src/CMakeLists.txt); the dispatcher in
// sha1_multibuffer.cc only calls in here after checking
// __builtin_cpu_supports("avx2"), so the rest of the binary stays runnable
// on SSE2-only CPUs. When the build doesn't enable AVX2 (non-GCC-style
// toolchain or non-x86 target) the stub below reports the kernel absent and
// the dispatcher never selects it.

#include "crypto/sha1_multibuffer_internal.h"

#if defined(__x86_64__) || defined(_M_X64)

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace privmark {
namespace crypto_internal {

#if defined(__AVX2__)

namespace {

inline uint32_t LoadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

inline __m256i RotlV(__m256i x, int k) {
  return _mm256_or_si256(_mm256_slli_epi32(x, k),
                         _mm256_srli_epi32(x, 32 - k));
}

}  // namespace

bool Sha1Avx2Compiled() { return true; }

void Sha1CompressLanes8Avx2(uint32_t* h, const uint8_t* const* blocks) {
  __m256i w[16];
  for (int i = 0; i < 16; ++i) {
    w[i] = _mm256_set_epi32(static_cast<int>(LoadBe32(blocks[7] + 4 * i)),
                            static_cast<int>(LoadBe32(blocks[6] + 4 * i)),
                            static_cast<int>(LoadBe32(blocks[5] + 4 * i)),
                            static_cast<int>(LoadBe32(blocks[4] + 4 * i)),
                            static_cast<int>(LoadBe32(blocks[3] + 4 * i)),
                            static_cast<int>(LoadBe32(blocks[2] + 4 * i)),
                            static_cast<int>(LoadBe32(blocks[1] + 4 * i)),
                            static_cast<int>(LoadBe32(blocks[0] + 4 * i)));
  }
  __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + 0));
  __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + 8));
  __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + 16));
  __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + 24));
  __m256i e = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + 32));
  const __m256i a0 = a, b0 = b, c0 = c, d0 = d, e0 = e;

  auto schedule = [&w](int i) {
    const __m256i next = RotlV(
        _mm256_xor_si256(
            _mm256_xor_si256(w[(i + 13) & 15], w[(i + 8) & 15]),
            _mm256_xor_si256(w[(i + 2) & 15], w[i & 15])),
        1);
    w[i & 15] = next;
    return next;
  };
  auto round = [&](__m256i f, uint32_t k, __m256i wi) {
    const __m256i tmp = _mm256_add_epi32(
        _mm256_add_epi32(RotlV(a, 5), f),
        _mm256_add_epi32(_mm256_add_epi32(e, wi),
                         _mm256_set1_epi32(static_cast<int>(k))));
    e = d;
    d = c;
    c = RotlV(b, 30);
    b = a;
    a = tmp;
  };
  auto ch = [&] {
    return _mm256_xor_si256(d, _mm256_and_si256(b, _mm256_xor_si256(c, d)));
  };
  auto parity = [&] { return _mm256_xor_si256(b, _mm256_xor_si256(c, d)); };
  auto maj = [&] {
    return _mm256_or_si256(_mm256_and_si256(b, c),
                           _mm256_and_si256(d, _mm256_or_si256(b, c)));
  };
  for (int i = 0; i < 16; ++i) round(ch(), 0x5A827999, w[i]);
  for (int i = 16; i < 20; ++i) round(ch(), 0x5A827999, schedule(i));
  for (int i = 20; i < 40; ++i) round(parity(), 0x6ED9EBA1, schedule(i));
  for (int i = 40; i < 60; ++i) round(maj(), 0x8F1BBCDC, schedule(i));
  for (int i = 60; i < 80; ++i) round(parity(), 0xCA62C1D6, schedule(i));

  _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + 0),
                      _mm256_add_epi32(a0, a));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + 8),
                      _mm256_add_epi32(b0, b));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + 16),
                      _mm256_add_epi32(c0, c));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + 24),
                      _mm256_add_epi32(d0, d));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + 32),
                      _mm256_add_epi32(e0, e));
}

#else  // !__AVX2__

bool Sha1Avx2Compiled() { return false; }

void Sha1CompressLanes8Avx2(uint32_t*, const uint8_t* const*) {}

#endif  // __AVX2__

}  // namespace crypto_internal
}  // namespace privmark

#endif  // x86-64
