// SHA-1 (FIPS 180-1), implemented from scratch.
//
// The paper's watermarking algorithm keys all tuple-selection and
// index-permutation decisions on "a cryptographic hash function e.g., MD5 or
// SHA1" (Eq. 5 and Fig. 9). SHA-1 is the library default.
//
// SHA-1 is not collision resistant by modern standards; it is used here as a
// keyed PRF-style selector exactly as in the 2005 paper, not for signatures.

#ifndef PRIVMARK_CRYPTO_SHA1_H_
#define PRIVMARK_CRYPTO_SHA1_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace privmark {

/// \brief Incremental SHA-1 hasher.
class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;

  Sha1();

  /// \brief Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);
  /// \brief string_view overload: accepts std::string, literals, and
  /// substrings alike without materializing a temporary string.
  void Update(std::string_view data);

  /// \brief Finishes and returns the 20-byte digest. The hasher must not be
  /// reused after Finish() without Reset().
  std::vector<uint8_t> Finish();

  /// \brief Allocation-free Finish(): writes the digest into `out`
  /// (kDigestSize bytes). Same reuse rule as Finish().
  void FinishInto(uint8_t* out);

  /// \brief Restores the initial state.
  void Reset();

  /// \brief One-shot convenience.
  static std::vector<uint8_t> Hash(std::string_view data);

  /// \brief One-shot digest of a message short enough for a single padded
  /// block (`len` <= 55 bytes): no state object, one compress call. This
  /// is the watermarking hot path — every Eq. (5) / Fig. 9 hash input is a
  /// few dozen bytes.
  static void HashSingleBlock(const uint8_t* data, size_t len, uint8_t* out);

 private:
  void ProcessBlock(const uint8_t block[64]);
  static void Compress(uint32_t h[5], const uint8_t block[64]);

  uint32_t h_[5];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace privmark

#endif  // PRIVMARK_CRYPTO_SHA1_H_
