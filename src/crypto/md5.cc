#include "crypto/md5.h"

#include <cstring>

namespace privmark {

namespace {

uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

// Per-round shift amounts (RFC 1321).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i + 1))).
constexpr uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

}  // namespace

Md5::Md5() { Reset(); }

void Md5::Reset() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Md5::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  while (len > 0) {
    const size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

void Md5::Update(std::string_view data) {
  Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
}

void Md5::FinishInto(uint8_t* out) {
  // Padding goes straight into the block buffer (buffer_len_ < 64 after
  // any Update); see Sha1::FinishInto.
  const uint64_t bit_len = total_len_ * 8;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_ + buffer_len_, 0, sizeof(buffer_) - buffer_len_);
    ProcessBlock(buffer_);
    buffer_len_ = 0;
  }
  std::memset(buffer_ + buffer_len_, 0, 56 - buffer_len_);
  // MD5 appends the length little-endian (unlike SHA-1).
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  ProcessBlock(buffer_);
  buffer_len_ = 0;
  total_len_ = 0;

  for (int i = 0; i < 4; ++i) {
    out[4 * i + 0] = static_cast<uint8_t>(state_[i]);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i] >> 24);
  }
}

std::vector<uint8_t> Md5::Finish() {
  std::vector<uint8_t> digest(kDigestSize);
  FinishInto(digest.data());
  return digest;
}

std::vector<uint8_t> Md5::Hash(std::string_view data) {
  Md5 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

void Md5::ProcessBlock(const uint8_t block[64]) {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<uint32_t>(block[4 * i]) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 8) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 3]) << 24);
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const uint32_t tmp = d;
    d = c;
    c = b;
    b = b + Rotl32(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

}  // namespace privmark
