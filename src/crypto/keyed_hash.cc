#include "crypto/keyed_hash.h"

#include "crypto/md5.h"
#include "crypto/sha1.h"

namespace privmark {

const char* HashAlgorithmToString(HashAlgorithm algo) {
  switch (algo) {
    case HashAlgorithm::kSha1:
      return "SHA1";
    case HashAlgorithm::kMd5:
      return "MD5";
  }
  return "Unknown";
}

std::vector<uint8_t> KeyedDigest(HashAlgorithm algo, const std::string& key,
                                 const std::string& message) {
  std::string input;
  input.reserve(key.size() + 1 + message.size());
  input += key;
  input.push_back('\0');
  input += message;
  switch (algo) {
    case HashAlgorithm::kSha1:
      return Sha1::Hash(input);
    case HashAlgorithm::kMd5:
      return Md5::Hash(input);
  }
  return {};
}

uint64_t KeyedHash64(HashAlgorithm algo, const std::string& key,
                     const std::string& message) {
  const std::vector<uint8_t> digest = KeyedDigest(algo, key, message);
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out = (out << 8) | digest[i];
  }
  return out;
}

}  // namespace privmark
