#include "crypto/keyed_hash.h"

#include <cstring>

#include "crypto/md5.h"
#include "crypto/sha1.h"

namespace privmark {

namespace {

// Streams key || 0x00 || message into `hasher` and finishes into `out`
// (which must hold the algorithm's digest size). No heap allocation.
template <typename Hasher>
void StreamKeyedDigest(Hasher& hasher, std::string_view key,
                       std::string_view message, uint8_t* out) {
  hasher.Update(reinterpret_cast<const uint8_t*>(key.data()), key.size());
  const uint8_t sep = 0x00;
  hasher.Update(&sep, 1);
  hasher.Update(reinterpret_cast<const uint8_t*>(message.data()),
                message.size());
  hasher.FinishInto(out);
}

}  // namespace

const char* HashAlgorithmToString(HashAlgorithm algo) {
  switch (algo) {
    case HashAlgorithm::kSha1:
      return "SHA1";
    case HashAlgorithm::kMd5:
      return "MD5";
  }
  return "Unknown";
}

std::vector<uint8_t> KeyedDigest(HashAlgorithm algo, std::string_view key,
                                 std::string_view message) {
  switch (algo) {
    case HashAlgorithm::kSha1: {
      std::vector<uint8_t> digest(Sha1::kDigestSize);
      Sha1 hasher;
      StreamKeyedDigest(hasher, key, message, digest.data());
      return digest;
    }
    case HashAlgorithm::kMd5: {
      std::vector<uint8_t> digest(Md5::kDigestSize);
      Md5 hasher;
      StreamKeyedDigest(hasher, key, message, digest.data());
      return digest;
    }
  }
  return {};
}

uint64_t KeyedHash64(HashAlgorithm algo, std::string_view key,
                     std::string_view message) {
  // Both digests are >= 8 bytes; a stack buffer sized for the larger one
  // keeps this allocation-free.
  uint8_t digest[Sha1::kDigestSize];
  switch (algo) {
    case HashAlgorithm::kSha1: {
      const size_t total = key.size() + 1 + message.size();
      if (total <= 55) {
        // Keyed inputs are tiny (key, separator, short message): assemble
        // the padded block on the stack and compress exactly once.
        uint8_t buf[55];
        std::memcpy(buf, key.data(), key.size());
        buf[key.size()] = 0x00;
        std::memcpy(buf + key.size() + 1, message.data(), message.size());
        Sha1::HashSingleBlock(buf, total, digest);
        break;
      }
      Sha1 hasher;
      StreamKeyedDigest(hasher, key, message, digest);
      break;
    }
    case HashAlgorithm::kMd5: {
      Md5 hasher;
      StreamKeyedDigest(hasher, key, message, digest);
      break;
    }
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out = (out << 8) | digest[i];
  }
  return out;
}

}  // namespace privmark
