#include "crypto/keyed_hash.h"

#include <cstring>

#include <string>

#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha1_multibuffer.h"

namespace privmark {

namespace {

// Keyed inputs up to this long are assembled as key || 0x00 || message in
// one stack buffer (single Update / single batch lane) instead of streamed
// in three Update calls. Covers every message the watermarking pipeline
// produces — idents, "pos:<ident>:<column>" and "perm:..." strings — with
// ample slack; longer inputs take the streaming path.
constexpr size_t kAssembleMax = 192;

// Assembles key || 0x00 || message into `buf` (>= kAssembleMax bytes).
// Caller guarantees it fits.
inline size_t AssembleKeyed(std::string_view key, std::string_view message,
                            uint8_t* buf) {
  std::memcpy(buf, key.data(), key.size());
  buf[key.size()] = 0x00;
  std::memcpy(buf + key.size() + 1, message.data(), message.size());
  return key.size() + 1 + message.size();
}

inline uint64_t TruncateBe64(const uint8_t* digest) {
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out = (out << 8) | digest[i];
  }
  return out;
}

// Streams key || 0x00 || message into `hasher` and finishes into `out`
// (which must hold the algorithm's digest size). No heap allocation.
template <typename Hasher>
void StreamKeyedDigest(Hasher& hasher, std::string_view key,
                       std::string_view message, uint8_t* out) {
  hasher.Update(reinterpret_cast<const uint8_t*>(key.data()), key.size());
  const uint8_t sep = 0x00;
  hasher.Update(&sep, 1);
  hasher.Update(reinterpret_cast<const uint8_t*>(message.data()),
                message.size());
  hasher.FinishInto(out);
}

}  // namespace

const char* HashAlgorithmToString(HashAlgorithm algo) {
  switch (algo) {
    case HashAlgorithm::kSha1:
      return "SHA1";
    case HashAlgorithm::kMd5:
      return "MD5";
  }
  return "Unknown";
}

std::vector<uint8_t> KeyedDigest(HashAlgorithm algo, std::string_view key,
                                 std::string_view message) {
  switch (algo) {
    case HashAlgorithm::kSha1: {
      std::vector<uint8_t> digest(Sha1::kDigestSize);
      Sha1 hasher;
      StreamKeyedDigest(hasher, key, message, digest.data());
      return digest;
    }
    case HashAlgorithm::kMd5: {
      std::vector<uint8_t> digest(Md5::kDigestSize);
      Md5 hasher;
      StreamKeyedDigest(hasher, key, message, digest.data());
      return digest;
    }
  }
  return {};
}

uint64_t KeyedHash64(HashAlgorithm algo, std::string_view key,
                     std::string_view message) {
  // Both digests are >= 8 bytes; a stack buffer sized for the larger one
  // keeps this allocation-free.
  uint8_t digest[Sha1::kDigestSize];
  const size_t total = key.size() + 1 + message.size();
  switch (algo) {
    case HashAlgorithm::kSha1: {
      if (total <= 55) {
        // Keyed inputs are tiny (key, separator, short message): assemble
        // the padded block on the stack and compress exactly once.
        uint8_t buf[55];
        Sha1::HashSingleBlock(buf, AssembleKeyed(key, message, buf), digest);
        break;
      }
      if (total <= kAssembleMax) {
        // Still stack-assembled: one Update over the joined bytes beats
        // three small Updates through the 64-byte block buffer.
        uint8_t buf[kAssembleMax];
        Sha1 hasher;
        hasher.Update(buf, AssembleKeyed(key, message, buf));
        hasher.FinishInto(digest);
        break;
      }
      Sha1 hasher;
      StreamKeyedDigest(hasher, key, message, digest);
      break;
    }
    case HashAlgorithm::kMd5: {
      if (total <= kAssembleMax) {
        uint8_t buf[kAssembleMax];
        Md5 hasher;
        hasher.Update(buf, AssembleKeyed(key, message, buf));
        hasher.FinishInto(digest);
        break;
      }
      Md5 hasher;
      StreamKeyedDigest(hasher, key, message, digest);
      break;
    }
  }
  return TruncateBe64(digest);
}

void KeyedHash64Batch(HashAlgorithm algo, const KeyedHashInput* inputs,
                      size_t n, uint64_t* outs) {
  if (algo != HashAlgorithm::kSha1) {
    // MD5 has no multi-buffer kernel; values still match the scalar call.
    for (size_t i = 0; i < n; ++i) {
      outs[i] = KeyedHash64(algo, inputs[i].key, inputs[i].message);
    }
    return;
  }
  // Assemble key || 0x00 || message per lane on the stack, then hand whole
  // chunks to the interleaved-lane kernel. Two AVX2 groups per chunk keeps
  // the stack footprint ~3 KiB while amortizing dispatch.
  constexpr size_t kChunk = 2 * Sha1MultiBuffer::kMaxLanes;
  uint8_t bufs[kChunk][kAssembleMax];
  std::string overflow[kChunk];  // rare: inputs longer than kAssembleMax
  std::string_view views[kChunk];
  uint8_t digests[kChunk * Sha1MultiBuffer::kDigestSize];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t m = n - base < kChunk ? n - base : kChunk;
    for (size_t i = 0; i < m; ++i) {
      const KeyedHashInput& in = inputs[base + i];
      const size_t total = in.key.size() + 1 + in.message.size();
      if (total <= kAssembleMax) {
        views[i] = std::string_view(reinterpret_cast<const char*>(bufs[i]),
                                    AssembleKeyed(in.key, in.message, bufs[i]));
      } else {
        overflow[i].clear();
        overflow[i].reserve(total);
        overflow[i].append(in.key);
        overflow[i].push_back('\0');
        overflow[i].append(in.message);
        views[i] = overflow[i];
      }
    }
    Sha1MultiBuffer::Hash(views, m, digests);
    for (size_t i = 0; i < m; ++i) {
      outs[base + i] =
          TruncateBe64(digests + i * Sha1MultiBuffer::kDigestSize);
    }
  }
}

void KeyedHash64Batch(HashAlgorithm algo, std::string_view key,
                      const std::string_view* messages, size_t n,
                      uint64_t* outs) {
  constexpr size_t kChunk = 2 * Sha1MultiBuffer::kMaxLanes;
  KeyedHashInput inputs[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t m = n - base < kChunk ? n - base : kChunk;
    for (size_t i = 0; i < m; ++i) {
      inputs[i] = {key, messages[base + i]};
    }
    KeyedHash64Batch(algo, inputs, m, outs + base);
  }
}

}  // namespace privmark
