#include "crypto/sha1_multibuffer.h"

#include <atomic>
#include <cstring>

#include "crypto/sha1.h"
#include "crypto/sha1_internal.h"
#include "crypto/sha1_multibuffer_internal.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace privmark {

namespace {

// Big-endian word load, byte by byte: alignment-clean under UBSan on every
// target, and compilers turn the idiom into a single bswap'd load anyway.
inline uint32_t LoadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

inline uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

// ---------------------------------------------------------------------------
// Portable lane kernel: word-major state h[word * L + lane], elementwise
// lane loops in every round. The L-wide inner loops carry no cross-lane
// dependency, so the compiler either autovectorizes them or at least keeps
// L independent dependency chains in flight — that ILP, not vector width,
// is where most of the win over one-message-at-a-time hashing comes from.
// ---------------------------------------------------------------------------

template <size_t L>
void CompressLanesPortable(uint32_t* h, const uint8_t* const* blocks) {
  uint32_t w[16][L];
  for (size_t i = 0; i < 16; ++i) {
    for (size_t l = 0; l < L; ++l) {
      w[i][l] = LoadBe32(blocks[l] + 4 * i);
    }
  }
  uint32_t a[L], b[L], c[L], d[L], e[L];
  for (size_t l = 0; l < L; ++l) {
    a[l] = h[0 * L + l];
    b[l] = h[1 * L + l];
    c[l] = h[2 * L + l];
    d[l] = h[3 * L + l];
    e[l] = h[4 * L + l];
  }
  uint32_t wi[L];
  uint32_t f[L];
  auto take = [&](size_t i) {
    for (size_t l = 0; l < L; ++l) wi[l] = w[i & 15][l];
  };
  auto schedule = [&](size_t i) {
    for (size_t l = 0; l < L; ++l) {
      const uint32_t next = Rotl32(w[(i + 13) & 15][l] ^ w[(i + 8) & 15][l] ^
                                       w[(i + 2) & 15][l] ^ w[i & 15][l],
                                   1);
      w[i & 15][l] = next;
      wi[l] = next;
    }
  };
  auto round = [&](uint32_t k) {
    for (size_t l = 0; l < L; ++l) {
      const uint32_t tmp = Rotl32(a[l], 5) + f[l] + e[l] + k + wi[l];
      e[l] = d[l];
      d[l] = c[l];
      c[l] = Rotl32(b[l], 30);
      b[l] = a[l];
      a[l] = tmp;
    }
  };
  auto ch = [&] {
    for (size_t l = 0; l < L; ++l) f[l] = d[l] ^ (b[l] & (c[l] ^ d[l]));
  };
  auto parity = [&] {
    for (size_t l = 0; l < L; ++l) f[l] = b[l] ^ c[l] ^ d[l];
  };
  auto maj = [&] {
    for (size_t l = 0; l < L; ++l) {
      f[l] = (b[l] & c[l]) | (d[l] & (b[l] | c[l]));
    }
  };
  for (size_t i = 0; i < 16; ++i) {
    take(i);
    ch();
    round(0x5A827999);
  }
  for (size_t i = 16; i < 20; ++i) {
    schedule(i);
    ch();
    round(0x5A827999);
  }
  for (size_t i = 20; i < 40; ++i) {
    schedule(i);
    parity();
    round(0x6ED9EBA1);
  }
  for (size_t i = 40; i < 60; ++i) {
    schedule(i);
    maj();
    round(0x8F1BBCDC);
  }
  for (size_t i = 60; i < 80; ++i) {
    schedule(i);
    parity();
    round(0xCA62C1D6);
  }
  for (size_t l = 0; l < L; ++l) {
    h[0 * L + l] += a[l];
    h[1 * L + l] += b[l];
    h[2 * L + l] += c[l];
    h[3 * L + l] += d[l];
    h[4 * L + l] += e[l];
  }
}

// ---------------------------------------------------------------------------
// SSE2 4-lane kernel (x86-64 baseline, no extra compile flags needed).
// One 32-bit element per message; same phase structure as the scalar
// compress in sha1.cc.
// ---------------------------------------------------------------------------

#if defined(__x86_64__) || defined(_M_X64)

inline __m128i RotlV(__m128i x, int k) {
  return _mm_or_si128(_mm_slli_epi32(x, k), _mm_srli_epi32(x, 32 - k));
}

void CompressLanes4Sse2(uint32_t* h, const uint8_t* const* blocks) {
  __m128i w[16];
  for (int i = 0; i < 16; ++i) {
    w[i] = _mm_set_epi32(static_cast<int>(LoadBe32(blocks[3] + 4 * i)),
                         static_cast<int>(LoadBe32(blocks[2] + 4 * i)),
                         static_cast<int>(LoadBe32(blocks[1] + 4 * i)),
                         static_cast<int>(LoadBe32(blocks[0] + 4 * i)));
  }
  __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + 0));
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + 4));
  __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + 8));
  __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + 12));
  __m128i e = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + 16));
  const __m128i a0 = a, b0 = b, c0 = c, d0 = d, e0 = e;

  auto schedule = [&w](int i) {
    const __m128i next =
        RotlV(_mm_xor_si128(_mm_xor_si128(w[(i + 13) & 15], w[(i + 8) & 15]),
                            _mm_xor_si128(w[(i + 2) & 15], w[i & 15])),
              1);
    w[i & 15] = next;
    return next;
  };
  auto round = [&](__m128i f, uint32_t k, __m128i wi) {
    const __m128i tmp = _mm_add_epi32(
        _mm_add_epi32(RotlV(a, 5), f),
        _mm_add_epi32(_mm_add_epi32(e, wi),
                      _mm_set1_epi32(static_cast<int>(k))));
    e = d;
    d = c;
    c = RotlV(b, 30);
    b = a;
    a = tmp;
  };
  auto ch = [&] { return _mm_xor_si128(d, _mm_and_si128(b, _mm_xor_si128(c, d))); };
  auto parity = [&] { return _mm_xor_si128(b, _mm_xor_si128(c, d)); };
  auto maj = [&] {
    return _mm_or_si128(_mm_and_si128(b, c),
                        _mm_and_si128(d, _mm_or_si128(b, c)));
  };
  for (int i = 0; i < 16; ++i) round(ch(), 0x5A827999, w[i]);
  for (int i = 16; i < 20; ++i) round(ch(), 0x5A827999, schedule(i));
  for (int i = 20; i < 40; ++i) round(parity(), 0x6ED9EBA1, schedule(i));
  for (int i = 40; i < 60; ++i) round(maj(), 0x8F1BBCDC, schedule(i));
  for (int i = 60; i < 80; ++i) round(parity(), 0xCA62C1D6, schedule(i));

  _mm_storeu_si128(reinterpret_cast<__m128i*>(h + 0), _mm_add_epi32(a0, a));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(h + 4), _mm_add_epi32(b0, b));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(h + 8), _mm_add_epi32(c0, c));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(h + 12), _mm_add_epi32(d0, d));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(h + 16), _mm_add_epi32(e0, e));
}

#endif  // x86-64

// ---------------------------------------------------------------------------
// NEON 4-lane kernel (AArch64 baseline).
// ---------------------------------------------------------------------------

#if defined(__aarch64__)

template <int K>
inline uint32x4_t RotlN(uint32x4_t x) {
  return vorrq_u32(vshlq_n_u32(x, K), vshrq_n_u32(x, 32 - K));
}

void CompressLanes4Neon(uint32_t* h, const uint8_t* const* blocks) {
  uint32x4_t w[16];
  for (int i = 0; i < 16; ++i) {
    const uint32_t words[4] = {
        LoadBe32(blocks[0] + 4 * i), LoadBe32(blocks[1] + 4 * i),
        LoadBe32(blocks[2] + 4 * i), LoadBe32(blocks[3] + 4 * i)};
    w[i] = vld1q_u32(words);
  }
  uint32x4_t a = vld1q_u32(h + 0);
  uint32x4_t b = vld1q_u32(h + 4);
  uint32x4_t c = vld1q_u32(h + 8);
  uint32x4_t d = vld1q_u32(h + 12);
  uint32x4_t e = vld1q_u32(h + 16);
  const uint32x4_t a0 = a, b0 = b, c0 = c, d0 = d, e0 = e;

  auto schedule = [&w](int i) {
    const uint32x4_t next = RotlN<1>(
        veorq_u32(veorq_u32(w[(i + 13) & 15], w[(i + 8) & 15]),
                  veorq_u32(w[(i + 2) & 15], w[i & 15])));
    w[i & 15] = next;
    return next;
  };
  auto round = [&](uint32x4_t f, uint32_t k, uint32x4_t wi) {
    const uint32x4_t tmp = vaddq_u32(
        vaddq_u32(RotlN<5>(a), f),
        vaddq_u32(vaddq_u32(e, wi), vdupq_n_u32(k)));
    e = d;
    d = c;
    c = RotlN<30>(b);
    b = a;
    a = tmp;
  };
  auto ch = [&] { return veorq_u32(d, vandq_u32(b, veorq_u32(c, d))); };
  auto parity = [&] { return veorq_u32(b, veorq_u32(c, d)); };
  auto maj = [&] {
    return vorrq_u32(vandq_u32(b, c), vandq_u32(d, vorrq_u32(b, c)));
  };
  for (int i = 0; i < 16; ++i) round(ch(), 0x5A827999, w[i]);
  for (int i = 16; i < 20; ++i) round(ch(), 0x5A827999, schedule(i));
  for (int i = 20; i < 40; ++i) round(parity(), 0x6ED9EBA1, schedule(i));
  for (int i = 40; i < 60; ++i) round(maj(), 0x8F1BBCDC, schedule(i));
  for (int i = 60; i < 80; ++i) round(parity(), 0xCA62C1D6, schedule(i));

  vst1q_u32(h + 0, vaddq_u32(a0, a));
  vst1q_u32(h + 4, vaddq_u32(b0, b));
  vst1q_u32(h + 8, vaddq_u32(c0, c));
  vst1q_u32(h + 12, vaddq_u32(d0, d));
  vst1q_u32(h + 16, vaddq_u32(e0, e));
}

#endif  // __aarch64__

// ---------------------------------------------------------------------------
// Dispatch + mixed-length block scheduling.
// ---------------------------------------------------------------------------

struct BackendImpl {
  const char* name;
  size_t lanes;
  void (*compress)(uint32_t* h, const uint8_t* const* blocks);
};

constexpr BackendImpl kPortable = {"portable", 4, &CompressLanesPortable<4>};
#if defined(__x86_64__) || defined(_M_X64)
constexpr BackendImpl kSse2 = {"sse2", 4, &CompressLanes4Sse2};
constexpr BackendImpl kAvx2 = {"avx2", 8,
                               &crypto_internal::Sha1CompressLanes8Avx2};
#endif
#if defined(__aarch64__)
constexpr BackendImpl kNeon = {"neon", 4, &CompressLanes4Neon};
#endif

const BackendImpl* DetectBackend() {
#if defined(__x86_64__) || defined(_M_X64)
  if (crypto_internal::Sha1Avx2Compiled() && __builtin_cpu_supports("avx2")) {
    return &kAvx2;
  }
  return &kSse2;
#elif defined(__aarch64__)
  return &kNeon;
#else
  return &kPortable;
#endif
}

std::atomic<const BackendImpl*> g_backend{nullptr};

const BackendImpl* ActiveImpl() {
  const BackendImpl* impl = g_backend.load(std::memory_order_acquire);
  if (impl == nullptr) {
    impl = DetectBackend();
    g_backend.store(impl, std::memory_order_release);
  }
  return impl;
}

// SHA-1 message occupies nblocks 64-byte blocks once padded: the 0x80
// terminator plus the 8-byte bit length must fit after the message.
inline size_t NumBlocks(size_t len) { return (len + 8) / 64 + 1; }

// Returns the b'th block of a padded message: full in-message blocks come
// straight from the message bytes (zero copy); boundary/padding blocks are
// materialized into the caller's 64-byte scratch.
const uint8_t* BlockPtr(std::string_view m, size_t b, size_t nblocks,
                        uint8_t* scratch) {
  const size_t off = b * 64;
  if (off + 64 <= m.size()) {
    return reinterpret_cast<const uint8_t*>(m.data()) + off;
  }
  std::memset(scratch, 0, 64);
  if (off < m.size()) {
    std::memcpy(scratch, m.data() + off, m.size() - off);
  }
  if (m.size() >= off && m.size() - off < 64) {
    scratch[m.size() - off] = 0x80;
  }
  if (b + 1 == nblocks) {
    const uint64_t bit_len = static_cast<uint64_t>(m.size()) * 8;
    for (int i = 0; i < 8; ++i) {
      scratch[56 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
    }
  }
  return scratch;
}

// Hashes exactly `L` messages (L == impl.lanes) of arbitrary mixed lengths.
// Blocks advance in lock-step while every lane still has one; lanes whose
// shorter messages have run out drop to the scalar compress on their strided
// slice of the state, so mixed lengths stay byte-identical to Sha1::Hash.
void HashGroup(const BackendImpl& impl, const std::string_view* msgs,
               uint8_t* out) {
  const size_t L = impl.lanes;
  size_t nblocks[Sha1MultiBuffer::kMaxLanes];
  size_t max_blocks = 0;
  for (size_t l = 0; l < L; ++l) {
    nblocks[l] = NumBlocks(msgs[l].size());
    if (nblocks[l] > max_blocks) max_blocks = nblocks[l];
  }
  uint32_t h[5 * Sha1MultiBuffer::kMaxLanes];
  for (size_t word = 0; word < 5; ++word) {
    for (size_t l = 0; l < L; ++l) {
      h[word * L + l] = crypto_internal::kSha1Init[word];
    }
  }
  uint8_t scratch[Sha1MultiBuffer::kMaxLanes][64];
  const uint8_t* blocks[Sha1MultiBuffer::kMaxLanes];
  for (size_t b = 0; b < max_blocks; ++b) {
    size_t active = 0;
    for (size_t l = 0; l < L; ++l) {
      if (nblocks[l] > b) ++active;
    }
    if (active == L) {
      for (size_t l = 0; l < L; ++l) {
        blocks[l] = BlockPtr(msgs[l], b, nblocks[l], scratch[l]);
      }
      impl.compress(h, blocks);
    } else {
      for (size_t l = 0; l < L; ++l) {
        if (nblocks[l] <= b) continue;
        uint32_t lane_h[5];
        for (size_t word = 0; word < 5; ++word) lane_h[word] = h[word * L + l];
        crypto_internal::Sha1Compress(
            lane_h, BlockPtr(msgs[l], b, nblocks[l], scratch[l]));
        for (size_t word = 0; word < 5; ++word) h[word * L + l] = lane_h[word];
      }
    }
  }
  for (size_t l = 0; l < L; ++l) {
    uint8_t* digest = out + Sha1MultiBuffer::kDigestSize * l;
    for (size_t word = 0; word < 5; ++word) {
      const uint32_t v = h[word * L + l];
      digest[4 * word + 0] = static_cast<uint8_t>(v >> 24);
      digest[4 * word + 1] = static_cast<uint8_t>(v >> 16);
      digest[4 * word + 2] = static_cast<uint8_t>(v >> 8);
      digest[4 * word + 3] = static_cast<uint8_t>(v);
    }
  }
}

}  // namespace

const char* Sha1MultiBuffer::Backend() { return ActiveImpl()->name; }

size_t Sha1MultiBuffer::PreferredLanes() { return ActiveImpl()->lanes; }

void Sha1MultiBuffer::Hash(const std::string_view* messages, size_t n,
                           uint8_t* out) {
  const BackendImpl* impl = ActiveImpl();
  const size_t L = impl->lanes;
  size_t i = 0;
  for (; i + L <= n; i += L) {
    HashGroup(*impl, messages + i, out + kDigestSize * i);
  }
  const size_t tail = n - i;
  if (tail >= 2) {
    // A partial group still beats hashing its messages one by one: pad the
    // unused lanes with empty messages (one compress each, in lock-step
    // with everyone's final block) and discard their digests. Only a
    // single-message tail falls back to the scalar hasher.
    std::string_view padded[kMaxLanes];
    for (size_t j = 0; j < tail; ++j) padded[j] = messages[i + j];
    for (size_t j = tail; j < L; ++j) padded[j] = std::string_view();
    uint8_t digests[kMaxLanes * kDigestSize];
    HashGroup(*impl, padded, digests);
    std::memcpy(out + kDigestSize * i, digests, tail * kDigestSize);
  } else if (tail == 1) {
    Sha1 hasher;
    hasher.Update(messages[i]);
    hasher.FinishInto(out + kDigestSize * i);
  }
}

std::vector<const char*> Sha1MultiBuffer::AvailableBackends() {
  std::vector<const char*> names;
#if defined(__x86_64__) || defined(_M_X64)
  if (crypto_internal::Sha1Avx2Compiled() && __builtin_cpu_supports("avx2")) {
    names.push_back(kAvx2.name);
  }
  names.push_back(kSse2.name);
#endif
#if defined(__aarch64__)
  names.push_back(kNeon.name);
#endif
  names.push_back(kPortable.name);
  return names;
}

bool Sha1MultiBuffer::ForceBackend(const char* name) {
  if (name == nullptr || std::strcmp(name, "auto") == 0) {
    g_backend.store(DetectBackend(), std::memory_order_release);
    return true;
  }
  for (const char* available : AvailableBackends()) {
    if (std::strcmp(name, available) == 0) {
      const BackendImpl* impl = &kPortable;
#if defined(__x86_64__) || defined(_M_X64)
      if (std::strcmp(name, kAvx2.name) == 0) impl = &kAvx2;
      if (std::strcmp(name, kSse2.name) == 0) impl = &kSse2;
#endif
#if defined(__aarch64__)
      if (std::strcmp(name, kNeon.name) == 0) impl = &kNeon;
#endif
      g_backend.store(impl, std::memory_order_release);
      return true;
    }
  }
  return false;
}

}  // namespace privmark
