#include "crypto/sha1.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha1_internal.h"

namespace privmark {

namespace {
uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
}  // namespace

Sha1::Sha1() { Reset(); }

void Sha1::Reset() {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha1::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  while (len > 0) {
    const size_t take = std::min(len, sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

void Sha1::Update(std::string_view data) {
  Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
}

void Sha1::FinishInto(uint8_t* out) {
  // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit bit length.
  // Padding is written straight into the block buffer (buffer_len_ < 64
  // after any Update) instead of byte-wise Update calls — finalization is
  // half the work for the short keyed messages the watermark hashes.
  const uint64_t bit_len = total_len_ * 8;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_ + buffer_len_, 0, sizeof(buffer_) - buffer_len_);
    ProcessBlock(buffer_);
    buffer_len_ = 0;
  }
  std::memset(buffer_ + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  ProcessBlock(buffer_);
  buffer_len_ = 0;
  total_len_ = 0;

  for (int i = 0; i < 5; ++i) {
    out[4 * i + 0] = static_cast<uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
}

std::vector<uint8_t> Sha1::Finish() {
  std::vector<uint8_t> digest(kDigestSize);
  FinishInto(digest.data());
  return digest;
}

std::vector<uint8_t> Sha1::Hash(std::string_view data) {
  Sha1 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

void Sha1::ProcessBlock(const uint8_t block[64]) {
  Compress(h_, block);
}

void Sha1::Compress(uint32_t h[5], const uint8_t block[64]) {
  crypto_internal::Sha1Compress(h, block);
}

namespace crypto_internal {

void Sha1Compress(uint32_t h[5], const uint8_t block[64]) {
  // Message schedule kept as a 16-word ring buffer and fused into the
  // rounds; the rounds split into their four fixed-(f, k) phases so the
  // round body carries no per-iteration branching. Both transformations
  // preserve FIPS 180-1 bit for bit (the vector tests pin that down) and
  // together roughly halve the cost of this dependency-bound compress.
  uint32_t w[16];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }

  uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
  auto schedule = [&w](int i) {
    const uint32_t next = Rotl32(w[(i + 13) & 15] ^ w[(i + 8) & 15] ^
                                     w[(i + 2) & 15] ^ w[i & 15],
                                 1);
    w[i & 15] = next;
    return next;
  };
  auto round = [&](uint32_t f, uint32_t k, uint32_t wi) {
    const uint32_t tmp = Rotl32(a, 5) + f + e + k + wi;
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = tmp;
  };
  for (int i = 0; i < 16; ++i) {
    round((b & c) | (~b & d), 0x5A827999, w[i]);
  }
  for (int i = 16; i < 20; ++i) {
    round((b & c) | (~b & d), 0x5A827999, schedule(i));
  }
  for (int i = 20; i < 40; ++i) {
    round(b ^ c ^ d, 0x6ED9EBA1, schedule(i));
  }
  for (int i = 40; i < 60; ++i) {
    round((b & c) | (b & d) | (c & d), 0x8F1BBCDC, schedule(i));
  }
  for (int i = 60; i < 80; ++i) {
    round(b ^ c ^ d, 0xCA62C1D6, schedule(i));
  }
  h[0] += a;
  h[1] += b;
  h[2] += c;
  h[3] += d;
  h[4] += e;
}

}  // namespace crypto_internal

void Sha1::HashSingleBlock(const uint8_t* data, size_t len, uint8_t* out) {
  // One padded block holds at most 55 message bytes.
  uint8_t block[64] = {0};
  std::memcpy(block, data, len);
  block[len] = 0x80;
  const uint64_t bit_len = static_cast<uint64_t>(len) * 8;
  for (int i = 0; i < 8; ++i) {
    block[56 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  uint32_t h[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                   0xC3D2E1F0};
  Compress(h, block);
  for (int i = 0; i < 5; ++i) {
    out[4 * i + 0] = static_cast<uint8_t>(h[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(h[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(h[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(h[i]);
  }
}

}  // namespace privmark
