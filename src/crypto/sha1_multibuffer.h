// Multi-buffer SHA-1: batched hashing of independent short messages.
//
// The watermarking hot loops (Eq. (5) tuple selection, Fig. 9 position
// hashing, registry-scale fingerprint tallies) hash millions of *independent*
// few-dozen-byte messages. A single SHA-1 compression is latency-bound — its
// 80 rounds form one dependency chain — so hashing messages one at a time
// leaves most of the core idle. This kernel compresses 4–8 messages in
// interleaved lanes instead: the portable backend is a plain ILP-friendly
// unrolled 4-lane loop (elementwise across lanes, autovectorizable), and on
// x86-64 runtime dispatch upgrades to explicit SSE2 4-lane or AVX2 8-lane
// vector code (one 32-bit lane element per message). AArch64 gets a NEON
// 4-lane backend. Lane loads go through memcpy — no type-punned casts — so
// the kernel is exactly as alignment-clean as the scalar path (UBSan-checked
// in CI).
//
// Digests are byte-identical to Sha1::Hash for every backend, lane count,
// and message length (including empty and multi-block messages): batching
// changes throughput only, never values. The boundary suite in
// tests/crypto/sha1_multibuffer_test.cc pins that down per backend.

#ifndef PRIVMARK_CRYPTO_SHA1_MULTIBUFFER_H_
#define PRIVMARK_CRYPTO_SHA1_MULTIBUFFER_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace privmark {

/// \brief Batched SHA-1 over independent messages.
class Sha1MultiBuffer {
 public:
  /// Widest lane count any backend uses (AVX2).
  static constexpr size_t kMaxLanes = 8;
  static constexpr size_t kDigestSize = 20;

  /// \brief Name of the active backend: "avx2", "sse2", "neon", or
  /// "portable".
  static const char* Backend();

  /// \brief Lane width of the active backend (8 for AVX2, else 4).
  /// Callers that size their own batches get full lanes by using a
  /// multiple of this.
  static size_t PreferredLanes();

  /// \brief Hashes `n` independent messages of arbitrary (and mixed)
  /// lengths; writes message i's 20-byte digest at out + kDigestSize * i.
  /// Internally processes full lane groups through the active backend and
  /// any tail scalarly. Byte-identical to Sha1::Hash per message.
  static void Hash(const std::string_view* messages, size_t n, uint8_t* out);

  /// \brief Backends compiled into this binary and usable on this CPU, in
  /// preference order (the first is the auto-selected one).
  static std::vector<const char*> AvailableBackends();

  /// \brief Test/bench hook: pins the backend by name until the next call.
  /// nullptr or "auto" restores automatic selection. Returns false (and
  /// changes nothing) for an unknown or unavailable name. Not meant for
  /// concurrent use with in-flight Hash() calls.
  static bool ForceBackend(const char* name);
};

}  // namespace privmark

#endif  // PRIVMARK_CRYPTO_SHA1_MULTIBUFFER_H_
