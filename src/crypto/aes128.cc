#include "crypto/aes128.h"

#include <cstring>

#include "common/strings.h"
#include "crypto/sha1.h"

namespace privmark {

namespace {

// Forward S-box (FIPS 197 Fig. 7).
constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

// Inverse S-box.
constexpr uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

// Multiplication by x in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1
// (the "xtime" primitive). Branch-free; all MixColumns coefficients (2, 3,
// 9, 11, 13, 14) decompose into xtime chains, so no generic GF multiplier
// is needed.
inline uint8_t XTime(uint8_t a) {
  return static_cast<uint8_t>((a << 1) ^ ((a >> 7) * 0x1b));
}

constexpr size_t kChunk = 15;  // plaintext bytes per block (1 byte header)

}  // namespace

Aes128::Aes128(const std::array<uint8_t, kKeySize>& key) {
  // Key expansion (FIPS 197 Sec. 5.2), word-oriented.
  std::memcpy(round_keys_.data(), key.data(), kKeySize);
  for (int i = 4; i < 4 * (kRounds + 1); ++i) {
    uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + 4 * (i - 1), 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      const uint8_t t0 = temp[0];
      temp[0] = static_cast<uint8_t>(kSbox[temp[1]] ^ kRcon[i / 4]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    }
    for (int b = 0; b < 4; ++b) {
      round_keys_[4 * i + b] =
          round_keys_[4 * (i - 4) + b] ^ temp[b];
    }
  }
}

Aes128 Aes128::FromPassphrase(const std::string& passphrase) {
  const std::vector<uint8_t> digest = Sha1::Hash("privmark-aes:" + passphrase);
  std::array<uint8_t, kKeySize> key;
  std::memcpy(key.data(), digest.data(), kKeySize);
  return Aes128(key);
}

void Aes128::EncryptBlock(uint8_t block[kBlockSize]) const {
  auto add_round_key = [&](int round) {
    for (size_t i = 0; i < kBlockSize; ++i) {
      block[i] ^= round_keys_[round * kBlockSize + i];
    }
  };
  auto sub_bytes = [&] {
    for (size_t i = 0; i < kBlockSize; ++i) block[i] = kSbox[block[i]];
  };
  auto shift_rows = [&] {
    // State is column-major: byte (r, c) = block[4*c + r].
    uint8_t tmp[kBlockSize];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        tmp[4 * c + r] = block[4 * ((c + r) % 4) + r];
      }
    }
    std::memcpy(block, tmp, kBlockSize);
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      uint8_t* col = block + 4 * c;
      const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      // GfMul(a, 2) = XTime(a), GfMul(a, 3) = XTime(a) ^ a.
      col[0] = XTime(a0) ^ (XTime(a1) ^ a1) ^ a2 ^ a3;
      col[1] = a0 ^ XTime(a1) ^ (XTime(a2) ^ a2) ^ a3;
      col[2] = a0 ^ a1 ^ XTime(a2) ^ (XTime(a3) ^ a3);
      col[3] = (XTime(a0) ^ a0) ^ a1 ^ a2 ^ XTime(a3);
    }
  };

  add_round_key(0);
  for (int round = 1; round < kRounds; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(kRounds);
}

void Aes128::DecryptBlock(uint8_t block[kBlockSize]) const {
  auto add_round_key = [&](int round) {
    for (size_t i = 0; i < kBlockSize; ++i) {
      block[i] ^= round_keys_[round * kBlockSize + i];
    }
  };
  auto inv_sub_bytes = [&] {
    for (size_t i = 0; i < kBlockSize; ++i) block[i] = kInvSbox[block[i]];
  };
  auto inv_shift_rows = [&] {
    uint8_t tmp[kBlockSize];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        tmp[4 * ((c + r) % 4) + r] = block[4 * c + r];
      }
    }
    std::memcpy(block, tmp, kBlockSize);
  };
  auto inv_mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      uint8_t* col = block + 4 * c;
      const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      // x1 = 2a, x2 = 4a, x3 = 8a; 9 = 8+1, 11 = 8+2+1, 13 = 8+4+1,
      // 14 = 8+4+2 — the standard xtime decomposition of InvMixColumns.
      auto mul = [](uint8_t a, uint8_t* m9, uint8_t* m11, uint8_t* m13,
                    uint8_t* m14) {
        const uint8_t x1 = XTime(a);
        const uint8_t x2 = XTime(x1);
        const uint8_t x3 = XTime(x2);
        *m9 = x3 ^ a;
        *m11 = x3 ^ x1 ^ a;
        *m13 = x3 ^ x2 ^ a;
        *m14 = x3 ^ x2 ^ x1;
      };
      uint8_t a0_9, a0_11, a0_13, a0_14;
      uint8_t a1_9, a1_11, a1_13, a1_14;
      uint8_t a2_9, a2_11, a2_13, a2_14;
      uint8_t a3_9, a3_11, a3_13, a3_14;
      mul(a0, &a0_9, &a0_11, &a0_13, &a0_14);
      mul(a1, &a1_9, &a1_11, &a1_13, &a1_14);
      mul(a2, &a2_9, &a2_11, &a2_13, &a2_14);
      mul(a3, &a3_9, &a3_11, &a3_13, &a3_14);
      col[0] = a0_14 ^ a1_11 ^ a2_13 ^ a3_9;
      col[1] = a0_9 ^ a1_14 ^ a2_11 ^ a3_13;
      col[2] = a0_13 ^ a1_9 ^ a2_14 ^ a3_11;
      col[3] = a0_11 ^ a1_13 ^ a2_9 ^ a3_14;
    }
  };

  add_round_key(kRounds);
  for (int round = kRounds - 1; round >= 1; --round) {
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_shift_rows();
  inv_sub_bytes();
  add_round_key(0);
}

Result<std::string> Aes128::EncryptValue(const std::string& value) const {
  if (value.size() > 255) {
    return Status::InvalidArgument(
        "EncryptValue: value longer than 255 bytes");
  }
  // Chunk the plaintext into 15-byte pieces; each block stores
  // [remaining-length byte][15 bytes of payload, zero padded]. The length
  // byte makes the overall mapping injective. Hex digits are written
  // straight into the output string (same encoding as HexEncode) — one
  // allocation per value instead of three.
  static constexpr char kHex[] = "0123456789abcdef";
  const size_t blocks = value.size() / kChunk + 1;
  std::string out;
  out.reserve(blocks * kBlockSize * 2);
  size_t offset = 0;
  size_t remaining = value.size();
  do {
    uint8_t block[kBlockSize] = {0};
    block[0] = static_cast<uint8_t>(remaining);
    const size_t take = std::min(kChunk, value.size() - offset);
    std::memcpy(block + 1, value.data() + offset, take);
    EncryptBlock(block);
    for (size_t i = 0; i < kBlockSize; ++i) {
      out.push_back(kHex[block[i] >> 4]);
      out.push_back(kHex[block[i] & 0xF]);
    }
    offset += take;
    remaining = (remaining > kChunk) ? remaining - kChunk : 0;
  } while (remaining > 0);
  return out;
}

Result<std::string> Aes128::DecryptValue(
    const std::string& hex_ciphertext) const {
  PRIVMARK_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                            HexDecode(hex_ciphertext));
  if (bytes.empty() || bytes.size() % kBlockSize != 0) {
    return Status::InvalidArgument(
        "DecryptValue: ciphertext length not a positive multiple of 16");
  }
  std::string value;
  size_t expected_remaining = 0;
  for (size_t b = 0; b < bytes.size(); b += kBlockSize) {
    uint8_t block[kBlockSize];
    std::memcpy(block, bytes.data() + b, kBlockSize);
    DecryptBlock(block);
    const size_t remaining = block[0];
    if (b == 0) {
      expected_remaining = remaining;
    } else if (remaining != expected_remaining) {
      return Status::VerificationFailed(
          "DecryptValue: inconsistent chunk headers (wrong key?)");
    }
    const size_t take = std::min(kChunk, remaining);
    value.append(reinterpret_cast<char*>(block + 1), take);
    expected_remaining = (remaining > kChunk) ? remaining - kChunk : 0;
  }
  if (expected_remaining != 0) {
    return Status::VerificationFailed(
        "DecryptValue: truncated ciphertext (wrong key?)");
  }
  return value;
}

}  // namespace privmark
