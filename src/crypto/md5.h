// MD5 (RFC 1321), implemented from scratch.
//
// Provided because the paper names "MD5 or SHA1" as the hash H() used for
// tuple selection and permutation (Eq. 5). Selectable via HashAlgorithm.
//
// MD5 is cryptographically broken for collision resistance; as in the paper
// it is only used as a keyed selector.

#ifndef PRIVMARK_CRYPTO_MD5_H_
#define PRIVMARK_CRYPTO_MD5_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace privmark {

/// \brief Incremental MD5 hasher.
class Md5 {
 public:
  static constexpr size_t kDigestSize = 16;

  Md5();

  void Update(const uint8_t* data, size_t len);
  /// \brief string_view overload: accepts std::string, literals, and
  /// substrings alike without materializing a temporary string.
  void Update(std::string_view data);

  /// \brief Finishes and returns the 16-byte digest.
  std::vector<uint8_t> Finish();

  /// \brief Allocation-free Finish(): writes the digest into `out`
  /// (kDigestSize bytes). Same reuse rule as Finish().
  void FinishInto(uint8_t* out);

  void Reset();

  static std::vector<uint8_t> Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[4];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace privmark

#endif  // PRIVMARK_CRYPTO_MD5_H_
