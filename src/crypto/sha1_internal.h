// Shared internals of the SHA-1 implementations. Not part of the public
// crypto API: the multi-buffer kernel (sha1_multibuffer.cc and its SIMD
// translation units) borrows the scalar compression function for lanes
// that fall out of lock-step (mixed block counts in one batch), and both
// sides must agree on the exact FIPS 180-1 compression the test vectors
// pin down.

#ifndef PRIVMARK_CRYPTO_SHA1_INTERNAL_H_
#define PRIVMARK_CRYPTO_SHA1_INTERNAL_H_

#include <cstdint>

namespace privmark {
namespace crypto_internal {

/// \brief The SHA-1 initial chaining values H0..H4 (FIPS 180-1 Sec. 7).
inline constexpr uint32_t kSha1Init[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE,
                                          0x10325476, 0xC3D2E1F0};

/// \brief One FIPS 180-1 compression of `block` into chaining state `h`.
/// Defined in sha1.cc (the same code Sha1 itself runs).
void Sha1Compress(uint32_t h[5], const uint8_t block[64]);

}  // namespace crypto_internal
}  // namespace privmark

#endif  // PRIVMARK_CRYPTO_SHA1_INTERNAL_H_
