// Attack lab: run the full Sec. 5.2 / Sec. 7.2 attack suite against one
// protected table and print the mark-loss scoreboard — a compact tour of
// the robustness story (and of the one attack, generalization, that
// separates the hierarchical scheme from the single-level baseline) —
// followed by a collusion scenario: two recipients pool rows from their
// differently-keyed copies, and a registry scan attributes the leak to
// both.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "attack/attacks.h"
#include "core/framework.h"
#include "common/text_table.h"
#include "common/strings.h"
#include "datagen/medical_data.h"
#include "watermark/fingerprint.h"
#include "watermark/key_registry.h"

using namespace privmark;  // NOLINT — example brevity

int main() {
  MedicalDataSpec spec;
  spec.num_rows = 20000;
  auto dataset = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  FrameworkConfig config;
  config.binning.k = 20;
  config.binning.enforce_joint = false;
  config.key = {"lab-k1", "lab-k2", /*eta=*/50};
  auto metrics = std::move(
      MetricsFromDepthCuts(dataset.trees(), {2, 1, 2, 1, 1})).ValueOrDie();
  ProtectionFramework framework(std::move(metrics), config);
  auto outcome = std::move(framework.Protect(dataset.table)).ValueOrDie();
  HierarchicalWatermarker watermarker =
      framework.MakeWatermarker(outcome.binning);

  struct Attack {
    std::string name;
    std::function<void(Table*, Random*)> run;
  };
  const auto& qi = outcome.binning.qi_columns;
  const auto& maximal = framework.metrics().maximal;
  const auto& ultimate = outcome.binning.ultimate;
  std::vector<Attack> attacks = {
      {"none (clean)", [](Table*, Random*) {}},
      {"alteration 25%",
       [&](Table* t, Random* rng) {
         (void)*SubsetAlterationAttack(t, qi, 0.25, rng);
       }},
      {"alteration 75%",
       [&](Table* t, Random* rng) {
         (void)*SubsetAlterationAttack(t, qi, 0.75, rng);
       }},
      {"addition 50%",
       [&](Table* t, Random* rng) {
         (void)*SubsetAdditionAttack(t, 0.50, rng);
       }},
      {"deletion 50%",
       [&](Table* t, Random* rng) {
         (void)*SubsetDeletionAttack(t, 0.50, rng);
       }},
      {"deletion 90%",
       [&](Table* t, Random* rng) {
         (void)*SubsetDeletionAttack(t, 0.90, rng);
       }},
      {"generalization (1 level)",
       [&](Table* t, Random*) {
         (void)*GeneralizationAttack(t, qi, maximal, 1);
       }},
      {"sibling swap 100%",
       [&](Table* t, Random* rng) {
         (void)*SiblingSwapAttack(t, qi, ultimate, 1.0, rng);
       }},
      {"combined (del 30% + add 30% + alter 30%)",
       [&](Table* t, Random* rng) {
         (void)*SubsetDeletionAttack(t, 0.3, rng);
         (void)*SubsetAdditionAttack(t, 0.3, rng);
         (void)*SubsetAlterationAttack(t, qi, 0.3, rng);
       }},
  };

  TextTable scoreboard;
  scoreboard.SetHeader({"attack", "rows_after", "mark_loss_pct", "verdict"});
  for (const Attack& attack : attacks) {
    Table attacked = outcome.watermarked.Clone();
    Random rng(2718);
    attack.run(&attacked, &rng);
    auto detection = std::move(
        watermarker.Detect(attacked, outcome.mark.size(),
                           outcome.embed.wmd_size)).ValueOrDie();
    const double loss =
        *StrictMarkLoss(outcome.mark, detection) * 100.0;
    scoreboard.AddRow({attack.name, std::to_string(attacked.num_rows()),
                       FormatDouble(loss, 1),
                       loss <= 20.0 ? "mark survives" : "mark damaged"});
  }
  std::printf("%s", scoreboard.ToAligned().c_str());
  std::printf("\n(k-anonymity after watermarking: smallest per-attribute "
              "bin = %zu, k = %zu)\n",
              [&] {
                size_t min_bin = outcome.watermarked.num_rows();
                for (size_t col : qi) {
                  min_bin = std::min(min_bin,
                                     outcome.watermarked.MinBinSize({col}));
                }
                return min_bin;
              }(),
              config.binning.k);

  // ---- Collusion: two recipients pool rows from their keyed copies ----
  //
  // Each recipient's copy of the same table is embedded under its own
  // registry key (fixed mark copies, so every copy shares one wmd size),
  // and the leaked table interleaves rows from both. A registry scan must
  // rank both contributors above the threshold — flagging the collusion —
  // while decoy keys stay clear.
  Random keygen(424242);
  KeyRegistry registry;
  (void)registry.Add(GenerateKey("clinic-east", 50, &keygen));
  (void)registry.Add(GenerateKey("clinic-west", 50, &keygen));
  (void)registry.Add(GenerateKey("decoy-a", 50, &keygen));
  (void)registry.Add(GenerateKey("decoy-b", 50, &keygen));
  (void)registry.Add(GenerateKey("decoy-c", 50, &keygen));

  auto recipient_config = [&](const NamedKey& named) {
    FrameworkConfig recipient = config;
    recipient.key = named.key;
    recipient.key_id = named.name;
    recipient.copies = 4;
    return recipient;
  };
  auto depth_metrics = [&] {
    return std::move(
        MetricsFromDepthCuts(dataset.trees(), {2, 1, 2, 1, 1})).ValueOrDie();
  };
  ProtectionFramework east_fw(depth_metrics(),
                              recipient_config(*registry.Find("clinic-east")));
  auto east = std::move(east_fw.Protect(dataset.table)).ValueOrDie();
  ProtectionFramework west_fw(depth_metrics(),
                              recipient_config(*registry.Find("clinic-west")));
  auto west = std::move(west_fw.Protect(dataset.table)).ValueOrDie();

  Table mixed(east.watermarked.schema());
  for (size_t r = 0; r < east.watermarked.num_rows(); ++r) {
    const auto& source = (r % 2 == 0) ? east.watermarked : west.watermarked;
    (void)mixed.AppendRow(source.row(r));
  }

  // The scan needs only the published structure (labels + maximal sets);
  // candidate keys all come from the registry.
  HierarchicalWatermarker scanner = east_fw.MakeWatermarker(east.binning);
  FingerprintConfig scan;
  scan.wm_size = east.mark.size();
  scan.wmd_size = east.embed.wmd_size;
  scan.expected_mark = east.mark;  // owner-derived, identical per recipient
  auto attribution = std::move(
      ScanForFingerprints(scanner, mixed, registry, scan)).ValueOrDie();

  std::printf("\ncollusion scenario: %zu-row mix (even rows clinic-east, "
              "odd clinic-west), %zu candidate keys, wmd %zu\n",
              mixed.num_rows(), registry.size(), scan.wmd_size);
  TextTable suspects;
  suspects.SetHeader({"rank", "key", "score", "p_value", "verdict"});
  for (size_t i = 0; i < attribution.ranking.size(); ++i) {
    const KeyVerdict& v = attribution.verdicts[attribution.ranking[i]];
    char p_text[32];
    std::snprintf(p_text, sizeof(p_text), "%.3e", v.p_value);
    suspects.AddRow({std::to_string(i + 1), v.key_name,
                     FormatDouble(v.score, 4), p_text,
                     v.detected ? "DETECTED" : "clear"});
  }
  std::printf("%s", suspects.ToAligned().c_str());
  std::printf("collusion flag: %s (%zu of %zu keys above threshold %.2f)\n",
              attribution.collusion ? "yes" : "no",
              attribution.keys_detected, attribution.verdicts.size(),
              scan.match_threshold);
  return 0;
}
