// Attack lab: run the full Sec. 5.2 / Sec. 7.2 attack suite against one
// protected table and print the mark-loss scoreboard — a compact tour of
// the robustness story (and of the one attack, generalization, that
// separates the hierarchical scheme from the single-level baseline).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "attack/attacks.h"
#include "core/framework.h"
#include "common/text_table.h"
#include "common/strings.h"
#include "datagen/medical_data.h"

using namespace privmark;  // NOLINT — example brevity

int main() {
  MedicalDataSpec spec;
  spec.num_rows = 20000;
  auto dataset = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  FrameworkConfig config;
  config.binning.k = 20;
  config.binning.enforce_joint = false;
  config.key = {"lab-k1", "lab-k2", /*eta=*/50};
  auto metrics = std::move(
      MetricsFromDepthCuts(dataset.trees(), {2, 1, 2, 1, 1})).ValueOrDie();
  ProtectionFramework framework(std::move(metrics), config);
  auto outcome = std::move(framework.Protect(dataset.table)).ValueOrDie();
  HierarchicalWatermarker watermarker =
      framework.MakeWatermarker(outcome.binning);

  struct Attack {
    std::string name;
    std::function<void(Table*, Random*)> run;
  };
  const auto& qi = outcome.binning.qi_columns;
  const auto& maximal = framework.metrics().maximal;
  const auto& ultimate = outcome.binning.ultimate;
  std::vector<Attack> attacks = {
      {"none (clean)", [](Table*, Random*) {}},
      {"alteration 25%",
       [&](Table* t, Random* rng) {
         (void)*SubsetAlterationAttack(t, qi, 0.25, rng);
       }},
      {"alteration 75%",
       [&](Table* t, Random* rng) {
         (void)*SubsetAlterationAttack(t, qi, 0.75, rng);
       }},
      {"addition 50%",
       [&](Table* t, Random* rng) {
         (void)*SubsetAdditionAttack(t, 0.50, rng);
       }},
      {"deletion 50%",
       [&](Table* t, Random* rng) {
         (void)*SubsetDeletionAttack(t, 0.50, rng);
       }},
      {"deletion 90%",
       [&](Table* t, Random* rng) {
         (void)*SubsetDeletionAttack(t, 0.90, rng);
       }},
      {"generalization (1 level)",
       [&](Table* t, Random*) {
         (void)*GeneralizationAttack(t, qi, maximal, 1);
       }},
      {"sibling swap 100%",
       [&](Table* t, Random* rng) {
         (void)*SiblingSwapAttack(t, qi, ultimate, 1.0, rng);
       }},
      {"combined (del 30% + add 30% + alter 30%)",
       [&](Table* t, Random* rng) {
         (void)*SubsetDeletionAttack(t, 0.3, rng);
         (void)*SubsetAdditionAttack(t, 0.3, rng);
         (void)*SubsetAlterationAttack(t, qi, 0.3, rng);
       }},
  };

  TextTable scoreboard;
  scoreboard.SetHeader({"attack", "rows_after", "mark_loss_pct", "verdict"});
  for (const Attack& attack : attacks) {
    Table attacked = outcome.watermarked.Clone();
    Random rng(2718);
    attack.run(&attacked, &rng);
    auto detection = std::move(
        watermarker.Detect(attacked, outcome.mark.size(),
                           outcome.embed.wmd_size)).ValueOrDie();
    const double loss =
        *StrictMarkLoss(outcome.mark, detection) * 100.0;
    scoreboard.AddRow({attack.name, std::to_string(attacked.num_rows()),
                       FormatDouble(loss, 1),
                       loss <= 20.0 ? "mark survives" : "mark damaged"});
  }
  std::printf("%s", scoreboard.ToAligned().c_str());
  std::printf("\n(k-anonymity after watermarking: smallest per-attribute "
              "bin = %zu, k = %zu)\n",
              [&] {
                size_t min_bin = outcome.watermarked.num_rows();
                for (size_t col : qi) {
                  min_bin = std::min(min_bin,
                                     outcome.watermarked.MinBinSize({col}));
                }
                return min_bin;
              }(),
              config.binning.k);
  return 0;
}
