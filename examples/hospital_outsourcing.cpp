// Scenario: a hospital outsources clinical records to a research
// institute (the paper's Sec. 1 motivating workload).
//
// The example walks through the privacy side of the framework:
//   - the re-identification (linking) risk of the raw table
//   - binning to k-anonymity under usage metrics
//   - what the research institute actually receives (CSV export)
//   - the post-hoc proof that no quasi-identifier combination can be
//     narrowed below k individuals

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/framework.h"
#include "datagen/medical_data.h"
#include "metrics/privacy.h"
#include "relation/csv.h"

using namespace privmark;  // NOLINT — example brevity

namespace {

// A linking adversary who knows a target's age, zip and doctor (say from
// voter rolls plus casual knowledge): how many records match?
size_t MatchingRecords(const Table& table, const Value& age,
                       const Value& zip, const Value& doctor) {
  size_t matches = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (table.at(r, 1) == age && table.at(r, 2) == zip &&
        table.at(r, 3) == doctor) {
      ++matches;
    }
  }
  return matches;
}

}  // namespace

int main() {
  MedicalDataSpec spec;
  spec.num_rows = 20000;
  auto dataset = std::move(GenerateMedicalDataset(spec)).ValueOrDie();

  // --- The threat: linking on the raw table -------------------------------
  // Take an arbitrary patient; the adversary knows age+zip+doctor.
  const Value target_age = dataset.table.at(7, 1);
  const Value target_zip = dataset.table.at(7, 2);
  const Value target_doctor = dataset.table.at(7, 3);
  const size_t raw_matches =
      MatchingRecords(dataset.table, target_age, target_zip, target_doctor);
  std::printf("raw table: a (age, zip, doctor) linking query matches %zu "
              "record(s)%s\n",
              raw_matches,
              raw_matches <= 3 ? "  <-- re-identification risk" : "");

  // --- Protection ----------------------------------------------------------
  FrameworkConfig config;
  config.binning.k = 20;
  config.binning.enforce_joint = true;  // defeat multi-attribute linking
  config.binning.encryption_passphrase = "hospital-vault-passphrase";
  config.key = {"hospital-k1", "hospital-k2", /*eta=*/75};
  // Joint 5-column k-anonymity needs generalization headroom: metrics
  // allow up to the tree roots here (Sec. 4: the tradeoff between privacy
  // and information loss).
  ProtectionFramework framework(UnconstrainedMetrics(dataset.trees()),
                                config);
  auto outcome = std::move(framework.Protect(dataset.table)).ValueOrDie();
  std::printf("binned + watermarked %zu tuples (info loss %.1f%%)\n",
              outcome.watermarked.num_rows(),
              outcome.binning.multi_normalized_loss * 100);

  // --- What the institute receives -----------------------------------------
  const std::string path = "/tmp/privmark_outsourced.csv";
  if (auto st = WriteTableCsv(outcome.watermarked, path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("outsourced table written to %s\n", path.c_str());
  std::printf("first outsourced record: ssn=%.24s... age=%s zip=%s\n",
              outcome.watermarked.at(0, 0).ToString().c_str(),
              outcome.watermarked.at(0, 1).ToString().c_str(),
              outcome.watermarked.at(0, 2).ToString().c_str());

  // --- The guarantee --------------------------------------------------------
  // Every combination of all five quasi-identifiers matches >= k records.
  const auto qi = outcome.binning.qi_columns;
  const size_t min_bin = outcome.watermarked.MinBinSize(qi);
  std::printf("smallest joint quasi-identifier bin: %zu (k = %zu) -> %s\n",
              min_bin, config.binning.k,
              min_bin >= config.binning.k ? "k-anonymous" : "VIOLATION");

  // Quantified: before vs after privacy profile.
  auto raw_privacy =
      std::move(EvaluatePrivacy(dataset.table, qi)).ValueOrDie();
  auto safe_privacy =
      std::move(EvaluatePrivacy(outcome.watermarked, qi)).ValueOrDie();
  std::printf("re-identification risk (prosecutor model): raw avg %.3f / "
              "max %.2f, protected avg %.5f / max %.3f\n",
              raw_privacy.average_risk, raw_privacy.max_risk,
              safe_privacy.average_risk, safe_privacy.max_risk);
  std::printf("unique records: raw %zu -> protected %zu\n",
              raw_privacy.unique_records, safe_privacy.unique_records);

  // The same linking query now returns a crowd, not a person. The
  // adversary must first generalize their external knowledge the same way.
  std::map<std::vector<Value>, size_t> bins;
  for (size_t r = 0; r < outcome.watermarked.num_rows(); ++r) {
    bins[{outcome.watermarked.at(r, 1), outcome.watermarked.at(r, 2),
          outcome.watermarked.at(r, 3)}]++;
  }
  size_t smallest = outcome.watermarked.num_rows();
  for (const auto& [key, n] : bins) smallest = std::min(smallest, n);
  std::printf("smallest (age, zip, doctor) linking crowd after protection: "
              "%zu record(s)\n",
              smallest);

  // Usability: the institute can still run aggregate epidemiology, e.g.
  // symptom-chapter frequencies.
  std::map<std::string, size_t> by_symptom;
  for (size_t r = 0; r < outcome.watermarked.num_rows(); ++r) {
    ++by_symptom[outcome.watermarked.at(r, 4).ToString()];
  }
  std::printf("symptom groups available for research: %zu\n",
              by_symptom.size());
  return 0;
}
