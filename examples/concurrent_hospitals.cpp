// Scenario: the paper's outsourcing story at fleet scale — several
// hospitals publish protected admission streams to one research
// institute at the same time, through one PrivmarkService.
//
// Each hospital is a named session: its batches serialize in arrival
// order (so its epoch output is byte-identical to running the stream
// alone), while different hospitals' requests execute concurrently on
// the service's one shared worker pool, gated by the admission
// controller. Every hospital uses its own secret keys and its own data;
// the service only multiplexes compute.
//
// The demo drives three hospitals from three submitter threads, then
// audits every stream: the emitted output must be k-anonymous per
// attribute and every epoch's ownership mark must be recoverable from
// the concatenation the institute received. Exits non-zero on any
// failure, so this doubles as a CTest smoke test.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "datagen/medical_data.h"
#include "service/service.h"

using namespace privmark;  // NOLINT — example brevity

namespace {

constexpr size_t kHospitals = 3;
constexpr size_t kRowsPerHospital = 2400;
constexpr size_t kBatchRows = 600;
constexpr size_t kK = 10;

struct Hospital {
  std::string name;
  MedicalDataset dataset;
  UsageMetrics metrics;
  FrameworkConfig config;
  std::vector<ServiceFuture> futures;  // submission order
  Table emitted;
  std::vector<EpochRecord> epochs;
};

}  // namespace

int main() {
  // Distinct data and keys per hospital (different seeds -> different
  // admissions, marks, and statistics).
  std::vector<Hospital> hospitals(kHospitals);
  for (size_t h = 0; h < kHospitals; ++h) {
    Hospital& hospital = hospitals[h];
    hospital.name = "hospital-" + std::to_string(h);
    MedicalDataSpec spec;
    spec.num_rows = kRowsPerHospital;
    spec.seed = 1000 + h;
    hospital.dataset = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
    hospital.metrics =
        std::move(MetricsFromDepthCuts(hospital.dataset.trees(),
                                       {2, 1, 2, 1, 1}))
            .ValueOrDie();
    hospital.config.binning.k = kK;
    hospital.config.binning.enforce_joint = false;
    hospital.config.binning.encryption_passphrase =
        hospital.name + "-vault";
    hospital.config.binning.num_threads = 0;  // ask for all of the cap
    hospital.config.watermark.num_threads = 0;
    // Sec. 6 slack: without it the watermark's sibling permutations can
    // push a bin below k (exactly what the audit below checks). A fixed
    // small copy count keeps |wmd| — and with it the epsilon — modest at
    // 2400 rows; bandwidth-filling copies would demand more slack than
    // the smaller ontology subtrees can give.
    hospital.config.auto_epsilon = true;
    hospital.config.copies = 4;
    hospital.config.key = {hospital.name + "-k1", hospital.name + "-k2",
                           /*eta=*/10};
    hospital.emitted = Table(hospital.dataset.table.schema());
  }

  ServiceConfig service_config;
  service_config.thread_cap = 0;
  PrivmarkService service(service_config);  // 0 = hardware concurrency
  for (Hospital& hospital : hospitals) {
    auto status = service.OpenSession(hospital.name, hospital.metrics,
                                      hospital.config);
    if (!status.ok()) {
      std::fprintf(stderr, "open %s: %s\n", hospital.name.c_str(),
                   status.ToString().c_str());
      return 1;
    }
  }
  std::printf("service up: %zu sessions, thread cap %zu\n",
              service.num_sessions(), service.thread_cap());

  // --- Concurrent publication: one submitter thread per hospital ----------
  {
    std::vector<std::thread> submitters;
    for (Hospital& hospital : hospitals) {
      submitters.emplace_back([&service, &hospital] {
        const Table& table = hospital.dataset.table;
        for (size_t begin = 0; begin < table.num_rows();
             begin += kBatchRows) {
          hospital.futures.push_back(service.ProtectBatch(
              hospital.name, table.Slice(begin, begin + kBatchRows)));
        }
        hospital.futures.push_back(service.Flush(hospital.name));
      });
    }
    for (std::thread& submitter : submitters) submitter.join();
  }

  // --- Collect each stream's output (futures land in request order) -------
  for (Hospital& hospital : hospitals) {
    for (ServiceFuture& future : hospital.futures) {
      auto result = future.get();
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", hospital.name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      const Table& batch = result->kind == RequestKind::kFlush
                               ? result->epoch.outcome.watermarked
                               : result->ingest.emitted;
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        (void)hospital.emitted.AppendRow(batch.row(r));
      }
    }
    hospital.futures.clear();
    std::printf("%s published %zu protected rows\n", hospital.name.c_str(),
                hospital.emitted.num_rows());
  }

  // --- Audit: privacy of the published copy, ownership of every epoch -----
  int failures = 0;
  for (Hospital& hospital : hospitals) {
    const std::vector<size_t> qi =
        hospital.emitted.schema().QuasiIdentifyingColumns();
    for (size_t c : qi) {
      if (!hospital.emitted.IsKAnonymous({c}, kK)) {
        std::fprintf(stderr, "%s: column %zu lost k-anonymity\n",
                     hospital.name.c_str(), c);
        ++failures;
      }
    }
    hospital.futures.push_back(
        service.Detect(hospital.name, hospital.emitted.Clone()));
    hospital.futures.push_back(service.CloseSession(hospital.name));
  }
  for (Hospital& hospital : hospitals) {
    auto detect = hospital.futures[0].get();
    auto close = hospital.futures[1].get();
    if (!detect.ok() || !close.ok()) {
      std::fprintf(stderr, "%s: audit failed\n", hospital.name.c_str());
      return 1;
    }
    hospital.epochs = close->stats.epochs;
    for (size_t e = 0; e < detect->reports.size(); ++e) {
      const bool match = detect->reports[e].recovered.ToString() ==
                         hospital.epochs[e].mark.ToString();
      std::printf("%s epoch %zu: mark %s\n", hospital.name.c_str(), e,
                  match ? "recovered" : "LOST");
      if (!match) ++failures;
    }
  }
  service.Shutdown();
  if (failures > 0) {
    std::fprintf(stderr, "%d audit failure(s)\n", failures);
    return 1;
  }
  std::printf("all %zu hospitals: privacy held, ownership recovered\n",
              hospitals.size());
  return 0;
}
