// Scenario: data theft and the rightful-ownership dispute (Sec. 5.4).
//
// A data broker ("Mallory") obtains the hospital's outsourced table,
// deletes a chunk of it, pads it with fabricated records, inserts *her
// own* watermark (rightful-ownership Attack 1), and resells it. In court,
// both parties claim the data. The judge runs the paper's dispute
// protocol:
//   1. each claimant presents their statistic v,
//   2. decrypts the identifying column with their key and recomputes v',
//   3. extracts their mark and compares it with F(v).
// Only the hospital passes all three steps.

#include <cstdio>

#include "attack/attacks.h"
#include "core/framework.h"
#include "datagen/medical_data.h"
#include "watermark/ownership.h"

using namespace privmark;  // NOLINT — example brevity

int main() {
  // --- The hospital publishes a protected table ---------------------------
  MedicalDataSpec spec;
  spec.num_rows = 10000;
  auto dataset = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  FrameworkConfig config;
  config.binning.k = 20;
  config.binning.enforce_joint = false;
  config.binning.encryption_passphrase = "hospital-vault";
  config.key = {"hospital-k1", "hospital-k2", /*eta=*/40};
  auto metrics = std::move(
      MetricsFromDepthCuts(dataset.trees(), {2, 1, 2, 1, 1})).ValueOrDie();
  ProtectionFramework framework(std::move(metrics), config);
  auto published = std::move(framework.Protect(dataset.table)).ValueOrDie();
  std::printf("hospital publishes %zu tuples; v = %.2f; mark = %s\n",
              published.watermarked.num_rows(),
              published.identifier_statistic,
              published.mark.ToString().c_str());

  // --- Mallory pirates it ---------------------------------------------------
  Table pirated = published.watermarked.Clone();
  Random rng(666);
  (void)*SubsetDeletionAttack(&pirated, 0.15, &rng);
  (void)*SubsetAdditionAttack(&pirated, 0.10, &rng);
  WatermarkKey mallory_key{"mallory-k1", "mallory-k2", 40};
  HierarchicalWatermarker mallory_marker(
      published.binning.qi_columns,
      *pirated.schema().IdentifyingColumn(), framework.metrics().maximal,
      published.binning.ultimate, mallory_key, WatermarkOptions{});
  const BitVector mallory_mark =
      BitVector::FromString("11001100110011001100").ValueOrDie();
  auto mallory_embed = mallory_marker.Embed(&pirated, mallory_mark);
  std::printf("mallory deletes 15%%, adds 10%%, inserts her own mark, and "
              "resells %zu tuples\n",
              pirated.num_rows());

  // Both marks are now detectable in the pirated table — detection alone
  // cannot settle ownership (the paper's Attack 1).
  HierarchicalWatermarker hospital_marker =
      framework.MakeWatermarker(published.binning);
  auto hospital_det = hospital_marker.Detect(pirated, 20,
                                             published.embed.wmd_size);
  auto mallory_det =
      mallory_marker.Detect(pirated, 20, mallory_embed->wmd_size);
  std::printf("hospital mark loss in pirated table: %.0f%%\n",
              *MarkLossAgainst(published.mark, hospital_det->recovered) *
                  100);
  std::printf("mallory  mark loss in pirated table: %.0f%%\n",
              *MarkLossAgainst(mallory_mark, mallory_det->recovered) * 100);

  // --- The court ------------------------------------------------------------
  OwnershipConfig oc;
  oc.tau = 0.03;
  oc.match_threshold = 0.8;

  std::printf("\n-- dispute: hospital's claim --\n");
  const Aes128 hospital_cipher = Aes128::FromPassphrase("hospital-vault");
  auto hospital_verdict = std::move(
      ResolveDispute(pirated, hospital_marker, hospital_cipher,
                     published.identifier_statistic,
                     published.embed.wmd_size, oc)).ValueOrDie();
  std::printf("statistic consistent: %s (claimed %.2f, recomputed %.2f)\n",
              hospital_verdict.statistic_consistent ? "yes" : "no",
              hospital_verdict.claimed_v, hospital_verdict.recomputed_v);
  std::printf("mark match: %.0f%% (chance probability %.2e)  ->  "
              "ownership %s\n",
              hospital_verdict.mark_match * 100, hospital_verdict.p_value,
              hospital_verdict.ownership_established ? "ESTABLISHED"
                                                     : "rejected");

  std::printf("\n-- dispute: mallory's claim --\n");
  // Mallory cannot decrypt the identifiers; her "statistic" is fabricated
  // and her F(v) cannot be made to match her inserted mark (F is one-way).
  const Aes128 mallory_cipher = Aes128::FromPassphrase("mallory-vault");
  auto mallory_verdict = std::move(
      ResolveDispute(pirated, mallory_marker, mallory_cipher,
                     /*claimed_v=*/123456789.0, mallory_embed->wmd_size, oc))
      .ValueOrDie();
  std::printf("statistic consistent: %s\n",
              mallory_verdict.statistic_consistent ? "yes" : "no");
  std::printf("ownership %s\n", mallory_verdict.ownership_established
                                    ? "ESTABLISHED (bug!)"
                                    : "rejected");

  // And brute-forcing a v whose F(v) matches her mark is hopeless:
  Random forge_rng(13);
  auto forgery = std::move(
      AttemptStatisticForgery(mallory_det->recovered, 20,
                              HashAlgorithm::kSha1, 0.95, 5000, &forge_rng))
      .ValueOrDie();
  std::printf("mallory's offline forgery attempts: %zu trials, best match "
              "%.0f%%, successes at 95%%: %zu\n",
              forgery.trials, forgery.best_match * 100, forgery.successes);
  return 0;
}
