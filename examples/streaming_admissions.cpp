// Scenario: the hospital from hospital_outsourcing, but live — patient
// records arrive as a stream of admissions instead of one frozen table.
//
// An incremental ProtectionSession (core/session.h) replaces the one-shot
// framework: the hospital ingests an initial load, flushes it as epoch 0,
// and then streams admission batches against the live generalization.
// Under the kRebinOnDrift policy the session re-selects generalizations
// whenever the stream has grown the data past the drift threshold, emitting
// each re-binned window as a new epoch with its own ownership mark. The
// research institute receives the concatenation of the epoch outputs;
// detection later runs per epoch (DetectAcrossEpochs) with the hospital's
// secret key.

#include <cstdio>
#include <string>

#include "core/session.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "watermark/hierarchical.h"

using namespace privmark;  // NOLINT — example brevity

namespace {

constexpr size_t kTotalRows = 6000;
constexpr size_t kInitialLoad = 3000;
constexpr size_t kBatchRows = 250;  // one batch of admissions

}  // namespace

int main() {
  MedicalDataSpec spec;
  spec.num_rows = kTotalRows;
  auto dataset = std::move(GenerateMedicalDataset(spec)).ValueOrDie();

  FrameworkConfig config;
  config.binning.k = 10;
  config.binning.enforce_joint = false;  // per-attribute k, paper's setup
  config.binning.encryption_passphrase = "hospital-vault-passphrase";
  config.key = {"hospital-k1", "hospital-k2", /*eta=*/20};
  // Sec. 6: pad k with a conservative epsilon per flush so bins stay >= k
  // even after the watermark permutes cells between sibling nodes.
  config.auto_epsilon = true;
  UsageMetrics metrics =
      std::move(MetricsFromDepthCuts(dataset.trees(), {2, 1, 2, 1, 1}))
          .ValueOrDie();

  SessionConfig session_config;
  session_config.policy = RebinPolicy::kRebinOnDrift;
  session_config.drift_threshold = 0.4;  // re-bin after 40% growth
  ProtectionSession session(metrics, config, session_config);

  // --- Initial load: the backlog of existing records -----------------------
  auto initial = std::move(session.Ingest(
                               dataset.table.Slice(0, kInitialLoad)))
                     .ValueOrDie();
  std::printf("initial load: %zu rows buffered\n", initial.rows_buffered);
  Table outsourced(dataset.table.schema());
  auto append = [&outsourced](const Table& emitted) {
    for (size_t r = 0; r < emitted.num_rows(); ++r) {
      (void)outsourced.AppendRow(emitted.row(r));
    }
  };
  append(std::move(session.Flush()).ValueOrDie().outcome.watermarked);
  std::printf("epoch 0 published: %zu rows\n", outsourced.num_rows());

  // --- The stream: admission batches ---------------------------------------
  for (size_t begin = kInitialLoad; begin < kTotalRows; begin += kBatchRows) {
    auto result =
        std::move(session.Ingest(
                      dataset.table.Slice(begin, begin + kBatchRows)))
            .ValueOrDie();
    if (result.flushed) {
      std::printf("drift threshold crossed -> epoch %zu published: %zu rows "
                  "(%zu suppressed to keep the epoch k-anonymous)\n",
                  result.epoch, result.rows_emitted, result.rows_suppressed);
      append(result.emitted);
    }
  }
  if (session.rows_buffered() > 0) {
    auto tail = std::move(session.Flush()).ValueOrDie();
    std::printf("stream end -> epoch %zu published: %zu rows\n", tail.epoch,
                tail.outcome.watermarked.num_rows());
    append(tail.outcome.watermarked);
  }

  const std::string path = "/tmp/privmark_streamed.csv";
  if (auto st = WriteTableCsv(outsourced, path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("institute received %zu rows across %zu epochs -> %s\n",
              outsourced.num_rows(), session.epochs().size(), path.c_str());

  // --- Per-epoch guarantees -------------------------------------------------
  // Every epoch independently satisfies per-attribute k-anonymity and
  // carries a detectable mark derived from its own identifiers.
  auto reports =
      std::move(session.DetectAcrossEpochs(outsourced)).ValueOrDie();
  bool all_good = true;
  size_t offset = 0;
  for (const EpochRecord& epoch : session.epochs()) {
    Table segment = outsourced.Slice(offset, offset + epoch.rows_emitted);
    offset += epoch.rows_emitted;
    bool k_ok = true;
    for (size_t qi : segment.schema().QuasiIdentifyingColumns()) {
      k_ok = k_ok && segment.IsKAnonymous({qi}, config.binning.k);
    }
    const double loss =
        std::move(StrictMarkLoss(epoch.mark, reports[epoch.epoch]))
            .ValueOrDie();
    std::printf("epoch %zu: %5zu rows, k-anonymous per attribute: %s, "
                "mark loss %.0f%%, v = %.4f\n",
                epoch.epoch, epoch.rows_emitted, k_ok ? "yes" : "NO",
                loss * 100, epoch.identifier_statistic);
    all_good = all_good && k_ok && loss == 0.0;
  }
  std::printf("streaming protection %s\n",
              all_good ? "OK: every epoch private and provably owned"
                       : "FAILED");
  return all_good ? 0 : 1;
}
