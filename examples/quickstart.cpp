// Quickstart: protect a medical table for outsourcing in ~40 lines.
//
//   1. generate (or load) a relation R(ssn, age, zip, doctor, symptom, rx)
//   2. declare usage metrics (maximal generalization nodes per column)
//   3. run the ProtectionFramework: binning (k-anonymity + identifier
//      encryption) followed by hierarchical watermarking
//   4. later, verify the mark with the secret key
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/framework.h"
#include "datagen/medical_data.h"

using namespace privmark;  // NOLINT — example brevity

int main() {
  // 1. A 5000-tuple synthetic clinical data set (deterministic).
  MedicalDataSpec spec;
  spec.num_rows = 5000;
  auto dataset = GenerateMedicalDataset(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // 2. Usage metrics: each column may be generalized at most up to a
  //    natural ontology level (zip regions, ICD-9 chapters, ...).
  auto metrics = MetricsFromDepthCuts(dataset->trees(), {2, 1, 2, 1, 1});
  if (!metrics.ok()) {
    std::fprintf(stderr, "%s\n", metrics.status().ToString().c_str());
    return 1;
  }

  // 3. Configure and run the framework.
  FrameworkConfig config;
  config.binning.k = 20;                    // k-anonymity parameter
  config.binning.enforce_joint = false;     // per-attribute k-anonymity
  config.binning.encryption_passphrase = "hospital-secret";
  config.key = {"selection-key", "permutation-key", /*eta=*/50};
  ProtectionFramework framework(std::move(metrics).ValueOrDie(), config);

  auto outcome = framework.Protect(dataset->table);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("protected %zu tuples\n", outcome->watermarked.num_rows());
  std::printf("  information loss (binning): %.2f%%\n",
              outcome->binning.multi_normalized_loss * 100);
  std::printf("  embedded mark: %s (%zu bits, %zu copies)\n",
              outcome->mark.ToString().c_str(), outcome->mark.size(),
              outcome->embed.copies);
  std::printf("  sample row before: age=%s zip=%s symptom=%s\n",
              dataset->table.at(0, 1).ToString().c_str(),
              dataset->table.at(0, 2).ToString().c_str(),
              dataset->table.at(0, 4).ToString().c_str());
  std::printf("  sample row after:  age=%s zip=%s symptom=%s\n",
              outcome->watermarked.at(0, 1).ToString().c_str(),
              outcome->watermarked.at(0, 2).ToString().c_str(),
              outcome->watermarked.at(0, 4).ToString().c_str());

  // 4. Detection with the secret key recovers the mark exactly.
  HierarchicalWatermarker watermarker =
      framework.MakeWatermarker(outcome->binning);
  auto detection = watermarker.Detect(
      outcome->watermarked, outcome->mark.size(), outcome->embed.wmd_size);
  if (!detection.ok()) {
    std::fprintf(stderr, "%s\n", detection.status().ToString().c_str());
    return 1;
  }
  std::printf("  recovered mark: %s (%s)\n",
              detection->recovered.ToString().c_str(),
              detection->recovered == outcome->mark ? "exact match"
                                                    : "MISMATCH");
  return 0;
}
