// privmark_cli — command-line front end for the full pipeline on CSV
// files with the paper's medical schema R(ssn, age, zip_code, doctor,
// symptom, prescription).
//
//   privmark_cli generate <rows> <out.csv> [--seed=N]
//       synthesize a clinical data set
//
//   privmark_cli protect <in.csv> <out.csv> <manifest.out>
//                [--k=20] [--eta=50] [--pass=...] [--k1=...] [--k2=...]
//                [--joint] [--epsilon] [--threads=N] [--batch-size=N]
//                [--rebin-policy=freeze|drift] [--drift-threshold=0.5]
//       bin to k-anonymity, encrypt identifiers, embed the ownership
//       mark; writes the protected table and the (non-secret) manifest.
//       With --batch-size=N the table is replayed through an incremental
//       ProtectionSession in N-row batches: under `freeze` (the default)
//       all batches accumulate and one flush at the end emits epoch 0 —
//       byte-identical to the single-shot path; under `drift` the first
//       batch is the initial load (flushed immediately) and later batches
//       open new epochs whenever accumulated rows drift past the
//       threshold — each epoch gets its own mark, embed, and manifest
//       (epoch N > 0 is written to <manifest.out>.epochN)
//
//   privmark_cli detect <table.csv> <manifest> [--k1=...] [--k2=...]
//                [--eta=50] [--threads=N]
//       recover the embedded mark with the secret key
//
//   privmark_cli attack <in.csv> <out.csv> <kind> <fraction>
//                [--seed=N] [--manifest=...] [--threads=N]
//       kind: alter | add | delete | generalize (generalize needs the
//       manifest for the maximal nodes and ignores fraction)
//
//   privmark_cli dispute <table.csv> <manifest> <claimed_v>
//                [--pass=...] [--k1=...] [--k2=...] [--eta=50]
//       run the Sec. 5.4 rightful-ownership protocol
//
// --threads=N runs the row-sharded pipeline stages on N workers (0 = one
// per hardware thread); outputs are byte-identical for every N, so the
// flag is purely a throughput knob. Default 1 (serial). The `add` attack
// is the one surface that ignores it: appending rows consumes the random
// stream for every cell, which is inherently sequential.
//
// Secrets (k1/k2/eta, encryption passphrase) are parameters, never stored
// in the manifest.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "attack/attacks.h"
#include "core/framework.h"
#include "core/manifest.h"
#include "core/session.h"
#include "common/strings.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "watermark/ownership.h"

using namespace privmark;  // NOLINT — example brevity

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string Flag(const std::string& name, const std::string& fallback)
      const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  uint64_t FlagU64(const std::string& name, uint64_t fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::stoull(it->second);
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--")) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        args.flags[arg.substr(2)] = "true";
      } else {
        args.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

template <typename T>
T Must(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

WatermarkKey KeyFromArgs(const Args& args) {
  return WatermarkKey{args.Flag("k1", "cli-default-k1"),
                      args.Flag("k2", "cli-default-k2"),
                      args.FlagU64("eta", 50)};
}

int CmdGenerate(const Args& args) {
  if (args.positional.size() != 3) {
    std::fprintf(stderr, "usage: privmark_cli generate <rows> <out.csv>\n");
    return 2;
  }
  MedicalDataSpec spec;
  spec.num_rows = std::stoull(args.positional[1]);
  spec.seed = args.FlagU64("seed", spec.seed);
  MedicalDataset dataset = Must(GenerateMedicalDataset(spec));
  if (auto st = WriteTableCsv(dataset.table, args.positional[2]); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %zu rows to %s\n", dataset.table.num_rows(),
              args.positional[2].c_str());
  return 0;
}

// Replays `input` through an incremental session in `batch_size`-row
// batches; writes the concatenated emitted output plus one manifest per
// epoch. Returns the process exit code.
int ProtectStreaming(const Args& args, const Table& input,
                     const UsageMetrics& metrics,
                     const FrameworkConfig& config, size_t batch_size) {
  SessionConfig session_config;
  const std::string policy = args.Flag("rebin-policy", "freeze");
  if (policy == "drift") {
    session_config.policy = RebinPolicy::kRebinOnDrift;
  } else if (policy != "freeze") {
    std::fprintf(stderr, "unknown --rebin-policy '%s' (freeze|drift)\n",
                 policy.c_str());
    return 2;
  }
  const std::string threshold_text = args.Flag("drift-threshold", "0.5");
  char* threshold_end = nullptr;
  session_config.drift_threshold =
      std::strtod(threshold_text.c_str(), &threshold_end);
  if (threshold_end == threshold_text.c_str() || *threshold_end != '\0' ||
      session_config.drift_threshold <= 0.0) {
    std::fprintf(stderr,
                 "--drift-threshold must be a positive number, got '%s'\n",
                 threshold_text.c_str());
    return 2;
  }

  ProtectionSession session(metrics, config, session_config);
  Table output(input.schema());
  auto append_emitted = [&output](const Table& emitted) {
    for (size_t r = 0; r < emitted.num_rows(); ++r) {
      (void)output.AppendRow(emitted.row(r));
    }
  };

  size_t num_batches = 0;
  for (size_t begin = 0; begin < input.num_rows() || num_batches == 0;
       begin += batch_size) {
    const Table batch = input.Slice(begin, begin + batch_size);
    IngestResult result = Must(session.Ingest(batch));
    ++num_batches;
    if (result.flushed || result.rows_emitted > 0) {
      append_emitted(result.emitted);
    }
    // Drift mode: the first batch is the initial load; flush immediately
    // so later batches stream against a live generalization.
    if (num_batches == 1 &&
        session_config.policy == RebinPolicy::kRebinOnDrift) {
      append_emitted(Must(session.Flush()).outcome.watermarked);
    }
  }
  if (session.rows_buffered() > 0 || !session.frozen()) {
    append_emitted(Must(session.Flush()).outcome.watermarked);
  }

  if (auto st = WriteTableCsv(output, args.positional[2]); !st.ok()) {
    return Fail(st);
  }
  for (const EpochRecord& epoch : session.epochs()) {
    std::string path = args.positional[3];
    if (epoch.epoch > 0) path += ".epoch" + std::to_string(epoch.epoch);
    ProtectionManifest manifest =
        Must(ManifestFromEpoch(epoch, input.schema(), metrics, config));
    if (auto st = WriteManifestFile(manifest, path); !st.ok()) {
      return Fail(st);
    }
    std::printf("epoch %zu: emitted %zu rows, suppressed %zu, wmd %zu, "
                "v %.6f, manifest -> %s\n",
                epoch.epoch, epoch.rows_emitted, epoch.rows_suppressed,
                epoch.wmd_size, epoch.identifier_statistic, path.c_str());
  }
  std::printf("streamed %zu rows in %zu batches (%s policy) -> %s\n",
              session.rows_ingested(), num_batches, policy.c_str(),
              args.positional[2].c_str());
  return 0;
}

int CmdProtect(const Args& args) {
  if (args.positional.size() != 4) {
    std::fprintf(stderr,
                 "usage: privmark_cli protect <in.csv> <out.csv> "
                 "<manifest.out> [--k=] [--eta=] [--pass=] [--joint] "
                 "[--epsilon] [--threads=] [--batch-size=] "
                 "[--rebin-policy=freeze|drift] [--drift-threshold=]\n");
    return 2;
  }
  MedicalDataset ontologies = Must(GenerateMedicalDataset({.num_rows = 1}));
  Table input = Must(ReadTableCsv(args.positional[1], MedicalSchema()));

  FrameworkConfig config;
  config.binning.k = args.FlagU64("k", 20);
  config.binning.enforce_joint = args.flags.count("joint") > 0;
  config.binning.encryption_passphrase = args.Flag("pass", "cli-default-pass");
  config.binning.num_threads = args.FlagU64("threads", 1);
  config.watermark.num_threads = config.binning.num_threads;
  config.key = KeyFromArgs(args);
  config.auto_epsilon = args.flags.count("epsilon") > 0;

  UsageMetrics metrics =
      config.binning.enforce_joint
          ? UnconstrainedMetrics(ontologies.trees())
          : Must(MetricsFromDepthCuts(ontologies.trees(), {2, 1, 2, 1, 1}));

  const size_t batch_size = args.FlagU64("batch-size", 0);
  if (batch_size > 0) {
    return ProtectStreaming(args, input, metrics, config, batch_size);
  }

  ProtectionFramework framework(metrics, config);
  ProtectionOutcome outcome = Must(framework.Protect(input));

  if (auto st = WriteTableCsv(outcome.watermarked, args.positional[2]);
      !st.ok()) {
    return Fail(st);
  }
  ProtectionManifest manifest =
      Must(BuildManifest(outcome, metrics, config));
  if (auto st = WriteManifestFile(manifest, args.positional[3]); !st.ok()) {
    return Fail(st);
  }
  std::printf("protected %zu rows  (k=%zu%s, eta=%llu)\n",
              outcome.watermarked.num_rows(), config.binning.k,
              config.binning.enforce_joint ? " joint" : " per-attribute",
              static_cast<unsigned long long>(config.key.eta));
  std::printf("information loss: %.2f%%\n",
              outcome.binning.multi_normalized_loss * 100);
  std::printf("mark (keep secret until dispute): %s\n",
              outcome.mark.ToString().c_str());
  std::printf("identifier statistic v (PRESENT IN COURT): %.6f\n",
              outcome.identifier_statistic);
  std::printf("table -> %s\nmanifest -> %s\n", args.positional[2].c_str(),
              args.positional[3].c_str());
  return 0;
}

int CmdDetect(const Args& args) {
  if (args.positional.size() != 3) {
    std::fprintf(stderr,
                 "usage: privmark_cli detect <table.csv> <manifest> "
                 "[--k1=] [--k2=] [--eta=] [--threads=]\n");
    return 2;
  }
  MedicalDataset ontologies = Must(GenerateMedicalDataset({.num_rows = 1}));
  Table table = Must(ReadTableCsv(args.positional[1], MedicalSchema()));
  ProtectionManifest manifest = Must(ReadManifestFile(args.positional[2]));
  WatermarkOptions options;
  options.hash = manifest.hash;
  options.num_threads = args.FlagU64("threads", 1);
  HierarchicalWatermarker watermarker = Must(WatermarkerFromManifest(
      manifest, table, ontologies.trees(), KeyFromArgs(args), options));
  DetectReport report = Must(
      watermarker.Detect(table, manifest.mark_bits, manifest.wmd_size));
  size_t voted = 0;
  for (bool b : report.bit_voted) voted += b ? 1 : 0;
  std::printf("recovered mark: %s\n", report.recovered.ToString().c_str());
  std::printf("bits with votes: %zu/%zu, slots read: %zu, tuples selected: "
              "%zu\n",
              voted, manifest.mark_bits, report.slots_read,
              report.tuples_selected);
  return 0;
}

int CmdAttack(const Args& args) {
  if (args.positional.size() != 5) {
    std::fprintf(stderr,
                 "usage: privmark_cli attack <in.csv> <out.csv> "
                 "<alter|add|delete|generalize> <fraction> [--seed=] "
                 "[--manifest=] [--threads=]\n");
    return 2;
  }
  Table table = Must(ReadTableCsv(args.positional[1], MedicalSchema()));
  const std::string kind = args.positional[3];
  const double fraction = std::atof(args.positional[4].c_str());
  Random rng(args.FlagU64("seed", 1));
  const size_t threads = args.FlagU64("threads", 1);
  const std::vector<size_t> qi = MedicalSchema().QuasiIdentifyingColumns();

  AttackReport report;
  if (kind == "alter") {
    report = Must(SubsetAlterationAttack(&table, qi, fraction, &rng, threads));
  } else if (kind == "add") {
    report = Must(SubsetAdditionAttack(&table, fraction, &rng));
  } else if (kind == "delete") {
    report = Must(SubsetDeletionAttack(&table, fraction, &rng, threads));
  } else if (kind == "generalize") {
    const std::string manifest_path = args.Flag("manifest", "");
    if (manifest_path.empty()) {
      std::fprintf(stderr, "generalize needs --manifest=<path>\n");
      return 2;
    }
    MedicalDataset ontologies = Must(GenerateMedicalDataset({.num_rows = 1}));
    ProtectionManifest manifest = Must(ReadManifestFile(manifest_path));
    // Reconstruct the maximal sets to cap the attack (the attacker knows
    // the published generalization structure).
    HierarchicalWatermarker helper = Must(WatermarkerFromManifest(
        manifest, table, ontologies.trees(), WatermarkKey{}, {}));
    report =
        Must(GeneralizationAttack(&table, helper.qi_columns(),
                                  helper.maximal(), 1, threads));
  } else {
    std::fprintf(stderr, "unknown attack kind '%s'\n", kind.c_str());
    return 2;
  }
  if (auto st = WriteTableCsv(table, args.positional[2]); !st.ok()) {
    return Fail(st);
  }
  std::printf("%s attack: %zu rows affected, %zu cells changed; %zu rows "
              "remain -> %s\n",
              kind.c_str(), report.rows_affected, report.cells_changed,
              table.num_rows(), args.positional[2].c_str());
  return 0;
}

int CmdDispute(const Args& args) {
  if (args.positional.size() != 4) {
    std::fprintf(stderr,
                 "usage: privmark_cli dispute <table.csv> <manifest> "
                 "<claimed_v> [--pass=] [--k1=] [--k2=] [--eta=]\n");
    return 2;
  }
  MedicalDataset ontologies = Must(GenerateMedicalDataset({.num_rows = 1}));
  Table table = Must(ReadTableCsv(args.positional[1], MedicalSchema()));
  ProtectionManifest manifest = Must(ReadManifestFile(args.positional[2]));
  const double claimed_v = std::atof(args.positional[3].c_str());
  HierarchicalWatermarker watermarker = Must(WatermarkerFromManifest(
      manifest, table, ontologies.trees(), KeyFromArgs(args),
      WatermarkOptions{.hash = manifest.hash}));
  const Aes128 cipher =
      Aes128::FromPassphrase(args.Flag("pass", "cli-default-pass"));
  OwnershipConfig oc;
  oc.mark_bits = manifest.mark_bits;
  oc.hash = manifest.hash;
  DisputeVerdict verdict = Must(ResolveDispute(
      table, watermarker, cipher, claimed_v, manifest.wmd_size, oc));
  std::printf("claimed v:    %.6f\nrecomputed v: %.6f\n", verdict.claimed_v,
              verdict.recomputed_v);
  std::printf("statistic consistent: %s\n",
              verdict.statistic_consistent ? "yes" : "no");
  std::printf("mark match: %.1f%% (chance probability %.3e)\n",
              verdict.mark_match * 100, verdict.p_value);
  std::printf("ownership: %s\n",
              verdict.ownership_established ? "ESTABLISHED" : "rejected");
  return verdict.ownership_established ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (args.positional.empty()) {
    std::fprintf(stderr,
                 "usage: privmark_cli "
                 "<generate|protect|detect|attack|dispute> ...\n");
    return 2;
  }
  const std::string& command = args.positional[0];
  if (command == "generate") return CmdGenerate(args);
  if (command == "protect") return CmdProtect(args);
  if (command == "detect") return CmdDetect(args);
  if (command == "attack") return CmdAttack(args);
  if (command == "dispute") return CmdDispute(args);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
