// privmark_cli — command-line front end for the full pipeline on CSV
// files with the paper's medical schema R(ssn, age, zip_code, doctor,
// symptom, prescription).
//
//   privmark_cli generate <rows> <out.csv> [--seed=N]
//       synthesize a clinical data set
//
//   privmark_cli protect <in.csv> <out.csv> <manifest.out>
//                [--k=20] [--eta=50] [--pass=...] [--k1=...] [--k2=...]
//                [--joint] [--epsilon] [--threads=N] [--batch-size=N]
//                [--rebin-policy=freeze|drift] [--drift-threshold=0.5]
//       bin to k-anonymity, encrypt identifiers, embed the ownership
//       mark; writes the protected table and the (non-secret) manifest.
//       With --batch-size=N the table is replayed through an incremental
//       ProtectionSession in N-row batches: under `freeze` (the default)
//       all batches accumulate and one flush at the end emits epoch 0 —
//       byte-identical to the single-shot path; under `drift` the first
//       batch is the initial load (flushed immediately) and later batches
//       open new epochs whenever accumulated rows drift past the
//       threshold — each epoch gets its own mark, embed, and manifest
//       (epoch N > 0 is written to <manifest.out>.epochN)
//
//   privmark_cli gen-key <out.key> [--name=recipient] [--eta=50]
//                [--seed=N] [--k1=...] [--k2=...]
//       write a named key file (a one-entry registry). Key material is
//       drawn from a Random seeded by --seed — privmark never touches
//       system entropy, so pick a fresh seed per recipient — or taken
//       verbatim from --k1/--k2. Concatenating gen-key outputs' [key]
//       sections under one magic line forms a multi-key registry.
//
//   privmark_cli detect <table.csv> <manifest> [--key=key.file]
//                [--registry=keys.file] [--mark=bits] [--json[=path]]
//                [--k1=...] [--k2=...] [--eta=50] [--threads=N]
//       recover the embedded mark with the secret key (--key file or
//       --k1/--k2/--eta), or — with --registry — scan the table against
//       every key in the registry and print ranked suspects (--mark
//       supplies the owner's expected mark; without it ranking falls
//       back to internal vote agreement). --json emits the structured
//       report to stdout (or to =path)
//
//   privmark_cli cmp <table.csv> <manifest> <expected_mark_bits>
//                [--key=key.file] [--k1=...] [--k2=...] [--eta=50]
//                [--threads=N] [--json[=path]]
//       audiowmark-style comparison: does the table carry this key's
//       mark? Prints mark match, margin ratio, and p-value; exits 0 on
//       MATCH, 3 on NO_MATCH
//
//   privmark_cli attack <in.csv> <out.csv> <kind> <fraction>
//                [--seed=N] [--manifest=...] [--threads=N]
//       kind: alter | add | delete | generalize (generalize needs the
//       manifest for the maximal nodes and ignores fraction)
//
//   privmark_cli dispute <table.csv> <manifest> <claimed_v>
//                [--pass=...] [--k1=...] [--k2=...] [--eta=50]
//       run the Sec. 5.4 rightful-ownership protocol
//
//   privmark_cli recover <journal.wal> <out.csv> <manifest.out>
//                [--k=20] [--eta=50] [--pass=...] [--k1=...] [--k2=...]
//                [--key=key.file] [--joint] [--epsilon] [--threads=N]
//                [--rebin-policy=freeze|drift] [--drift-threshold=0.5]
//       rebuild a crashed session's stream from its write-ahead journal:
//       replays the journal (discarding any torn tail), writes every row
//       the crashed process had emitted to <out.csv> and one manifest
//       per sealed epoch. The flags must repeat the original run's
//       non-secret config (k, joint, policy — validated against the
//       journal's fingerprint) and its secrets (never journaled). The
//       journal file itself is left untouched.
//
//   privmark_cli daemon [--port=0] [--cap=N] [--journal-dir=DIR]
//                [--default-deadline-ms=0] [--max-queue-depth=0]
//                [--max-admission-waiters=0] [--shutdown-deadline-ms=-1]
//       run the network daemon on 127.0.0.1:<port> (0 = ephemeral; the
//       bound port is printed, so tests can parse it). Serves the wire
//       protocol of service/wire.h: any number of clients, one session
//       strand per stream, shared worker pool of --cap threads. The
//       shedding knobs mirror ServiceConfig: --max-queue-depth bounds a
//       session's queue, --max-admission-waiters bounds the thread
//       admission queue; shed requests come back ResourceExhausted with
//       a typed retry_after_ms hint. Runs until stdin reaches EOF or
//       SIGINT/SIGTERM, then drains with
//       Shutdown(--shutdown-deadline-ms) (-1 = wait forever).
//
//   privmark_cli serve <script> [--cap=N] [--journal-dir=DIR]
//                [--connect=host:port]
//                [--pass=...] [--k1=...] [--k2=...] [--eta=50]
//       drive the async service front-end from a scripted request file:
//       named streams protected concurrently on one shared pool of at
//       most N workers (0 = hardware). With --journal-dir every stream
//       is durable: batches are journaled write-ahead to
//       DIR/<session>.wal, and re-opening a session whose journal
//       already exists replays it first (the open line reports what was
//       recovered). Script lines (# starts a comment):
//         open <session> <out.csv> <manifest.out> [--k=20] [--joint]
//              [--epsilon] [--threads=1] [--rebin-policy=freeze|drift]
//              [--drift-threshold=0.5]
//         ingest <session> <in.csv> [--threads=N]
//         flush <session> [--threads=N]
//         detect <session> [<table.csv>] [--threads=N]
//         fingerprint <session> <registry.file> [<table.csv>] [--threads=N]
//         close <session>
//       Requests are submitted asynchronously and pipeline across
//       sessions; a session's requests always execute in script order.
//       `detect` with no table re-reads what the session emitted so far.
//       `close` (implicit at end of script) writes the session's emitted
//       rows to its out.csv and one manifest per epoch
//       (<manifest.out>.epochN for N > 0).
//       With --connect=host:port the same script drives a running
//       privmark_cli daemon instead of an in-process service: each
//       stream gets its own connection (script lines run one at a time;
//       concurrency comes from the daemon's thread per connection),
//       --journal-dir/--cap are the daemon's to decide, and close
//       writes the manifests the daemon serialized — byte-identical to
//       a local run's. Script lines gain an optional --deadline-ms=N
//       per request (absent = the daemon's default), and `fingerprint`
//       gains --stream: under protocol v2 the daemon streams each
//       key-shard's verdicts as a partial frame, printed as they land,
//       before the terminal ranking (byte-identical to the one-shot
//       report).
//
// --threads=N runs the row-sharded pipeline stages on N workers (0 = one
// per hardware thread); outputs are byte-identical for every N, so the
// flag is purely a throughput knob. Default 1 (serial). The `add` attack
// is the one surface that ignores it: appending rows consumes the random
// stream for every cell, which is inherently sequential.
//
// Secrets (k1/k2/eta, encryption passphrase) are parameters, never stored
// in the manifest.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "attack/attacks.h"
#include "core/framework.h"
#include "core/manifest.h"
#include "core/report_json.h"
#include "core/session.h"
#include "common/durable_file.h"
#include "common/strings.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/service.h"
#include "watermark/fingerprint.h"
#include "watermark/key_registry.h"
#include "watermark/ownership.h"

using namespace privmark;  // NOLINT — example brevity

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string Flag(const std::string& name, const std::string& fallback)
      const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  uint64_t FlagU64(const std::string& name, uint64_t fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::stoull(it->second);
  }
};

Args ParseTokens(const std::vector<std::string>& tokens) {
  Args args;
  for (const std::string& arg : tokens) {
    if (StartsWith(arg, "--")) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        args.flags[arg.substr(2)] = "true";
      } else {
        args.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

Args ParseArgs(int argc, char** argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return ParseTokens(tokens);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

template <typename T>
T Must(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

WatermarkKey KeyFromArgs(const Args& args) {
  return WatermarkKey{args.Flag("k1", "cli-default-k1"),
                      args.Flag("k2", "cli-default-k2"),
                      args.FlagU64("eta", 50)};
}

// The key named by --key=<file> (a gen-key output), else flag-supplied
// material with an empty name.
NamedKey NamedKeyFromArgs(const Args& args) {
  const std::string path = args.Flag("key", "");
  if (!path.empty()) return Must(ReadKeyFile(path));
  return NamedKey{"", KeyFromArgs(args)};
}

// Emits a --json report: to stdout for bare --json, to the flag's value
// for --json=<path>. No-op when the flag is absent.
int EmitJson(const Args& args, const std::string& json) {
  if (args.flags.count("json") == 0) return 0;
  const std::string path = args.Flag("json", "");
  if (path.empty() || path == "true") {
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  std::ofstream out(path, std::ios::binary);
  out << json;
  if (!out) {
    std::fprintf(stderr, "error: cannot write JSON report to '%s'\n",
                 path.c_str());
    return 1;
  }
  return 0;
}

int CmdGenerate(const Args& args) {
  if (args.positional.size() != 3) {
    std::fprintf(stderr, "usage: privmark_cli generate <rows> <out.csv>\n");
    return 2;
  }
  MedicalDataSpec spec;
  spec.num_rows = std::stoull(args.positional[1]);
  spec.seed = args.FlagU64("seed", spec.seed);
  MedicalDataset dataset = Must(GenerateMedicalDataset(spec));
  if (auto st = WriteTableCsv(dataset.table, args.positional[2]); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %zu rows to %s\n", dataset.table.num_rows(),
              args.positional[2].c_str());
  return 0;
}

// The non-secret + secret framework configuration shared by protect and
// recover (recover must repeat the original run's flags; the journal's
// fingerprint validates the non-secret part).
FrameworkConfig FrameworkConfigFromArgs(const Args& args) {
  FrameworkConfig config;
  config.binning.k = args.FlagU64("k", 20);
  config.binning.enforce_joint = args.flags.count("joint") > 0;
  config.binning.encryption_passphrase = args.Flag("pass", "cli-default-pass");
  config.binning.num_threads = args.FlagU64("threads", 1);
  config.watermark.num_threads = config.binning.num_threads;
  const NamedKey named = NamedKeyFromArgs(args);
  config.key = named.key;
  config.key_id = named.name;
  config.auto_epsilon = args.flags.count("epsilon") > 0;
  return config;
}

UsageMetrics MetricsForConfig(const FrameworkConfig& config,
                              const MedicalDataset& ontologies) {
  return config.binning.enforce_joint
             ? UnconstrainedMetrics(ontologies.trees())
             : Must(MetricsFromDepthCuts(ontologies.trees(), {2, 1, 2, 1, 1}));
}

// Fills `session_config` from --rebin-policy / --drift-threshold. Returns
// 0 on success, a usage exit code otherwise.
int ParseSessionConfig(const Args& args, SessionConfig* session_config,
                       std::string* policy_out) {
  const std::string policy = args.Flag("rebin-policy", "freeze");
  if (policy == "drift") {
    session_config->policy = RebinPolicy::kRebinOnDrift;
  } else if (policy != "freeze") {
    std::fprintf(stderr, "unknown --rebin-policy '%s' (freeze|drift)\n",
                 policy.c_str());
    return 2;
  }
  const std::string threshold_text = args.Flag("drift-threshold", "0.5");
  char* threshold_end = nullptr;
  session_config->drift_threshold =
      std::strtod(threshold_text.c_str(), &threshold_end);
  if (threshold_end == threshold_text.c_str() || *threshold_end != '\0' ||
      session_config->drift_threshold <= 0.0) {
    std::fprintf(stderr,
                 "--drift-threshold must be a positive number, got '%s'\n",
                 threshold_text.c_str());
    return 2;
  }
  if (policy_out != nullptr) *policy_out = policy;
  return 0;
}

// Replays `input` through an incremental session in `batch_size`-row
// batches; writes the concatenated emitted output plus one manifest per
// epoch. Returns the process exit code.
int ProtectStreaming(const Args& args, const Table& input,
                     const UsageMetrics& metrics,
                     const FrameworkConfig& config, size_t batch_size) {
  SessionConfig session_config;
  std::string policy;
  if (int rc = ParseSessionConfig(args, &session_config, &policy); rc != 0) {
    return rc;
  }

  ProtectionSession session(metrics, config, session_config);
  Table output(input.schema());
  auto append_emitted = [&output](const Table& emitted) {
    for (size_t r = 0; r < emitted.num_rows(); ++r) {
      (void)output.AppendRow(emitted.row(r));
    }
  };

  size_t num_batches = 0;
  for (size_t begin = 0; begin < input.num_rows() || num_batches == 0;
       begin += batch_size) {
    const Table batch = input.Slice(begin, begin + batch_size);
    IngestResult result = Must(session.Ingest(batch));
    ++num_batches;
    if (result.flushed || result.rows_emitted > 0) {
      append_emitted(result.emitted);
    }
    // Drift mode: the first batch is the initial load; flush immediately
    // so later batches stream against a live generalization.
    if (num_batches == 1 &&
        session_config.policy == RebinPolicy::kRebinOnDrift) {
      append_emitted(Must(session.Flush()).outcome.watermarked);
    }
  }
  if (session.rows_buffered() > 0 || !session.frozen()) {
    append_emitted(Must(session.Flush()).outcome.watermarked);
  }

  if (auto st = WriteTableCsv(output, args.positional[2]); !st.ok()) {
    return Fail(st);
  }
  for (const EpochRecord& epoch : session.epochs()) {
    std::string path = args.positional[3];
    if (epoch.epoch > 0) path += ".epoch" + std::to_string(epoch.epoch);
    ProtectionManifest manifest =
        Must(ManifestFromEpoch(epoch, input.schema(), metrics, config));
    if (auto st = WriteManifestFile(manifest, path); !st.ok()) {
      return Fail(st);
    }
    std::printf("epoch %zu: emitted %zu rows, suppressed %zu, wmd %zu, "
                "v %.6f, manifest -> %s\n",
                epoch.epoch, epoch.rows_emitted, epoch.rows_suppressed,
                epoch.wmd_size, epoch.identifier_statistic, path.c_str());
  }
  std::printf("streamed %zu rows in %zu batches (%s policy) -> %s\n",
              session.rows_ingested(), num_batches, policy.c_str(),
              args.positional[2].c_str());
  return 0;
}

int CmdProtect(const Args& args) {
  if (args.positional.size() != 4) {
    std::fprintf(stderr,
                 "usage: privmark_cli protect <in.csv> <out.csv> "
                 "<manifest.out> [--key=key.file] [--k=] [--eta=] [--pass=] "
                 "[--joint] [--epsilon] [--threads=] [--batch-size=] "
                 "[--rebin-policy=freeze|drift] [--drift-threshold=]\n");
    return 2;
  }
  MedicalDataset ontologies = Must(GenerateMedicalDataset({.num_rows = 1}));
  Table input = Must(ReadTableCsv(args.positional[1], MedicalSchema()));

  FrameworkConfig config = FrameworkConfigFromArgs(args);
  UsageMetrics metrics = MetricsForConfig(config, ontologies);

  const size_t batch_size = args.FlagU64("batch-size", 0);
  if (batch_size > 0) {
    return ProtectStreaming(args, input, metrics, config, batch_size);
  }

  ProtectionFramework framework(metrics, config);
  ProtectionOutcome outcome = Must(framework.Protect(input));

  if (auto st = WriteTableCsv(outcome.watermarked, args.positional[2]);
      !st.ok()) {
    return Fail(st);
  }
  ProtectionManifest manifest =
      Must(BuildManifest(outcome, metrics, config));
  if (auto st = WriteManifestFile(manifest, args.positional[3]); !st.ok()) {
    return Fail(st);
  }
  std::printf("protected %zu rows  (k=%zu%s, eta=%llu%s%s)\n",
              outcome.watermarked.num_rows(), config.binning.k,
              config.binning.enforce_joint ? " joint" : " per-attribute",
              static_cast<unsigned long long>(config.key.eta),
              config.key_id.empty() ? "" : ", key ",
              config.key_id.c_str());
  std::printf("information loss: %.2f%%\n",
              outcome.binning.multi_normalized_loss * 100);
  std::printf("mark (keep secret until dispute): %s\n",
              outcome.mark.ToString().c_str());
  std::printf("identifier statistic v (PRESENT IN COURT): %.6f\n",
              outcome.identifier_statistic);
  std::printf("table -> %s\nmanifest -> %s\n", args.positional[2].c_str(),
              args.positional[3].c_str());
  return 0;
}

int CmdDetect(const Args& args) {
  if (args.positional.size() != 3) {
    std::fprintf(stderr,
                 "usage: privmark_cli detect <table.csv> <manifest> "
                 "[--key=key.file] [--registry=keys.file] [--mark=bits] "
                 "[--json[=path]] [--k1=] [--k2=] [--eta=] [--threads=]\n");
    return 2;
  }
  MedicalDataset ontologies = Must(GenerateMedicalDataset({.num_rows = 1}));
  Table table = Must(ReadTableCsv(args.positional[1], MedicalSchema()));
  ProtectionManifest manifest = Must(ReadManifestFile(args.positional[2]));
  WatermarkOptions options;
  options.hash = manifest.hash;
  options.num_threads = args.FlagU64("threads", 1);

  const std::string registry_path = args.Flag("registry", "");
  if (!registry_path.empty()) {
    // Registry scan: the watermarker contributes only structure (labels,
    // maximal sets); every candidate key comes from the registry.
    KeyRegistry registry = Must(KeyRegistry::ReadFile(registry_path));
    HierarchicalWatermarker watermarker = Must(WatermarkerFromManifest(
        manifest, table, ontologies.trees(), WatermarkKey{}, options));
    FingerprintConfig scan;
    scan.wm_size = manifest.mark_bits;
    scan.wmd_size = manifest.wmd_size;
    if (args.flags.count("mark") > 0) {
      scan.expected_mark = Must(BitVector::FromString(args.Flag("mark", "")));
    }
    FingerprintReport report =
        Must(ScanForFingerprints(watermarker, table, registry, scan));
    std::printf("scanned %zu key(s), %zu detected (threshold %.2f, "
                "ranked by %s)\n",
                report.verdicts.size(), report.keys_detected,
                scan.match_threshold,
                scan.expected_mark.size() > 0 ? "mark match"
                                              : "vote agreement");
    for (size_t i = 0; i < report.ranking.size(); ++i) {
      const KeyVerdict& v = report.verdicts[report.ranking[i]];
      std::printf("  %2zu. %-24s score %.6f  match %.6f  agreement %.6f  "
                  "p %.3e  %s\n",
                  i + 1, v.key_name.c_str(), v.score, v.mark_match,
                  v.margin_ratio, v.p_value,
                  v.detected ? "DETECTED" : "clear");
    }
    if (report.collusion) {
      std::printf("COLLUSION: %zu keys cleared the threshold — the table "
                  "mixes rows from several recipients' copies\n",
                  report.keys_detected);
    }
    return EmitJson(args, FingerprintReportJson(report,
                                                scan.match_threshold));
  }

  const NamedKey named = NamedKeyFromArgs(args);
  HierarchicalWatermarker watermarker = Must(WatermarkerFromManifest(
      manifest, table, ontologies.trees(), named.key, options));
  DetectReport report = Must(
      watermarker.Detect(table, manifest.mark_bits, manifest.wmd_size));
  size_t voted = 0;
  for (bool b : report.bit_voted) voted += b ? 1 : 0;
  std::printf("recovered mark: %s\n", report.recovered.ToString().c_str());
  std::printf("bits with votes: %zu/%zu, slots read: %zu, tuples selected: "
              "%zu\n",
              voted, manifest.mark_bits, report.slots_read,
              report.tuples_selected);
  return EmitJson(args, DetectReportJson(named.name, report));
}

int CmdGenKey(const Args& args) {
  if (args.positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: privmark_cli gen-key <out.key> [--name=recipient] "
                 "[--eta=50] [--seed=N] [--k1=] [--k2=]\n");
    return 2;
  }
  const std::string name = args.Flag("name", "recipient");
  const uint64_t eta = args.FlagU64("eta", 50);
  NamedKey key;
  if (args.flags.count("k1") > 0 || args.flags.count("k2") > 0) {
    key = NamedKey{name, KeyFromArgs(args)};
  } else {
    // privmark never draws from system entropy — the caller owns the
    // seed, and distinct recipients need distinct seeds.
    Random rng(args.FlagU64("seed", 1));
    key = GenerateKey(name, eta, &rng);
  }
  if (auto st = WriteKeyFile(key, args.positional[1]); !st.ok()) {
    return Fail(st);
  }
  std::printf("key '%s' (eta %llu) -> %s\n", key.name.c_str(),
              static_cast<unsigned long long>(key.key.eta),
              args.positional[1].c_str());
  return 0;
}

int CmdCmp(const Args& args) {
  if (args.positional.size() != 4) {
    std::fprintf(stderr,
                 "usage: privmark_cli cmp <table.csv> <manifest> "
                 "<expected_mark_bits> [--key=key.file] [--k1=] [--k2=] "
                 "[--eta=] [--threads=] [--json[=path]]\n");
    return 2;
  }
  MedicalDataset ontologies = Must(GenerateMedicalDataset({.num_rows = 1}));
  Table table = Must(ReadTableCsv(args.positional[1], MedicalSchema()));
  ProtectionManifest manifest = Must(ReadManifestFile(args.positional[2]));
  BitVector expected = Must(BitVector::FromString(args.positional[3]));

  NamedKey named = NamedKeyFromArgs(args);
  if (named.name.empty()) named.name = "candidate";
  KeyRegistry registry;
  if (auto st = registry.Add(named); !st.ok()) return Fail(st);

  WatermarkOptions options;
  options.hash = manifest.hash;
  options.num_threads = args.FlagU64("threads", 1);
  HierarchicalWatermarker watermarker = Must(WatermarkerFromManifest(
      manifest, table, ontologies.trees(), named.key, options));
  FingerprintConfig scan;
  scan.wm_size = manifest.mark_bits;
  scan.wmd_size = manifest.wmd_size;
  scan.expected_mark = expected;
  FingerprintReport report =
      Must(ScanForFingerprints(watermarker, table, registry, scan));
  const KeyVerdict& verdict = report.verdicts[0];
  std::printf("key: %s\n", verdict.key_name.c_str());
  std::printf("mark match: %.1f%% (chance probability %.3e)\n",
              verdict.mark_match * 100, verdict.p_value);
  std::printf("vote agreement: %.1f%%\n", verdict.margin_ratio * 100);
  std::printf("verdict: %s (threshold %.2f)\n",
              verdict.detected ? "MATCH" : "NO_MATCH",
              scan.match_threshold);
  const int json_status =
      EmitJson(args, CmpReportJson(verdict, expected, scan.match_threshold));
  if (json_status != 0) return json_status;
  return verdict.detected ? 0 : 3;
}

int CmdAttack(const Args& args) {
  if (args.positional.size() != 5) {
    std::fprintf(stderr,
                 "usage: privmark_cli attack <in.csv> <out.csv> "
                 "<alter|add|delete|generalize> <fraction> [--seed=] "
                 "[--manifest=] [--threads=]\n");
    return 2;
  }
  Table table = Must(ReadTableCsv(args.positional[1], MedicalSchema()));
  const std::string kind = args.positional[3];
  const double fraction = std::atof(args.positional[4].c_str());
  Random rng(args.FlagU64("seed", 1));
  const size_t threads = args.FlagU64("threads", 1);
  const std::vector<size_t> qi = MedicalSchema().QuasiIdentifyingColumns();

  AttackReport report;
  if (kind == "alter") {
    report = Must(SubsetAlterationAttack(&table, qi, fraction, &rng, threads));
  } else if (kind == "add") {
    report = Must(SubsetAdditionAttack(&table, fraction, &rng));
  } else if (kind == "delete") {
    report = Must(SubsetDeletionAttack(&table, fraction, &rng, threads));
  } else if (kind == "generalize") {
    const std::string manifest_path = args.Flag("manifest", "");
    if (manifest_path.empty()) {
      std::fprintf(stderr, "generalize needs --manifest=<path>\n");
      return 2;
    }
    MedicalDataset ontologies = Must(GenerateMedicalDataset({.num_rows = 1}));
    ProtectionManifest manifest = Must(ReadManifestFile(manifest_path));
    // Reconstruct the maximal sets to cap the attack (the attacker knows
    // the published generalization structure).
    HierarchicalWatermarker helper = Must(WatermarkerFromManifest(
        manifest, table, ontologies.trees(), WatermarkKey{}, {}));
    report =
        Must(GeneralizationAttack(&table, helper.qi_columns(),
                                  helper.maximal(), 1, threads));
  } else {
    std::fprintf(stderr, "unknown attack kind '%s'\n", kind.c_str());
    return 2;
  }
  if (auto st = WriteTableCsv(table, args.positional[2]); !st.ok()) {
    return Fail(st);
  }
  std::printf("%s attack: %zu rows affected, %zu cells changed; %zu rows "
              "remain -> %s\n",
              kind.c_str(), report.rows_affected, report.cells_changed,
              table.num_rows(), args.positional[2].c_str());
  return 0;
}

// ---- serve: scripted front-end over PrivmarkService ----------------------
//
// The driver keeps one client-side record per stream: the futures still
// in flight (drained in submission order — which is execution order,
// since a session's requests serialize), the emitted rows collected so
// far, and the open-time config needed to write per-epoch manifests.
struct ClientStream {
  std::string out_path;
  std::string manifest_path;
  UsageMetrics metrics;
  FrameworkConfig config;
  std::deque<std::pair<RequestKind, ServiceFuture>> pending;
  Table emitted{MedicalSchema()};
  bool closed = false;
};

// Waits out every in-flight future of `stream`, folding emitted rows into
// the client-side concatenation and printing one line per completed
// request. Returns false on the first failed request.
bool DrainStream(const std::string& name, ClientStream* stream) {
  while (!stream->pending.empty()) {
    auto [kind, future] = std::move(stream->pending.front());
    stream->pending.pop_front();
    Result<ServiceResponse> result = future.get();
    if (!result.ok()) {
      std::fprintf(stderr, "error: [%s] %s: %s\n", name.c_str(),
                   RequestKindToString(kind),
                   result.status().ToString().c_str());
      return false;
    }
    const ServiceResponse& response = *result;
    switch (response.kind) {
      case RequestKind::kProtectBatch: {
        for (size_t r = 0; r < response.ingest.emitted.num_rows(); ++r) {
          (void)stream->emitted.AppendRow(response.ingest.emitted.row(r));
        }
        std::printf("[%s] ingest: +%zu rows emitted, %zu suppressed, "
                    "%zu buffered (epoch %zu, %zu threads)\n",
                    name.c_str(), response.ingest.rows_emitted,
                    response.ingest.rows_suppressed,
                    response.ingest.rows_buffered, response.ingest.epoch,
                    response.threads_granted);
        break;
      }
      case RequestKind::kFlush: {
        const Table& table = response.epoch.outcome.watermarked;
        for (size_t r = 0; r < table.num_rows(); ++r) {
          (void)stream->emitted.AppendRow(table.row(r));
        }
        std::printf("[%s] flush: epoch %zu emitted %zu rows, v %.6f "
                    "(%zu threads)\n",
                    name.c_str(), response.epoch.epoch, table.num_rows(),
                    response.epoch.outcome.identifier_statistic,
                    response.threads_granted);
        break;
      }
      case RequestKind::kDetect: {
        for (const DetectReport& report : response.reports) {
          size_t voted = 0;
          for (bool b : report.bit_voted) voted += b ? 1 : 0;
          std::printf("[%s] detect: mark %s, bits with votes %zu/%zu "
                      "(%zu threads)\n",
                      name.c_str(), report.recovered.ToString().c_str(),
                      voted, report.recovered.size(),
                      response.threads_granted);
        }
        break;
      }
      case RequestKind::kDetectFingerprint: {
        for (const FingerprintReport& report : response.fingerprints) {
          std::printf("[%s] fingerprint: %zu/%zu key(s) detected%s "
                      "(%zu threads)\n",
                      name.c_str(), report.keys_detected,
                      report.verdicts.size(),
                      report.collusion ? " COLLUSION" : "",
                      response.threads_granted);
          for (size_t i = 0; i < report.ranking.size(); ++i) {
            const KeyVerdict& v = report.verdicts[report.ranking[i]];
            std::printf("[%s]   %2zu. %-24s score %.6f  %s\n", name.c_str(),
                        i + 1, v.key_name.c_str(), v.score,
                        v.detected ? "DETECTED" : "clear");
          }
        }
        break;
      }
      case RequestKind::kCloseSession: {
        std::printf("[%s] close: ingested %zu, emitted %zu, suppressed "
                    "%zu, %zu epoch(s)\n",
                    name.c_str(), response.stats.rows_ingested,
                    response.stats.rows_emitted,
                    response.stats.rows_suppressed,
                    response.stats.epochs.size());
        // Write the stream's protected output and per-epoch manifests —
        // the same artifacts the batch `protect` command produces.
        if (auto st = WriteTableCsv(stream->emitted, stream->out_path);
            !st.ok()) {
          std::fprintf(stderr, "error: [%s] %s\n", name.c_str(),
                       st.ToString().c_str());
          return false;
        }
        for (const EpochRecord& epoch : response.stats.epochs) {
          std::string path = stream->manifest_path;
          if (epoch.epoch > 0) path += ".epoch" + std::to_string(epoch.epoch);
          ProtectionManifest manifest =
              Must(ManifestFromEpoch(epoch, MedicalSchema(), stream->metrics,
                                     stream->config));
          if (auto st = WriteManifestFile(manifest, path); !st.ok()) {
            std::fprintf(stderr, "error: [%s] %s\n", name.c_str(),
                         st.ToString().c_str());
            return false;
          }
        }
        stream->closed = true;
        break;
      }
    }
  }
  return true;
}

// ---- serve --connect: the same script against a remote daemon ------------
//
// One DaemonClient per stream: a connection's requests are synchronous
// (the wire protocol pipelines across connections, not within one), so
// there is no pending deque — every script line completes before the
// next is read.
struct RemoteStream {
  std::string out_path;
  std::string manifest_path;
  std::unique_ptr<DaemonClient> client;
  Table emitted{MedicalSchema()};
  bool closed = false;
};

// Issues one request on the stream's connection and prints the outcome
// in the same shape as the in-process DrainStream. Returns false on a
// transport error or a non-OK service status.
bool RemoteCall(const std::string& name, RemoteStream* stream,
                const WireRequest& request) {
  Result<WireResponse> result = stream->client->Call(request);
  if (!result.ok()) {
    std::fprintf(stderr, "error: [%s] %s: %s\n", name.c_str(),
                 WireFrameTypeToString(request.type),
                 result.status().ToString().c_str());
    return false;
  }
  const WireResponse& response = *result;
  if (!response.status.ok()) {
    std::fprintf(stderr, "error: [%s] %s: %s\n", name.c_str(),
                 WireFrameTypeToString(request.type),
                 response.status.ToString().c_str());
    if (response.status.retry_after_ms() >= 0) {
      std::fprintf(stderr, "error: [%s] daemon shed the request; retry in "
                   "%lld ms\n",
                   name.c_str(),
                   static_cast<long long>(response.status.retry_after_ms()));
    }
    return false;
  }
  auto append_emitted = [stream](const Table& emitted) {
    for (size_t r = 0; r < emitted.num_rows(); ++r) {
      (void)stream->emitted.AppendRow(emitted.row(r));
    }
  };
  switch (response.kind) {
    case WireFrameType::kOpen:
      if (response.open.recovered) {
        append_emitted(response.open.emitted);
        std::printf("[%s] recovered from journal: %llu batch(es), %llu "
                    "sealed epoch(s), %zu row(s) re-emitted%s\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        response.open.batches_applied),
                    static_cast<unsigned long long>(
                        response.open.epochs_sealed),
                    response.open.emitted.num_rows(),
                    response.open.tail_truncated ? " (torn tail discarded)"
                                                 : "");
      }
      break;
    case WireFrameType::kIngest:
      append_emitted(response.ingest.emitted);
      std::printf("[%s] ingest: +%llu rows emitted, %llu suppressed, "
                  "%llu buffered (epoch %llu, %llu threads)\n",
                  name.c_str(),
                  static_cast<unsigned long long>(
                      response.ingest.rows_emitted),
                  static_cast<unsigned long long>(
                      response.ingest.rows_suppressed),
                  static_cast<unsigned long long>(
                      response.ingest.rows_buffered),
                  static_cast<unsigned long long>(response.ingest.epoch),
                  static_cast<unsigned long long>(response.threads_granted));
      break;
    case WireFrameType::kFlush:
      append_emitted(response.flush.emitted);
      std::printf("[%s] flush: epoch %llu emitted %zu rows, v %.6f "
                  "(%llu threads)\n",
                  name.c_str(),
                  static_cast<unsigned long long>(response.flush.epoch),
                  response.flush.emitted.num_rows(),
                  response.flush.identifier_statistic,
                  static_cast<unsigned long long>(response.threads_granted));
      break;
    case WireFrameType::kDetect:
      for (const DetectReport& report : response.reports) {
        size_t voted = 0;
        for (bool b : report.bit_voted) voted += b ? 1 : 0;
        std::printf("[%s] detect: mark %s, bits with votes %zu/%zu "
                    "(%llu threads)\n",
                    name.c_str(), report.recovered.ToString().c_str(), voted,
                    report.recovered.size(),
                    static_cast<unsigned long long>(
                        response.threads_granted));
      }
      break;
    case WireFrameType::kFingerprint:
      for (const FingerprintReport& report : response.fingerprints) {
        std::printf("[%s] fingerprint: %zu/%zu key(s) detected%s "
                    "(%llu threads)\n",
                    name.c_str(), report.keys_detected,
                    report.verdicts.size(),
                    report.collusion ? " COLLUSION" : "",
                    static_cast<unsigned long long>(
                        response.threads_granted));
        for (size_t i = 0; i < report.ranking.size(); ++i) {
          const KeyVerdict& v = report.verdicts[report.ranking[i]];
          std::printf("[%s]   %2zu. %-24s score %.6f  %s\n", name.c_str(),
                      i + 1, v.key_name.c_str(), v.score,
                      v.detected ? "DETECTED" : "clear");
        }
      }
      break;
    case WireFrameType::kClose: {
      std::printf("[%s] close: ingested %llu, emitted %llu, suppressed "
                  "%llu, %zu epoch(s)\n",
                  name.c_str(),
                  static_cast<unsigned long long>(
                      response.close.rows_ingested),
                  static_cast<unsigned long long>(
                      response.close.rows_emitted),
                  static_cast<unsigned long long>(
                      response.close.rows_suppressed),
                  response.close.epochs.size());
      if (auto st = WriteTableCsv(stream->emitted, stream->out_path);
          !st.ok()) {
        std::fprintf(stderr, "error: [%s] %s\n", name.c_str(),
                     st.ToString().c_str());
        return false;
      }
      // The daemon serialized each epoch's manifest server-side; write
      // the text verbatim (durably, like WriteManifestFile would).
      for (const WireEpochSummary& epoch : response.close.epochs) {
        std::string path = stream->manifest_path;
        if (epoch.epoch > 0) {
          path += ".epoch" + std::to_string(epoch.epoch);
        }
        if (auto st = WriteFileDurable(path, epoch.manifest_text); !st.ok()) {
          std::fprintf(stderr, "error: [%s] %s\n", name.c_str(),
                       st.ToString().c_str());
          return false;
        }
      }
      stream->closed = true;
      stream->client->Disconnect();
      break;
    }
    case WireFrameType::kResponse:
    case WireFrameType::kPartial:
      break;  // unreachable: Call validated the echoed kind
  }
  return true;
}

// Streamed fingerprint (v2 only): prints each key-shard's verdicts as
// its kPartial frame arrives, then the terminal ranking — which Wait()
// validated against the very shards just printed.
bool RemoteFingerprintStreamed(const std::string& name, RemoteStream* stream,
                               WireRequest request) {
  request.stream = true;
  Result<DaemonClient::PendingCall> call =
      stream->client->CallAsync(request);
  if (!call.ok()) {
    std::fprintf(stderr, "error: [%s] fingerprint --stream: %s\n",
                 name.c_str(), call.status().ToString().c_str());
    return false;
  }
  WireFingerprintShard shard;
  for (;;) {
    Result<bool> more = call->NextShard(&shard);
    if (!more.ok()) {
      std::fprintf(stderr, "error: [%s] fingerprint --stream: %s\n",
                   name.c_str(), more.status().ToString().c_str());
      return false;
    }
    if (!*more) break;
    size_t detected = 0;
    for (const KeyVerdict& v : shard.verdicts) detected += v.detected ? 1 : 0;
    std::printf("[%s] shard (epoch %llu, #%llu, keys %llu..%llu): "
                "%zu/%zu detected\n",
                name.c_str(), static_cast<unsigned long long>(shard.epoch),
                static_cast<unsigned long long>(shard.shard),
                static_cast<unsigned long long>(shard.first_key),
                static_cast<unsigned long long>(shard.first_key +
                                                shard.verdicts.size()) -
                    1,
                detected, shard.verdicts.size());
  }
  Result<WireResponse> result = call->Wait();
  if (!result.ok()) {
    std::fprintf(stderr, "error: [%s] fingerprint --stream: %s\n",
                 name.c_str(), result.status().ToString().c_str());
    return false;
  }
  if (!result->status.ok()) {
    std::fprintf(stderr, "error: [%s] fingerprint: %s\n", name.c_str(),
                 result->status.ToString().c_str());
    return false;
  }
  for (const FingerprintReport& report : result->fingerprints) {
    std::printf("[%s] fingerprint: %zu/%zu key(s) detected%s "
                "(%llu threads)\n",
                name.c_str(), report.keys_detected, report.verdicts.size(),
                report.collusion ? " COLLUSION" : "",
                static_cast<unsigned long long>(result->threads_granted));
    for (size_t i = 0; i < report.ranking.size(); ++i) {
      const KeyVerdict& v = report.verdicts[report.ranking[i]];
      std::printf("[%s]   %2zu. %-24s score %.6f  %s\n", name.c_str(), i + 1,
                  v.key_name.c_str(), v.score,
                  v.detected ? "DETECTED" : "clear");
    }
  }
  return true;
}

// Runs the serve script against a daemon at `endpoint` ("host:port").
int ServeRemote(const Args& args, std::istream& script,
                const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    std::fprintf(stderr, "error: --connect needs host:port, got '%s'\n",
                 endpoint.c_str());
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  const uint64_t port = std::stoull(endpoint.substr(colon + 1));
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "error: --connect port out of range: '%s'\n",
                 endpoint.c_str());
    return 2;
  }

  std::map<std::string, RemoteStream> streams;
  std::string line;
  size_t line_no = 0;
  while (std::getline(script, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream words(line);
    std::vector<std::string> tokens;
    for (std::string word; words >> word;) tokens.push_back(word);
    if (tokens.empty()) continue;
    const Args cmd = ParseTokens(tokens);
    auto bad_line = [&](const char* why) {
      std::fprintf(stderr, "error: script line %zu: %s\n", line_no, why);
      return 1;
    };
    if (cmd.positional.empty()) {
      return bad_line("missing verb (open|ingest|flush|detect|close)");
    }
    const std::string& verb = cmd.positional[0];
    if (verb == "open") {
      if (cmd.positional.size() != 4) {
        return bad_line("open <session> <out.csv> <manifest.out> [flags]");
      }
      const std::string& name = cmd.positional[1];
      RemoteStream stream;
      stream.out_path = cmd.positional[2];
      stream.manifest_path = cmd.positional[3];
      stream.client = std::make_unique<DaemonClient>(MedicalSchema());
      if (auto st =
              stream.client->Connect(host, static_cast<uint16_t>(port));
          !st.ok()) {
        return Fail(st);
      }
      WireRequest request;
      request.type = WireFrameType::kOpen;
      request.session = name;
      request.open.k = cmd.FlagU64("k", 20);
      request.open.enforce_joint = cmd.flags.count("joint") > 0;
      request.open.auto_epsilon = cmd.flags.count("epsilon") > 0;
      request.open.num_threads = cmd.FlagU64("threads", 1);
      request.open.passphrase = args.Flag("pass", "cli-default-pass");
      const WatermarkKey key = KeyFromArgs(args);
      request.open.k1 = key.k1;
      request.open.k2 = key.k2;
      request.open.eta = key.eta;
      const std::string policy = cmd.Flag("rebin-policy", "freeze");
      if (policy == "drift") {
        request.open.policy = 1;
      } else if (policy != "freeze") {
        return bad_line("--rebin-policy must be freeze or drift");
      }
      request.open.drift_threshold =
          std::atof(cmd.Flag("drift-threshold", "0.5").c_str());
      std::printf("[%s] open (k=%llu, %s, remote %s)\n", name.c_str(),
                  static_cast<unsigned long long>(request.open.k),
                  policy.c_str(), endpoint.c_str());
      if (!RemoteCall(name, &stream, request)) return 1;
      streams[name] = std::move(stream);
      continue;
    }
    if (cmd.positional.size() < 2) return bad_line("missing session name");
    const std::string& name = cmd.positional[1];
    auto it = streams.find(name);
    if (it == streams.end() || it->second.closed) {
      return bad_line("unknown or closed session");
    }
    RemoteStream& stream = it->second;
    WireRequest request;
    request.session = name;
    request.ask = cmd.flags.count("threads") > 0 ? cmd.FlagU64("threads", 1)
                                                 : UINT64_MAX;
    if (cmd.flags.count("deadline-ms") > 0) {
      request.deadline_ms =
          static_cast<int64_t>(cmd.FlagU64("deadline-ms", 0));
    }
    if (verb == "ingest") {
      if (cmd.positional.size() != 3) {
        return bad_line("ingest <session> <in.csv>");
      }
      request.type = WireFrameType::kIngest;
      request.table = Must(ReadTableCsv(cmd.positional[2], MedicalSchema()));
    } else if (verb == "flush") {
      request.type = WireFrameType::kFlush;
    } else if (verb == "detect") {
      request.type = WireFrameType::kDetect;
      // Requests are synchronous, so "what the session emitted so far"
      // needs no drain — it is already complete.
      request.table = cmd.positional.size() == 3
                          ? Must(ReadTableCsv(cmd.positional[2],
                                              MedicalSchema()))
                          : stream.emitted.Clone();
    } else if (verb == "fingerprint") {
      if (cmd.positional.size() != 3 && cmd.positional.size() != 4) {
        return bad_line(
            "fingerprint <session> <registry> [<table.csv>] [--stream]");
      }
      request.type = WireFrameType::kFingerprint;
      request.registry_text =
          Must(KeyRegistry::ReadFile(cmd.positional[2])).Serialize();
      request.table = cmd.positional.size() == 4
                          ? Must(ReadTableCsv(cmd.positional[3],
                                              MedicalSchema()))
                          : stream.emitted.Clone();
      if (cmd.flags.count("stream") > 0) {
        if (stream.client->protocol_version() < kWireProtocolV2) {
          return bad_line(
              "--stream needs a v2 daemon (this one negotiated v1)");
        }
        if (!RemoteFingerprintStreamed(name, &stream, std::move(request))) {
          return 1;
        }
        continue;
      }
    } else if (verb == "close") {
      request.type = WireFrameType::kClose;
    } else {
      return bad_line(
          "unknown verb (open|ingest|flush|detect|fingerprint|close)");
    }
    if (!RemoteCall(name, &stream, request)) return 1;
  }

  // End of script: close whatever is still open.
  for (auto& [name, stream] : streams) {
    if (stream.closed) continue;
    WireRequest request;
    request.type = WireFrameType::kClose;
    request.session = name;
    if (!RemoteCall(name, &stream, request)) return 1;
  }
  std::printf("served %zu stream(s) via %s\n", streams.size(),
              endpoint.c_str());
  return 0;
}

int CmdServe(const Args& args) {
  if (args.positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: privmark_cli serve <script> [--cap=N] "
                 "[--journal-dir=DIR] [--connect=host:port] [--pass=] "
                 "[--k1=] [--k2=] [--eta=]\n");
    return 2;
  }
  std::ifstream script(args.positional[1]);
  if (!script) {
    std::fprintf(stderr, "error: cannot open script '%s'\n",
                 args.positional[1].c_str());
    return 1;
  }
  const std::string endpoint = args.Flag("connect", "");
  if (!endpoint.empty()) return ServeRemote(args, script, endpoint);
  // One ontology set serves every stream (trees must outlive the service).
  MedicalDataset ontologies = Must(GenerateMedicalDataset({.num_rows = 1}));

  ServiceConfig service_config;
  service_config.thread_cap = args.FlagU64("cap", 0);
  service_config.journal_dir = args.Flag("journal-dir", "");
  PrivmarkService service(service_config);
  std::map<std::string, ClientStream> streams;

  std::string line;
  size_t line_no = 0;
  while (std::getline(script, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream words(line);
    std::vector<std::string> tokens;
    for (std::string word; words >> word;) tokens.push_back(word);
    if (tokens.empty()) continue;
    const Args cmd = ParseTokens(tokens);
    auto bad_line = [&](const char* why) {
      std::fprintf(stderr, "error: script line %zu: %s\n", line_no, why);
      return 1;
    };
    if (cmd.positional.empty()) {
      return bad_line("missing verb (open|ingest|flush|detect|close)");
    }
    const std::string& verb = cmd.positional[0];
    if (verb == "open") {
      if (cmd.positional.size() != 4) {
        return bad_line("open <session> <out.csv> <manifest.out> [flags]");
      }
      const std::string& name = cmd.positional[1];
      ClientStream stream;
      stream.out_path = cmd.positional[2];
      stream.manifest_path = cmd.positional[3];
      stream.config.binning.k = cmd.FlagU64("k", 20);
      stream.config.binning.enforce_joint = cmd.flags.count("joint") > 0;
      stream.config.binning.encryption_passphrase =
          args.Flag("pass", "cli-default-pass");
      stream.config.binning.num_threads = cmd.FlagU64("threads", 1);
      stream.config.watermark.num_threads = stream.config.binning.num_threads;
      stream.config.key = KeyFromArgs(args);
      stream.config.auto_epsilon = cmd.flags.count("epsilon") > 0;
      stream.metrics =
          stream.config.binning.enforce_joint
              ? UnconstrainedMetrics(ontologies.trees())
              : Must(MetricsFromDepthCuts(ontologies.trees(), {2, 1, 2, 1, 1}));
      SessionConfig session_config;
      const std::string policy = cmd.Flag("rebin-policy", "freeze");
      if (policy == "drift") {
        session_config.policy = RebinPolicy::kRebinOnDrift;
      } else if (policy != "freeze") {
        return bad_line("--rebin-policy must be freeze or drift");
      }
      session_config.drift_threshold =
          std::atof(cmd.Flag("drift-threshold", "0.5").c_str());
      SessionRecovery recovery;
      if (auto st = service.OpenSession(name, stream.metrics, stream.config,
                                        session_config, &recovery);
          !st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      // A recovered stream already emitted rows before the crash; fold
      // them in so close writes the complete output.
      if (recovery.recovered) {
        for (size_t r = 0; r < recovery.emitted.num_rows(); ++r) {
          (void)stream.emitted.AppendRow(recovery.emitted.row(r));
        }
      }
      streams[name] = std::move(stream);
      std::printf("[%s] open (k=%zu, %s, cap %zu)\n", name.c_str(),
                  streams[name].config.binning.k, policy.c_str(),
                  service.thread_cap());
      if (recovery.recovered) {
        std::printf("[%s] recovered from journal: %zu batch(es), %zu sealed "
                    "epoch(s), %zu row(s) re-emitted%s\n",
                    name.c_str(), recovery.batches_applied,
                    recovery.epochs_sealed, recovery.emitted.num_rows(),
                    recovery.tail_truncated ? " (torn tail discarded)" : "");
      }
      continue;
    }
    if (cmd.positional.size() < 2) return bad_line("missing session name");
    const std::string& name = cmd.positional[1];
    auto it = streams.find(name);
    if (it == streams.end() || it->second.closed) {
      return bad_line("unknown or closed session");
    }
    ClientStream& stream = it->second;
    const size_t threads =
        cmd.flags.count("threads") > 0 ? cmd.FlagU64("threads", 1)
                                       : kSessionThreads;
    if (verb == "ingest") {
      if (cmd.positional.size() != 3) {
        return bad_line("ingest <session> <in.csv>");
      }
      Table batch = Must(ReadTableCsv(cmd.positional[2], MedicalSchema()));
      stream.pending.emplace_back(
          RequestKind::kProtectBatch,
          service.ProtectBatch(name, std::move(batch), threads));
    } else if (verb == "flush") {
      stream.pending.emplace_back(RequestKind::kFlush,
                                  service.Flush(name, threads));
    } else if (verb == "detect") {
      // Detect needs the outsourced copy; default to what the session
      // emitted so far, which requires the in-flight requests to land.
      Table copy{MedicalSchema()};
      if (cmd.positional.size() == 3) {
        copy = Must(ReadTableCsv(cmd.positional[2], MedicalSchema()));
      } else {
        if (!DrainStream(name, &stream)) return 1;
        copy = stream.emitted.Clone();
      }
      stream.pending.emplace_back(
          RequestKind::kDetect,
          service.Detect(name, std::move(copy), threads));
    } else if (verb == "fingerprint") {
      // fingerprint <session> <registry.file> [<table.csv>] — scan the
      // suspect copy (default: what the session emitted) against a key
      // registry.
      if (cmd.positional.size() != 3 && cmd.positional.size() != 4) {
        return bad_line("fingerprint <session> <registry> [<table.csv>]");
      }
      auto registry = std::make_shared<KeyRegistry>(
          Must(KeyRegistry::ReadFile(cmd.positional[2])));
      Table copy{MedicalSchema()};
      if (cmd.positional.size() == 4) {
        copy = Must(ReadTableCsv(cmd.positional[3], MedicalSchema()));
      } else {
        if (!DrainStream(name, &stream)) return 1;
        copy = stream.emitted.Clone();
      }
      stream.pending.emplace_back(
          RequestKind::kDetectFingerprint,
          service.DetectFingerprint(name, std::move(copy),
                                    std::move(registry), threads));
    } else if (verb == "close") {
      stream.pending.emplace_back(RequestKind::kCloseSession,
                                  service.CloseSession(name));
      if (!DrainStream(name, &stream)) return 1;
    } else {
      return bad_line(
          "unknown verb (open|ingest|flush|detect|fingerprint|close)");
    }
  }

  // End of script: close whatever is still open, then drain.
  for (auto& [name, stream] : streams) {
    if (stream.closed) continue;
    stream.pending.emplace_back(RequestKind::kCloseSession,
                                service.CloseSession(name));
    if (!DrainStream(name, &stream)) return 1;
  }
  service.Shutdown();
  std::printf("served %zu stream(s)\n", streams.size());
  return 0;
}

// ---- daemon: the network front-end ---------------------------------------

volatile std::sig_atomic_t g_daemon_stop = 0;
void HandleDaemonSignal(int) { g_daemon_stop = 1; }

int CmdDaemon(const Args& args) {
  if (args.positional.size() != 1) {
    std::fprintf(stderr,
                 "usage: privmark_cli daemon [--port=0] [--cap=N] "
                 "[--journal-dir=DIR] [--default-deadline-ms=0] "
                 "[--max-queue-depth=0] [--max-admission-waiters=0] "
                 "[--shutdown-deadline-ms=-1]\n");
    return 2;
  }
  const uint64_t port = args.FlagU64("port", 0);
  if (port > 65535) {
    std::fprintf(stderr, "error: --port out of range\n");
    return 2;
  }
  // The ontologies outlive the daemon; every opened stream's metrics
  // reference their trees.
  MedicalDataset ontologies = Must(GenerateMedicalDataset({.num_rows = 1}));

  DaemonConfig config;
  config.service.thread_cap = args.FlagU64("cap", 0);
  config.service.journal_dir = args.Flag("journal-dir", "");
  config.service.default_deadline_ms =
      static_cast<int64_t>(args.FlagU64("default-deadline-ms", 0));
  config.service.max_queue_depth = args.FlagU64("max-queue-depth", 0);
  config.service.max_admission_waiters =
      args.FlagU64("max-admission-waiters", 0);
  config.schema = MedicalSchema();
  config.metrics_for_config =
      [&ontologies](const FrameworkConfig& fc) -> Result<UsageMetrics> {
    if (fc.binning.enforce_joint) {
      return UnconstrainedMetrics(ontologies.trees());
    }
    return MetricsFromDepthCuts(ontologies.trees(), {2, 1, 2, 1, 1});
  };

  PrivmarkDaemon daemon(std::move(config));
  if (auto st = daemon.Start(static_cast<uint16_t>(port)); !st.ok()) {
    return Fail(st);
  }
  std::printf("daemon listening on 127.0.0.1:%u (cap %llu%s%s)\n",
              daemon.port(),
              static_cast<unsigned long long>(daemon.service().thread_cap()),
              args.Flag("journal-dir", "").empty() ? "" : ", journal-dir ",
              args.Flag("journal-dir", "").c_str());
  std::fflush(stdout);  // scripts and tests parse the port off this line

  // sigaction without SA_RESTART, not std::signal: glibc's signal()
  // restarts the blocking stdin read after the handler runs, so a
  // SIGINT would never wake the getline below.
  struct sigaction action {};
  action.sa_handler = HandleDaemonSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  // Foreground service: stays up until the controlling script closes
  // stdin or sends a signal. Stray stdin lines are ignored.
  std::string line;
  while (g_daemon_stop == 0 && std::getline(std::cin, line)) {
  }

  const int64_t deadline =
      args.flags.count("shutdown-deadline-ms") > 0
          ? static_cast<int64_t>(args.FlagU64("shutdown-deadline-ms", 0))
          : -1;
  const Status st = daemon.Shutdown(deadline);
  std::printf("daemon stopped after %zu connection(s)\n",
              daemon.connections_accepted());
  return st.ok() ? 0 : Fail(st);
}

int CmdRecover(const Args& args) {
  if (args.positional.size() != 4) {
    std::fprintf(stderr,
                 "usage: privmark_cli recover <journal.wal> <out.csv> "
                 "<manifest.out> [--key=key.file] [--k=] [--eta=] [--pass=] "
                 "[--joint] [--epsilon] [--threads=] "
                 "[--rebin-policy=freeze|drift] [--drift-threshold=]\n");
    return 2;
  }
  MedicalDataset ontologies = Must(GenerateMedicalDataset({.num_rows = 1}));
  FrameworkConfig config = FrameworkConfigFromArgs(args);
  UsageMetrics metrics = MetricsForConfig(config, ontologies);
  SessionConfig session_config;
  std::string policy;
  if (int rc = ParseSessionConfig(args, &session_config, &policy); rc != 0) {
    return rc;
  }

  // resume_journaling = false: this is offline inspection of a crashed
  // run's journal; leave the file byte-for-byte as the crash left it.
  RecoveredSession rec =
      Must(ProtectionSession::Recover(args.positional[1], metrics, config,
                                      session_config,
                                      /*resume_journaling=*/false));
  std::printf("replayed %zu batch(es), %zu sealed epoch(s) "
              "(%zu valid journal bytes%s)\n",
              rec.batches_applied, rec.epochs_sealed, rec.valid_bytes,
              rec.tail_truncated ? ", torn tail discarded" : "");

  if (auto st = WriteTableCsv(rec.emitted, args.positional[2]); !st.ok()) {
    return Fail(st);
  }
  std::printf("recovered %zu emitted row(s) -> %s\n", rec.emitted.num_rows(),
              args.positional[2].c_str());
  for (const EpochRecord& epoch : rec.session->epochs()) {
    std::string path = args.positional[3];
    if (epoch.epoch > 0) path += ".epoch" + std::to_string(epoch.epoch);
    ProtectionManifest manifest = Must(
        ManifestFromEpoch(epoch, MedicalSchema(), metrics, config));
    if (auto st = WriteManifestFile(manifest, path); !st.ok()) {
      return Fail(st);
    }
    std::printf("epoch %zu: %zu rows, v %.6f, manifest -> %s\n", epoch.epoch,
                epoch.rows_emitted, epoch.identifier_statistic, path.c_str());
  }
  if (rec.session->rows_buffered() > 0) {
    std::printf("note: %zu row(s) were journaled but not yet flushed; "
                "re-open the stream (serve --journal-dir) to finish it\n",
                rec.session->rows_buffered());
  }
  return 0;
}

int CmdDispute(const Args& args) {
  if (args.positional.size() != 4) {
    std::fprintf(stderr,
                 "usage: privmark_cli dispute <table.csv> <manifest> "
                 "<claimed_v> [--pass=] [--k1=] [--k2=] [--eta=]\n");
    return 2;
  }
  MedicalDataset ontologies = Must(GenerateMedicalDataset({.num_rows = 1}));
  Table table = Must(ReadTableCsv(args.positional[1], MedicalSchema()));
  ProtectionManifest manifest = Must(ReadManifestFile(args.positional[2]));
  const double claimed_v = std::atof(args.positional[3].c_str());
  HierarchicalWatermarker watermarker = Must(WatermarkerFromManifest(
      manifest, table, ontologies.trees(), KeyFromArgs(args),
      WatermarkOptions{.hash = manifest.hash}));
  const Aes128 cipher =
      Aes128::FromPassphrase(args.Flag("pass", "cli-default-pass"));
  OwnershipConfig oc;
  oc.mark_bits = manifest.mark_bits;
  oc.hash = manifest.hash;
  DisputeVerdict verdict = Must(ResolveDispute(
      table, watermarker, cipher, claimed_v, manifest.wmd_size, oc));
  std::printf("claimed v:    %.6f\nrecomputed v: %.6f\n", verdict.claimed_v,
              verdict.recomputed_v);
  std::printf("statistic consistent: %s\n",
              verdict.statistic_consistent ? "yes" : "no");
  std::printf("mark match: %.1f%% (chance probability %.3e)\n",
              verdict.mark_match * 100, verdict.p_value);
  std::printf("ownership: %s\n",
              verdict.ownership_established ? "ESTABLISHED" : "rejected");
  return verdict.ownership_established ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (args.positional.empty()) {
    std::fprintf(stderr,
                 "usage: privmark_cli "
                 "<generate|gen-key|protect|detect|cmp|attack|dispute|serve"
                 "|daemon|recover> ...\n");
    return 2;
  }
  const std::string& command = args.positional[0];
  if (command == "generate") return CmdGenerate(args);
  if (command == "gen-key") return CmdGenKey(args);
  if (command == "protect") return CmdProtect(args);
  if (command == "detect") return CmdDetect(args);
  if (command == "cmp") return CmdCmp(args);
  if (command == "attack") return CmdAttack(args);
  if (command == "dispute") return CmdDispute(args);
  if (command == "serve") return CmdServe(args);
  if (command == "daemon") return CmdDaemon(args);
  if (command == "recover") return CmdRecover(args);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
