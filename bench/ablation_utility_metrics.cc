// Ablation: data-quality metrics beyond Eq. (1)-(3) across k — the
// "total information loss" variant the paper mentions in Sec. 4.1 plus
// the classical discernibility metric (DM) and normalized average
// equivalence-class size (C_avg) of the k-anonymity literature.
//
// Expected: all metrics degrade monotonically-ish with k; joint binning
// pays far more than per-attribute binning at every k (the Fig. 11 story
// retold in utility terms); C_avg stays near 1 for per-attribute binning
// (bins hug k) and grows for joint binning (over-generalization).

#include "bench_util.h"

#include "binning/binning_engine.h"
#include "common/strings.h"
#include "metrics/utility.h"

namespace privmark {
namespace bench {
namespace {

int Run() {
  Environment env = MakeEnvironment();
  const UsageMetrics unconstrained =
      UnconstrainedMetrics(env.dataset->trees());

  TextTable table;
  table.SetHeader({"k", "mode", "total_info_loss", "discernibility",
                   "c_avg", "joint_bins"});
  for (size_t k : {5, 10, 20, 45, 100}) {
    for (bool joint : {false, true}) {
      BinningConfig config;
      config.k = k;
      config.enforce_joint = joint;
      BinningAgent agent(joint ? unconstrained : env.metrics, config);
      const BinningOutcome outcome =
          Unwrap(agent.Run(env.original()), "binning");
      const size_t dm =
          DiscernibilityMetric(outcome.binned, outcome.qi_columns);
      const double c_avg = Unwrap(
          NormalizedAvgClassSize(outcome.binned, outcome.qi_columns, k),
          "c_avg");
      table.AddRow(
          {std::to_string(k), joint ? "joint" : "per-attribute",
           FormatDouble(TotalInfoLoss(outcome.multi_column_loss), 3),
           std::to_string(dm), FormatDouble(c_avg, 2),
           std::to_string(outcome.binned.GroupBy(outcome.qi_columns).size())});
    }
  }

  PrintResult("Ablation: utility metrics across k (20000 tuples)", table);
  std::printf(
      "expected: joint binning costs far more on every metric; C_avg near "
      "1 means bins hug k, large C_avg means over-generalization\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace privmark

int main() { return privmark::bench::Run(); }
