// Regenerates Figure 11: k vs. information loss, for mono-attribute and
// multi-attribute binning.
//
// Paper result (shape): mono-attribute loss stays low and grows slowly
// with k; multi-attribute (joint) loss is far higher, rises quickly, then
// saturates once k forces near-total generalization.
//
// Setup notes: the mono series bins each attribute individually under the
// standard depth-cut usage metrics. The multi series must be *binnable*
// at every k up to 350 (joint 5-column k-anonymity), so — like the paper,
// which reaches >90% information loss in this figure — its usage metrics
// allow generalization up to the tree roots.

#include "bench_util.h"

#include "binning/binning_engine.h"
#include "common/strings.h"

namespace privmark {
namespace bench {
namespace {

int Run() {
  Environment env = MakeEnvironment();
  const UsageMetrics unconstrained =
      UnconstrainedMetrics(env.dataset->trees());

  TextTable table;
  table.SetHeader({"k", "mono_info_loss_pct", "multi_info_loss_pct"});

  for (size_t k : {2, 5, 10, 20, 45, 75, 100, 150, 200, 250, 300, 350}) {
    // Mono-attribute series: each column individually k-anonymous.
    BinningConfig mono_config;
    mono_config.k = k;
    mono_config.enforce_joint = false;
    BinningAgent mono_agent(env.metrics, mono_config);
    const BinningOutcome mono =
        Unwrap(mono_agent.Run(env.original()), "mono binning");

    // Multi-attribute series: joint k-anonymity over all 5 columns.
    BinningConfig multi_config;
    multi_config.k = k;
    multi_config.enforce_joint = true;
    BinningAgent multi_agent(unconstrained, multi_config);
    const BinningOutcome multi =
        Unwrap(multi_agent.Run(env.original()), "multi binning");

    table.AddRow({std::to_string(k),
                  FormatDouble(mono.mono_normalized_loss * 100.0, 2),
                  FormatDouble(multi.multi_normalized_loss * 100.0, 2)});
  }

  PrintResult("Figure 11: k vs. information loss (20000 tuples, 5 QI columns)",
              table);
  std::printf(
      "expected shape: mono low & slowly growing; multi much higher, "
      "saturating at large k\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace privmark

int main() { return privmark::bench::Run(); }
