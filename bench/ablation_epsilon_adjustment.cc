// Ablation for Sec. 6's conservative k+epsilon adjustment: bins can dip
// below k under aggressive watermarking unless binning over-provisions by
// epsilon = (s / S) * |wmd|.
//
// Expected outcome: with a small eta (many marked tuples) and small k,
// some threshold bins fall below k without the adjustment; with
// auto-epsilon, violations drop to zero at a modest extra information
// loss.

#include "bench_util.h"

#include "common/strings.h"

namespace privmark {
namespace bench {
namespace {

struct RunStats {
  size_t below_k = 0;
  size_t epsilon = 0;
  double loss_pct = 0;
};

RunStats RunOnce(const Environment& env, size_t k, uint64_t eta,
                 bool auto_epsilon) {
  FrameworkConfig config = MakeConfig(k, eta);
  config.auto_epsilon = auto_epsilon;
  ProtectionFramework framework(env.metrics, config);
  const ProtectionOutcome outcome =
      Unwrap(framework.Protect(env.original()), "protect");
  RunStats stats;
  stats.epsilon = outcome.epsilon_used;
  stats.loss_pct = outcome.binning.multi_normalized_loss * 100.0;
  for (const AttributeSeamlessness& row : outcome.seamlessness) {
    stats.below_k += row.bins_below_k;
  }
  return stats;
}

int Run() {
  // A smaller table makes the failure mode visible: at 20k rows the
  // per-attribute bins sit comfortably above k, while at 2.5k rows many
  // bins hug the threshold and watermark permutation pushes some below it.
  Environment env = MakeEnvironment(/*rows=*/2500);

  TextTable table;
  table.SetHeader({"k", "eta", "belowk_no_eps", "belowk_with_eps",
                   "epsilon_used", "loss_no_eps_pct", "loss_with_eps_pct"});
  for (size_t k : {10, 20, 45}) {
    for (uint64_t eta : {8u, 25u, 75u}) {
      const RunStats plain = RunOnce(env, k, eta, false);
      const RunStats adjusted = RunOnce(env, k, eta, true);
      table.AddRow({std::to_string(k), std::to_string(eta),
                    std::to_string(plain.below_k),
                    std::to_string(adjusted.below_k),
                    std::to_string(adjusted.epsilon),
                    FormatDouble(plain.loss_pct, 2),
                    FormatDouble(adjusted.loss_pct, 2)});
    }
  }

  PrintResult("Ablation: Sec. 6 k+epsilon adjustment", table);
  std::printf(
      "expected: belowk_with_eps always 0; violations without epsilon only "
      "at aggressive (small) eta; modest loss increase\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace privmark

int main() { return privmark::bench::Run(); }
