// Regenerates Figure 14: the effect of watermarking on binning — for each
// quasi-identifying attribute and k in {10, 20, 45, 100}: the total number
// of bins, the number of bins whose size changed during watermarking, and
// the number of bins left smaller than k.
//
// Paper result (shape): a majority of bins change size, yet *zero* bins
// fall below k — watermarking does not break the k-anonymity binning
// established. Paper's own bin-count scale at k=10: age 73 / zip 96 /
// doctor 20 / symptom 56 / prescription 97 (our zip and doctor ontologies
// match those counts exactly; age differs because the paper's age tree
// used narrower intervals than its Fig. 3).

#include "bench_util.h"

#include "common/strings.h"

namespace privmark {
namespace bench {
namespace {

int Run() {
  Environment env = MakeEnvironment();

  TextTable table;
  table.SetHeader({"k", "attribute", "total_bins", "bins_size_changed",
                   "bins_below_k"});

  bool any_violation = false;
  for (size_t k : {10, 20, 45, 100}) {
    FrameworkConfig config = MakeConfig(k, /*eta=*/75);
    // The paper's all-zero "bins below k" column is the Sec. 6 guarantee;
    // threshold bins are protected by the conservative k+epsilon
    // adjustment (see bench/ablation_epsilon_adjustment for the no-epsilon
    // failure mode).
    config.auto_epsilon = true;
    ProtectionFramework framework(env.metrics, config);
    const ProtectionOutcome outcome =
        Unwrap(framework.Protect(env.original()), "protect");
    for (const AttributeSeamlessness& row : outcome.seamlessness) {
      table.AddRow({std::to_string(k), row.attribute,
                    std::to_string(row.total_bins),
                    std::to_string(row.bins_size_changed),
                    std::to_string(row.bins_below_k)});
      if (row.bins_below_k > 0) any_violation = true;
    }
  }

  PrintResult("Figure 14: effect of watermarking on binning", table);
  std::printf("expected shape: most bins change size; bins_below_k all 0\n");
  std::printf("k-anonymity violations observed: %s\n",
              any_violation ? "YES (unexpected)" : "none");
  return any_violation ? 1 : 0;
}

}  // namespace
}  // namespace bench
}  // namespace privmark

int main() { return privmark::bench::Run(); }
