// Ablation for Sec. 5.3's weighted voting: "we can assign a different
// weight to each copy from a distinct level ... the copy from a higher
// level is more reliable than that from a lower level".
//
// The sibling-swap attack randomizes exactly the lowest level of the
// hierarchical walk while leaving higher levels intact, so per-slot level
// votes can tie or flip. Weighted voting (favoring the higher levels)
// should recover more mark bits than uniform voting as the swap fraction
// grows.

#include "bench_util.h"

#include "attack/attacks.h"
#include "common/strings.h"
#include "watermark/hierarchical.h"

namespace privmark {
namespace bench {
namespace {

constexpr size_t kMarkBits = 20;
constexpr size_t kSymptomColumn = 4;
constexpr size_t kSymptomQiIndex = 3;

int Run() {
  Environment env = MakeEnvironment();
  FrameworkConfig config = MakeConfig(/*k=*/20, /*eta=*/100);
  BinningAgent agent(env.metrics, config.binning);
  BinningOutcome binned = Unwrap(agent.Run(env.original()), "binning");
  const size_t ident = *binned.binned.schema().IdentifyingColumn();
  const BitVector mark =
      Unwrap(BitVector::FromString("10110010011010111001"), "mark");

  const GeneralizationSet& maximal = env.metrics.maximal[kSymptomQiIndex];
  const GeneralizationSet& ultimate = binned.ultimate[kSymptomQiIndex];

  WatermarkOptions plain_options = config.watermark;
  WatermarkOptions weighted_options = config.watermark;
  weighted_options.weighted_voting = true;
  weighted_options.level_weight_decay = 0.4;

  HierarchicalWatermarker embedder({kSymptomColumn}, ident, {maximal},
                                   {ultimate}, config.key, plain_options);
  HierarchicalWatermarker plain_detector = embedder;
  HierarchicalWatermarker weighted_detector({kSymptomColumn}, ident,
                                            {maximal}, {ultimate}, config.key,
                                            weighted_options);

  Table marked = binned.binned.Clone();
  const EmbedReport embed = Unwrap(embedder.Embed(&marked, mark), "embed");

  TextTable table;
  table.SetHeader({"swap_pct", "plain_markloss_pct", "weighted_markloss_pct"});
  for (double fraction : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    Table attacked = marked.Clone();
    Random rng(4242 + static_cast<uint64_t>(fraction * 10));
    CheckOk(SiblingSwapAttack(&attacked, {kSymptomColumn}, {ultimate},
                              fraction, &rng)
                .status(),
            "swap");
    const DetectReport plain = Unwrap(
        plain_detector.Detect(attacked, kMarkBits, embed.wmd_size), "plain");
    const DetectReport weighted =
        Unwrap(weighted_detector.Detect(attacked, kMarkBits, embed.wmd_size),
               "weighted");
    table.AddRow(
        {FormatDouble(fraction * 100.0, 0),
         FormatDouble(*MarkLossAgainst(mark, plain.recovered) * 100.0, 1),
         FormatDouble(*MarkLossAgainst(mark, weighted.recovered) * 100.0, 1)});
  }

  PrintResult("Ablation: weighted per-level voting (Sec. 5.3)", table);
  std::printf(
      "expected: weighted voting (higher levels favored) loses no more "
      "bits than plain voting under lowest-level noise\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace privmark

int main() { return privmark::bench::Run(); }
