// Ablation for the paper's Sec. 4.2.1 efficiency remark: "downward
// binning may have efficiency advantage over previous work that bins
// upward along the tree (e.g., [19])".
//
// Both directions find the same minimal generalization nodes under the
// simple minimality rationale (verified in tests); the work they spend —
// measured as the number of node-count inspections — differs with k:
// upward starts at the leaves and is cheap when the answer is deep (small
// k); downward starts at the maximal generalization nodes the off-line
// usage metrics provide and is cheap when the answer is shallow (large
// k). The expected crossover is the point of the paper's remark.

#include "bench_util.h"

#include "binning/mono_attribute.h"
#include "binning/upward_baseline.h"
#include "common/strings.h"

namespace privmark {
namespace bench {
namespace {

int Run() {
  Environment env = MakeEnvironment();
  const size_t symptom_col = 4;
  const size_t symptom_qi = 3;
  const GeneralizationSet root_metrics =
      GeneralizationSet::RootOnly(env.metrics.trees[symptom_qi]);
  const std::vector<Value> values =
      env.original().ColumnValues(symptom_col);

  TextTable table;
  table.SetHeader({"k", "downward_inspections", "upward_inspections",
                   "same_result", "minimal_nodes"});
  for (size_t k : {2, 10, 50, 200, 1000, 5000, 20000}) {
    MonoBinningOptions options;
    options.k = k;
    const MonoBinningResult down =
        Unwrap(MonoAttributeBin(root_metrics, values, options), "downward");
    const UpwardBinningResult up =
        Unwrap(UpwardAttributeBin(root_metrics, values, k), "upward");
    table.AddRow({std::to_string(k), std::to_string(down.nodes_inspected),
                  std::to_string(up.nodes_inspected),
                  down.minimal.nodes() == up.minimal.nodes() ? "yes" : "NO",
                  std::to_string(down.minimal.size())});
  }

  PrintResult(
      "Ablation: downward (paper) vs upward ([19]) mono-attribute binning "
      "(symptom column)",
      table);
  std::printf(
      "expected: identical results; downward inspects fewer nodes at large "
      "k (answer near the maximal nodes), upward fewer at small k\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace privmark

int main() { return privmark::bench::Run(); }
