// Shared scaffolding for the experiment harnesses in bench/.
//
// Every fig*/ablation* binary regenerates one table or figure of the
// paper's Sec. 7 evaluation on the synthetic 20k-tuple clinical data set
// (see DESIGN.md, "Substitutions"). The helpers here pin the common
// experimental setup so all experiments share one environment:
//
//   - data: GenerateMedicalDataset (20000 rows, fixed seed)
//   - usage metrics: maximal generalization nodes handed directly per
//     column ("a main simplification we made", Sec. 7), at natural
//     ontology levels: age width-20 intervals, zip regions, doctor roles,
//     ICD-9 chapters, drug classes
//   - k-anonymity: per-attribute (the setup implied by Fig. 14's bin
//     counts; see DESIGN.md item 5)
//
// Binaries print an aligned table followed by a CSV block so results can
// be scraped.
//
// micro_throughput is the one google-benchmark binary. Pass
// --benchmark_min_time as a plain double in seconds (e.g.
// --benchmark_min_time=0.01): that form works on benchmark 1.7.x and
// 1.8.x alike, while the suffixed "0.01s"/"10x" spellings require
// >= 1.8 and are rejected by 1.7.x. scripts/run_benches.sh always
// passes the double form.

#ifndef PRIVMARK_BENCH_BENCH_UTIL_H_
#define PRIVMARK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/text_table.h"
#include "core/framework.h"
#include "datagen/medical_data.h"

namespace privmark {
namespace bench {

/// \brief Aborts the bench with a readable message on error (bench
/// binaries have no business continuing past a broken setup).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).ValueOrDie();
}

/// \brief The shared experiment environment.
struct Environment {
  std::unique_ptr<MedicalDataset> dataset;
  UsageMetrics metrics;

  const Table& original() const { return dataset->table; }
};

/// \brief Builds the standard 20k-row environment. Deterministic.
inline Environment MakeEnvironment(size_t rows = 20000,
                                   uint64_t seed = 20050405) {
  Environment env;
  MedicalDataSpec spec;
  spec.num_rows = rows;
  spec.seed = seed;
  env.dataset = std::make_unique<MedicalDataset>(
      Unwrap(GenerateMedicalDataset(spec), "generate dataset"));
  // Maximal generalization nodes at natural ontology levels (depth cuts):
  // age -> depth 2 (intervals of width 20-40 in the 30-leaf binary tree),
  // zip -> regions, doctor -> roles, symptom -> chapters, rx -> classes.
  env.metrics = Unwrap(
      MetricsFromDepthCuts(env.dataset->trees(), {2, 1, 2, 1, 1}),
      "depth-cut metrics");
  return env;
}

/// \brief Standard framework configuration used across experiments.
inline FrameworkConfig MakeConfig(size_t k, uint64_t eta) {
  FrameworkConfig config;
  config.binning.k = k;
  config.binning.enforce_joint = false;  // the paper's evaluation setup
  config.binning.encryption_passphrase = "bench-owner-passphrase";
  config.key.k1 = "bench-k1";
  config.key.k2 = "bench-k2";
  config.key.eta = eta;
  return config;
}

/// \brief Prints the aligned table and its CSV twin under a banner.
inline void PrintResult(const std::string& title, const TextTable& table) {
  std::printf("== %s ==\n%s\n[csv]\n%s\n", title.c_str(),
              table.ToAligned().c_str(), table.ToCsv().c_str());
}

}  // namespace bench
}  // namespace privmark

#endif  // PRIVMARK_BENCH_BENCH_UTIL_H_
