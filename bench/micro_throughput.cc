// Micro-benchmarks (google-benchmark): throughput of the pipeline stages
// on the standard 20k-tuple data set. The paper reports no absolute
// timings (its testbed was a 2G-CPU/512M-RAM 2005 PC); these numbers
// document the cost profile of this implementation.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include <string>

#include <thread>

#include "bench_util.h"
#include "binning/binning_engine.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/session.h"
#include "crypto/aes128.h"
#include "crypto/keyed_hash.h"
#include "crypto/sha1.h"
#include "hierarchy/encoded_view.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/service.h"
#include "watermark/detect_index.h"
#include "watermark/hierarchical.h"
#include "watermark/key_registry.h"

namespace privmark {
namespace bench {
namespace {

struct SharedState {
  Environment env;
  BinningOutcome binned;
  std::unique_ptr<HierarchicalWatermarker> watermarker;
  Table marked;
  BitVector mark;
  size_t wmd_size = 0;
};

SharedState& State() {
  static SharedState* state = [] {
    auto* s = new SharedState;
    s->env = MakeEnvironment();
    FrameworkConfig config = MakeConfig(20, 75);
    BinningAgent agent(s->env.metrics, config.binning);
    s->binned = Unwrap(agent.Run(s->env.original()), "binning");
    s->watermarker = std::make_unique<HierarchicalWatermarker>(
        s->binned.qi_columns,
        *s->binned.binned.schema().IdentifyingColumn(),
        s->env.metrics.maximal, s->binned.ultimate, config.key,
        config.watermark);
    s->mark = Unwrap(BitVector::FromString("10110010011010111001"), "mark");
    s->marked = s->binned.binned.Clone();
    s->wmd_size =
        Unwrap(s->watermarker->Embed(&s->marked, s->mark), "embed").wmd_size;
    return s;
  }();
  return *state;
}

void BM_GenerateDataset(benchmark::State& state) {
  for (auto _ : state) {
    MedicalDataSpec spec;
    spec.num_rows = static_cast<size_t>(state.range(0));
    auto ds = GenerateMedicalDataset(spec);
    benchmark::DoNotOptimize(ds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateDataset)
    ->Arg(1000)
    ->Arg(20000)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_MonoBinning20k(benchmark::State& state) {
  SharedState& s = State();
  BinningConfig config;
  config.k = static_cast<size_t>(state.range(0));
  config.enforce_joint = false;
  config.num_threads = static_cast<size_t>(state.range(1));
  BinningAgent agent(s.env.metrics, config);
  for (auto _ : state) {
    auto outcome = agent.Run(s.env.original());
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations() * s.env.original().num_rows());
}
BENCHMARK(BM_MonoBinning20k)
    ->ArgNames({"k", "threads"})
    ->Args({10, 1})
    ->Args({10, 2})
    ->Args({10, 4})
    ->Args({10, 8})
    ->Args({100, 1})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_JointBinning20k(benchmark::State& state) {
  SharedState& s = State();
  const UsageMetrics unconstrained =
      UnconstrainedMetrics(s.env.dataset->trees());
  BinningConfig config;
  config.k = static_cast<size_t>(state.range(0));
  config.enforce_joint = true;
  BinningAgent agent(unconstrained, config);
  for (auto _ : state) {
    auto outcome = agent.Run(s.env.original());
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations() * s.env.original().num_rows());
}
BENCHMARK(BM_JointBinning20k)->Arg(10)->Iterations(2)->Unit(
    benchmark::kMillisecond);

// Watermarker with the standard config but a benchmark-chosen thread
// count (outputs are byte-identical across counts; only throughput moves).
HierarchicalWatermarker ThreadedWatermarker(const SharedState& s,
                                            size_t num_threads) {
  FrameworkConfig config = MakeConfig(20, 75);
  config.watermark.num_threads = num_threads;
  return HierarchicalWatermarker(
      s.binned.qi_columns, *s.binned.binned.schema().IdentifyingColumn(),
      s.env.metrics.maximal, s.binned.ultimate, config.key, config.watermark);
}

void BM_WatermarkEmbed20k(benchmark::State& state) {
  SharedState& s = State();
  const HierarchicalWatermarker watermarker =
      ThreadedWatermarker(s, static_cast<size_t>(state.range(0)));
  // The fresh input clone is benchmark scaffolding, not embedding work —
  // at ~7 ms per 20k-table deep copy it would drown the ~1 ms embed being
  // measured — so it runs outside the timed region.
  for (auto _ : state) {
    state.PauseTiming();
    {
      Table table = s.binned.binned.Clone();
      state.ResumeTiming();
      auto report = watermarker.Embed(&table, s.mark);
      benchmark::DoNotOptimize(report);
      state.PauseTiming();
    }  // the clone's destruction stays off the clock as well
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * s.binned.binned.num_rows());
}
BENCHMARK(BM_WatermarkEmbed20k)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(5)
    ->Unit(benchmark::kMillisecond);

void BM_WatermarkDetect20k(benchmark::State& state) {
  SharedState& s = State();
  const HierarchicalWatermarker watermarker =
      ThreadedWatermarker(s, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto report = watermarker.Detect(s.marked, s.mark.size(), s.wmd_size);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * s.marked.num_rows());
}
BENCHMARK(BM_WatermarkDetect20k)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(5)
    ->Unit(benchmark::kMillisecond);

void BM_MultiKeyDetect20k(benchmark::State& state) {
  // Registry-scan cost: one shared DetectIndex over the marked 20k table,
  // then keyed tallies for `keys` candidate keys sharded over `threads`
  // workers. The index is built once outside the loop — this isolates the
  // per-key tally cost that dominates large registries, versus
  // BM_WatermarkDetect20k which pays the full fused scan per key.
  SharedState& s = State();
  const size_t num_keys = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  const DetectIndex index =
      Unwrap(BuildDetectIndex(*s.watermarker, s.marked), "detect index");
  Random keygen(7);
  std::vector<WatermarkKey> keys = {MakeConfig(20, 75).key};
  while (keys.size() < num_keys) {
    keys.push_back(
        GenerateKey("k" + std::to_string(keys.size()), 75, &keygen).key);
  }
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = MakeThreadPool(threads);
  for (auto _ : state) {
    auto reports = MultiKeyTally(index, keys, HashAlgorithm::kSha1,
                                 s.mark.size(), s.wmd_size, pool.get());
    CheckOk(reports.status(), "multi-key tally");
    benchmark::DoNotOptimize(reports);
  }
  state.SetItemsProcessed(state.iterations() * num_keys);
}
BENCHMARK(BM_MultiKeyDetect20k)
    ->ArgNames({"keys", "threads"})
    ->Args({1, 1})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({256, 8})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_AesEncryptValue(benchmark::State& state) {
  const Aes128 cipher = Aes128::FromPassphrase("bench");
  size_t i = 0;
  for (auto _ : state) {
    auto out = cipher.EncryptValue("12345678" + std::to_string(i++ % 10));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AesEncryptValue);

void BM_Sha1Hash(benchmark::State& state) {
  std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    auto digest = Sha1::Hash(payload);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1Hash)->Arg(64)->Arg(4096);

void BM_KeyedHashBatch(benchmark::State& state) {
  // Per-hash cost of the batched keyed-hash entry point at a given batch
  // size (lanes=1 is the scalar fallback path) and message length. The
  // watermark hot loops call this with whole row blocks; the lanes sweep
  // shows how much of the multi-buffer kernel's speedup each batch shape
  // actually collects. items == hashes.
  const size_t lanes = static_cast<size_t>(state.range(0));
  const size_t msg_len = static_cast<size_t>(state.range(1));
  const std::string key = "bench-k1-secret";
  std::vector<std::string> messages(lanes);
  for (size_t i = 0; i < lanes; ++i) {
    messages[i] = std::string(msg_len, static_cast<char>('a' + i % 26));
  }
  std::vector<std::string_view> views(messages.begin(), messages.end());
  std::vector<uint64_t> outs(lanes);
  for (auto _ : state) {
    KeyedHash64Batch(HashAlgorithm::kSha1, key, views.data(), lanes,
                     outs.data());
    benchmark::DoNotOptimize(outs.data());
  }
  state.SetItemsProcessed(state.iterations() * lanes);
}
BENCHMARK(BM_KeyedHashBatch)
    ->ArgNames({"lanes", "len"})
    ->Args({1, 24})
    ->Args({4, 24})
    ->Args({8, 24})
    ->Args({64, 24})
    ->Args({8, 96})
    ->Args({64, 96});

void BM_StreamingIngest20k(benchmark::State& state) {
  // End-to-end streaming throughput (rows/sec): the 20k table replayed
  // through a freeze-mode ProtectionSession in batch-size batches plus
  // one flush — the full protect pipeline (encode, count-merge, bin,
  // materialize, embed) under incremental ingest. Batch = 20000 is the
  // degenerate single-batch case (one-shot Protect through the session).
  SharedState& s = State();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  const Table& original = s.env.original();
  std::vector<Table> batches;
  for (size_t begin = 0; begin < original.num_rows(); begin += batch_size) {
    batches.push_back(original.Slice(begin, begin + batch_size));
  }
  FrameworkConfig config = MakeConfig(20, 75);
  config.binning.num_threads = static_cast<size_t>(state.range(1));
  config.watermark.num_threads = config.binning.num_threads;
  for (auto _ : state) {
    ProtectionSession session(s.env.metrics, config, SessionConfig());
    for (const Table& batch : batches) {
      auto result = session.Ingest(batch);
      CheckOk(result.status(), "ingest");
    }
    auto flushed = session.Flush();
    CheckOk(flushed.status(), "flush");
    benchmark::DoNotOptimize(flushed);
  }
  state.SetItemsProcessed(state.iterations() * original.num_rows());
}
BENCHMARK(BM_StreamingIngest20k)
    ->ArgNames({"batch", "threads"})
    ->Args({20000, 1})
    ->Args({1000, 1})
    ->Args({100, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_ServiceThroughput(benchmark::State& state) {
  // Request throughput of the async service front-end: `sessions`
  // concurrent streams, each replaying a disjoint 2000-row slice of the
  // 20k table in 500-row ProtectBatch requests plus one Flush, on one
  // shared pool of `cap` workers. Reported rate = requests/sec across
  // all sessions (items == requests); sessions x cap sweeps how the
  // admission controller multiplexes the cap.
  SharedState& s = State();
  const size_t num_sessions = static_cast<size_t>(state.range(0));
  const size_t cap = static_cast<size_t>(state.range(1));
  const size_t rows_per_session = 2000;
  const size_t batch_rows = 500;
  std::vector<std::vector<Table>> batches(num_sessions);
  for (size_t i = 0; i < num_sessions; ++i) {
    const size_t base = (i * rows_per_session) % s.env.original().num_rows();
    for (size_t begin = 0; begin < rows_per_session; begin += batch_rows) {
      batches[i].push_back(
          s.env.original().Slice(base + begin, base + begin + batch_rows));
    }
  }
  FrameworkConfig config = MakeConfig(20, 75);
  config.binning.num_threads = 0;  // every request asks for the whole cap
  config.watermark.num_threads = 0;
  size_t requests = 0;
  for (auto _ : state) {
    ServiceConfig service_config;
    service_config.thread_cap = cap;
    PrivmarkService service(service_config);
    for (size_t i = 0; i < num_sessions; ++i) {
      CheckOk(service.OpenSession("s" + std::to_string(i), s.env.metrics,
                                  config),
              "open session");
    }
    std::vector<ServiceFuture> futures;
    for (size_t i = 0; i < num_sessions; ++i) {
      const std::string name = "s" + std::to_string(i);
      for (const Table& batch : batches[i]) {
        futures.push_back(service.ProtectBatch(name, batch.Clone()));
      }
      futures.push_back(service.Flush(name));
    }
    for (ServiceFuture& future : futures) {
      CheckOk(future.get().status(), "service request");
    }
    requests += futures.size();
    service.Shutdown();
  }
  state.SetItemsProcessed(static_cast<int64_t>(requests));
}
BENCHMARK(BM_ServiceThroughput)
    ->ArgNames({"sessions", "cap"})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_ServiceThroughputLoopback(benchmark::State& state) {
  // The same sessions x cap sweep as BM_ServiceThroughput, but through
  // the network daemon over real loopback sockets: each session is one
  // DaemonClient connection driven by its own thread. The delta against
  // the in-process numbers is the whole wire overhead — framing, CRCs,
  // the columnar table codec both ways, and one connection's
  // request/response round-trips.
  SharedState& s = State();
  const size_t num_sessions = static_cast<size_t>(state.range(0));
  const size_t cap = static_cast<size_t>(state.range(1));
  const size_t rows_per_session = 2000;
  const size_t batch_rows = 500;
  std::vector<std::vector<Table>> batches(num_sessions);
  for (size_t i = 0; i < num_sessions; ++i) {
    const size_t base = (i * rows_per_session) % s.env.original().num_rows();
    for (size_t begin = 0; begin < rows_per_session; begin += batch_rows) {
      batches[i].push_back(
          s.env.original().Slice(base + begin, base + begin + batch_rows));
    }
  }
  size_t requests = 0;
  for (auto _ : state) {
    DaemonConfig daemon_config;
    daemon_config.service.thread_cap = cap;
    daemon_config.schema = s.env.original().schema();
    daemon_config.metrics_for_config =
        [&s](const FrameworkConfig&) -> Result<UsageMetrics> {
      return s.env.metrics;
    };
    PrivmarkDaemon daemon(std::move(daemon_config));
    CheckOk(daemon.Start(0), "daemon start");
    std::vector<std::thread> drivers;
    for (size_t i = 0; i < num_sessions; ++i) {
      drivers.emplace_back([&s, &daemon, &batches, i] {
        const std::string name = "s" + std::to_string(i);
        DaemonClient client(s.env.original().schema());
        CheckOk(client.Connect("127.0.0.1", daemon.port()), "connect");
        WireRequest open;
        open.type = WireFrameType::kOpen;
        open.session = name;
        open.open.k = 20;
        open.open.enforce_joint = false;
        open.open.passphrase = "bench-owner-passphrase";
        open.open.k1 = "bench-k1";
        open.open.k2 = "bench-k2";
        open.open.eta = 75;
        open.open.num_threads = 0;  // every request asks for the whole cap
        auto opened = client.Call(open);
        CheckOk(opened.status(), "open transport");
        CheckOk(opened->status, "open session");
        for (const Table& batch : batches[i]) {
          WireRequest ingest;
          ingest.type = WireFrameType::kIngest;
          ingest.session = name;
          ingest.table = batch.Clone();
          auto response = client.Call(ingest);
          CheckOk(response.status(), "ingest transport");
          CheckOk(response->status, "ingest");
        }
        WireRequest flush;
        flush.type = WireFrameType::kFlush;
        flush.session = name;
        auto flushed = client.Call(flush);
        CheckOk(flushed.status(), "flush transport");
        CheckOk(flushed->status, "flush");
      });
    }
    for (std::thread& driver : drivers) driver.join();
    requests += num_sessions * (batches[0].size() + 1);
    CheckOk(daemon.Shutdown(), "daemon shutdown");
  }
  state.SetItemsProcessed(static_cast<int64_t>(requests));
}
BENCHMARK(BM_ServiceThroughputLoopback)
    ->ArgNames({"sessions", "cap"})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_StreamedFingerprintLoopback(benchmark::State& state) {
  // Protocol-v2 streamed fingerprint over a real loopback socket: one
  // connection, one protected epoch, a registry of `keys` candidates,
  // and each iteration drains every kPartial shard before the terminal
  // response. The delta against an in-process scan is the v2 streaming
  // overhead — per-shard framing, CRCs, and the client's demux path.
  SharedState& s = State();
  const size_t num_keys = static_cast<size_t>(state.range(0));

  DaemonConfig daemon_config;
  daemon_config.service.thread_cap = 4;
  daemon_config.schema = s.env.original().schema();
  daemon_config.metrics_for_config =
      [&s](const FrameworkConfig&) -> Result<UsageMetrics> {
    return s.env.metrics;
  };
  PrivmarkDaemon daemon(std::move(daemon_config));
  CheckOk(daemon.Start(0), "daemon start");
  DaemonClient client(s.env.original().schema());
  CheckOk(client.Connect("127.0.0.1", daemon.port()), "connect");

  WireRequest open;
  open.type = WireFrameType::kOpen;
  open.session = "audit";
  open.open.k = 20;
  open.open.enforce_joint = false;
  open.open.passphrase = "bench-owner-passphrase";
  open.open.k1 = "bench-k1";
  open.open.k2 = "bench-k2";
  open.open.eta = 75;
  open.open.num_threads = 0;  // scan with the whole cap
  auto opened = client.Call(open);
  CheckOk(opened.status(), "open transport");
  CheckOk(opened->status, "open session");

  WireRequest ingest;
  ingest.type = WireFrameType::kIngest;
  ingest.session = "audit";
  ingest.table = s.env.original().Slice(0, 2000);
  auto ingested = client.Call(ingest);
  CheckOk(ingested.status(), "ingest transport");
  CheckOk(ingested->status, "ingest");
  WireRequest flush;
  flush.type = WireFrameType::kFlush;
  flush.session = "audit";
  auto flushed = client.Call(flush);
  CheckOk(flushed.status(), "flush transport");
  CheckOk(flushed->status, "flush");
  const Table suspect = flushed->flush.emitted.Clone();

  KeyRegistry registry;
  CheckOk(registry.Add(NamedKey{"owner", {"bench-k1", "bench-k2", 75}}),
          "owner key");
  Random keygen(2005);
  for (size_t i = 1; i < num_keys; ++i) {
    CheckOk(registry.Add(GenerateKey("k" + std::to_string(i), 75, &keygen)),
            "decoy key");
  }

  WireRequest scan;
  scan.type = WireFrameType::kFingerprint;
  scan.session = "audit";
  scan.registry_text = registry.Serialize();
  scan.stream = true;
  size_t keys_scanned = 0;
  for (auto _ : state) {
    scan.table = suspect.Clone();
    auto pending = client.CallAsync(scan);
    CheckOk(pending.status(), "scan send");
    WireFingerprintShard shard;
    while (true) {
      auto more = pending->NextShard(&shard);
      CheckOk(more.status(), "shard");
      if (!*more) break;
      benchmark::DoNotOptimize(shard.verdicts.data());
    }
    auto scanned = pending->Wait();
    CheckOk(scanned.status(), "scan transport");
    CheckOk(scanned->status, "scan");
    keys_scanned += num_keys;
  }
  state.SetItemsProcessed(static_cast<int64_t>(keys_scanned));
  CheckOk(daemon.Shutdown(), "daemon shutdown");
}
BENCHMARK(BM_StreamedFingerprintLoopback)
    ->ArgNames({"keys"})
    ->Arg(32)
    ->Arg(128)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_EncodeView20k(benchmark::State& state) {
  // Cost of the dictionary-encoding pass itself: resolving every QI cell
  // of the 20k table to its leaf NodeId once. This is what each pipeline
  // stage used to pay per pass and now pays once per run.
  SharedState& s = State();
  std::vector<const DomainHierarchy*> trees;
  for (const auto& gs : s.env.metrics.maximal) trees.push_back(gs.tree());
  const std::vector<size_t> qi_columns =
      s.env.original().schema().QuasiIdentifyingColumns();
  for (auto _ : state) {
    auto view = EncodedView::Leaves(s.env.original(), qi_columns, trees);
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(state.iterations() * s.env.original().num_rows() *
                          qi_columns.size());
}
BENCHMARK(BM_EncodeView20k)->Iterations(5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace privmark

// Custom main instead of BENCHMARK_MAIN(): records whether *this library*
// was compiled with optimizations into the JSON context. (The benchmark
// library's own "library_build_type" field describes libbenchmark, not us —
// distro packages often ship it assertion-enabled, which made Release runs
// look like debug runs.)
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("privmark_build_type", "release");
#else
  benchmark::AddCustomContext("privmark_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
