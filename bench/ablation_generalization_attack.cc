// Ablation for Sec. 5.2: the generalization attack against single-level
// vs. hierarchical watermarking.
//
// Paper claim: watermarking only at the level of the ultimate
// generalization nodes is "susceptible to a kind of generalization attack
// that can completely destroy the inserted bits without knowing the
// watermarking key", which is why the hierarchical scheme watermarks every
// level between the maximal and ultimate generalization nodes.
//
// Expected outcome: after the attack, the single-level mark decays to
// coin-flip recovery (~50% bit loss) while the hierarchical mark survives
// intact; the attacked table still respects the usage metrics (that is
// what makes the attack "free" for the adversary).

#include "bench_util.h"

#include "attack/attacks.h"
#include "common/strings.h"
#include "metrics/info_loss.h"
#include "watermark/hierarchical.h"
#include "watermark/single_level.h"

namespace privmark {
namespace bench {
namespace {

constexpr size_t kMarkBits = 20;
constexpr size_t kSymptomColumn = 4;
constexpr size_t kSymptomQiIndex = 3;

int Run() {
  Environment env = MakeEnvironment();
  FrameworkConfig config = MakeConfig(/*k=*/20, /*eta=*/50);
  BinningAgent agent(env.metrics, config.binning);
  BinningOutcome binned = Unwrap(agent.Run(env.original()), "binning");
  const size_t ident = *binned.binned.schema().IdentifyingColumn();
  const BitVector mark =
      Unwrap(BitVector::FromString("10110010011010111001"), "mark");

  const GeneralizationSet& maximal = env.metrics.maximal[kSymptomQiIndex];
  const GeneralizationSet& ultimate = binned.ultimate[kSymptomQiIndex];

  SingleLevelWatermarker single({kSymptomColumn}, ident, {ultimate},
                                config.key, config.watermark);
  HierarchicalWatermarker hierarchical({kSymptomColumn}, ident, {maximal},
                                       {ultimate}, config.key,
                                       config.watermark);

  Table single_marked = binned.binned.Clone();
  const EmbedReport single_embed =
      Unwrap(single.Embed(&single_marked, mark), "single embed");
  Table hier_marked = binned.binned.Clone();
  const EmbedReport hier_embed =
      Unwrap(hierarchical.Embed(&hier_marked, mark), "hier embed");

  auto loss_of = [&](auto& scheme, const Table& t, size_t wmd) {
    const DetectReport report =
        Unwrap(scheme.Detect(t, kMarkBits, wmd), "detect");
    return Unwrap(MarkLossAgainst(mark, report.recovered), "loss") * 100.0;
  };

  TextTable table;
  table.SetHeader({"scheme", "clean_markloss_pct", "attacked_markloss_pct"});

  // The attack: generalize one level up, capped by the maximal nodes.
  Table single_attacked = single_marked.Clone();
  const AttackReport attack_report = Unwrap(
      GeneralizationAttack(&single_attacked, {kSymptomColumn}, {maximal}, 1),
      "attack single");
  Table hier_attacked = hier_marked.Clone();
  CheckOk(
      GeneralizationAttack(&hier_attacked, {kSymptomColumn}, {maximal}, 1)
          .status(),
      "attack hier");

  table.AddRow({"single-level",
                FormatDouble(loss_of(single, single_marked,
                                     single_embed.wmd_size), 1),
                FormatDouble(loss_of(single, single_attacked,
                                     single_embed.wmd_size), 1)});
  table.AddRow({"hierarchical",
                FormatDouble(loss_of(hierarchical, hier_marked,
                                     hier_embed.wmd_size), 1),
                FormatDouble(loss_of(hierarchical, hier_attacked,
                                     hier_embed.wmd_size), 1)});

  PrintResult("Ablation: generalization attack (Sec. 5.2)", table);

  // The attack stays inside the usage metrics: measure the attacked
  // table's info loss on the symptom column.
  const double attacked_loss = Unwrap(
      ColumnInfoLossOfLabelsEncoded(
          Unwrap(EncodedColumn::Labels(hier_attacked, kSymptomColumn,
                                       env.metrics.trees[kSymptomQiIndex]),
                 "encode attacked column")),
      "attacked info loss");
  std::printf("attack changed %zu cells; attacked symptom info loss: %.2f%% "
              "(still within the maximal-generalization bound)\n",
              attack_report.cells_changed, attacked_loss * 100.0);
  std::printf(
      "expected: single-level decays to ~coin-flip; hierarchical stays ~0\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace privmark

int main() { return privmark::bench::Run(); }
