// Ablation for Sec. 6 (Lemmas 1 & 2): the probability that one
// bit-embedding shrinks (Pr-) or grows (Pr+) a given bin, measured
// empirically against the closed form (n_k - 1) / (n_k * sum_i n_i).
//
// Setup honoring the lemmas' assumptions: equal-size ultimate bins
// (assumption i) and uniform permutation targets (assumption ii — ensured
// by even sibling counts, since the parity-constrained walk is uniform
// within each parity class). Every tuple is selected (eta = 1) to maximize
// the sample.

#include "bench_util.h"

#include <map>

#include "common/strings.h"
#include "watermark/hierarchical.h"

namespace privmark {
namespace bench {
namespace {

int Run() {
  // Tree with two maximal subtrees: N1 holds 4 ultimate nodes, N2 holds 2.
  DomainHierarchy tree = Unwrap(HierarchyBuilder::FromOutline("col", R"(root
  N1
    u1
    u2
    u3
    u4
  N2
    u5
    u6)"),
                                "tree");

  Schema schema;
  CheckOk(schema.AddColumn({"id", ColumnRole::kIdentifying,
                            ValueType::kString}),
          "schema id");
  CheckOk(schema.AddColumn({"col", ColumnRole::kQuasiCategorical,
                            ValueType::kString}),
          "schema col");
  Table table(schema);
  constexpr size_t kPerBin = 2000;
  size_t serial = 0;
  for (NodeId leaf : tree.Leaves()) {
    for (size_t i = 0; i < kPerBin; ++i) {
      CheckOk(table.AppendRow({Value::String("id-" + std::to_string(serial++)),
                               Value::String(tree.node(leaf).label)}),
              "append");
    }
  }

  WatermarkKey key;
  key.k1 = "probe-k1";
  key.k2 = "probe-k2";
  key.eta = 1;
  const GeneralizationSet ultimate = GeneralizationSet::AllLeaves(&tree);
  const GeneralizationSet maximal = CutAtDepth(&tree, 1);
  HierarchicalWatermarker watermarker(
      std::vector<size_t>{1}, 0, std::vector<GeneralizationSet>{maximal},
      std::vector<GeneralizationSet>{ultimate}, key, {});

  BitVector mark(20);
  for (size_t i = 0; i < 20; ++i) mark.Set(i, (i * 13) % 2 == 0);
  Table marked = table.Clone();
  const EmbedReport embed = Unwrap(watermarker.Embed(&marked, mark), "embed");
  const double embeddings = static_cast<double>(embed.slots_embedded);

  std::map<std::string, double> moved_out;
  std::map<std::string, double> moved_in;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const std::string before = table.at(r, 1).ToString();
    const std::string after = marked.at(r, 1).ToString();
    if (before != after) {
      moved_out[before] += 1;
      moved_in[after] += 1;
    }
  }

  TextTable result;
  result.SetHeader({"bin", "n_k", "closed_form", "empirical_Pr_minus",
                    "empirical_Pr_plus", "bin_size_before", "bin_size_after"});
  std::map<std::string, size_t> after_sizes;
  for (const Bin& bin : marked.GroupBy({1})) {
    after_sizes[bin.key[0].ToString()] = bin.size();
  }
  const double total_leaves = static_cast<double>(tree.Leaves().size());
  for (NodeId leaf : tree.Leaves()) {
    const std::string& label = tree.node(leaf).label;
    const double nk =
        static_cast<double>(tree.Children(tree.Parent(leaf)).size());
    const double closed_form = (nk - 1.0) / (nk * total_leaves);
    result.AddRow({label, FormatDouble(nk, 0), FormatDouble(closed_form, 4),
                   FormatDouble(moved_out[label] / embeddings, 4),
                   FormatDouble(moved_in[label] / embeddings, 4),
                   std::to_string(kPerBin),
                   std::to_string(after_sizes[label])});
  }

  PrintResult("Ablation: Lemma 1/2 probes (Pr- vs Pr+ per bin)", result);
  std::printf(
      "expected: empirical Pr- ~ Pr+ ~ closed form for every bin, so bin "
      "sizes stay ~%zu\n",
      kPerBin);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace privmark

int main() { return privmark::bench::Run(); }
