// Regenerates Figure 12: robustness of the hierarchical watermarking to
// (a) subset alteration, (b) subset addition, (c) subset deletion, for
// eta in {50, 75, 100} and a 20-bit multiply-embedded mark.
//
// Paper result (shape): mark loss grows slowly with attack strength —
// roughly 30% bit loss at 70%+ alteration, under ~30% at 80% addition,
// near-linear growth to ~35% at 80% deletion — and *smaller eta (more
// marked tuples) gives more resilience*.
//
// Setup notes: the paper's Fig. 9 embeds into one quasi-identifying
// column ("Take tbl.c ... for example"); we do the same here (symptom,
// the deepest ontology) so the bandwidth, and hence the copy count l,
// matches the paper's regime — with all five columns embedded the copy
// count is ~5x higher and every attack curve collapses to ~0 (the scheme
// only becomes stronger; the single-column setting is the harder case).

#include "bench_util.h"

#include "attack/attacks.h"
#include "common/strings.h"
#include "watermark/hierarchical.h"

namespace privmark {
namespace bench {
namespace {

constexpr size_t kMarkBits = 20;
constexpr size_t kSymptomColumn = 4;  // schema order: ssn,age,zip,doc,sym,rx
constexpr size_t kSymptomQiIndex = 3;  // among the 5 QI columns

struct MarkedSet {
  Table table;
  BitVector mark;
  size_t wmd_size = 0;
  std::unique_ptr<HierarchicalWatermarker> watermarker;
};

MarkedSet Prepare(Environment* env, uint64_t eta) {
  FrameworkConfig config = MakeConfig(/*k=*/20, eta);
  BinningAgent agent(env->metrics, config.binning);
  BinningOutcome binned = Unwrap(agent.Run(env->original()), "binning");

  MarkedSet out;
  out.mark = Unwrap(
      BitVector::FromString("10110010011010111001"), "mark");
  // Single-column watermarker on `symptom`.
  out.watermarker = std::make_unique<HierarchicalWatermarker>(
      std::vector<size_t>{kSymptomColumn},
      *binned.binned.schema().IdentifyingColumn(),
      std::vector<GeneralizationSet>{env->metrics.maximal[kSymptomQiIndex]},
      std::vector<GeneralizationSet>{binned.ultimate[kSymptomQiIndex]},
      config.key, config.watermark);
  out.table = std::move(binned.binned);
  const EmbedReport report =
      Unwrap(out.watermarker->Embed(&out.table, out.mark), "embed");
  out.wmd_size = report.wmd_size;
  return out;
}

double DetectLoss(const MarkedSet& set, const Table& attacked) {
  const DetectReport report = Unwrap(
      set.watermarker->Detect(attacked, kMarkBits, set.wmd_size), "detect");
  // Strict accounting: a bit left with no votes (deleted bandwidth) counts
  // as lost, matching the paper's "mark loss" that rises with deletion.
  return Unwrap(StrictMarkLoss(set.mark, report), "loss");
}

int Run() {
  Environment env = MakeEnvironment();
  // eta 50/75/100 are the paper's series; eta=200 is added to expose the
  // low-bandwidth regime: expected bit survival under erasure attacks is
  // governed by votes-per-bit ~ rows/(eta * |wm|), so the highest eta
  // shows the paper's loss magnitudes most clearly.
  const std::vector<uint64_t> etas = {200, 100, 75, 50};
  const std::vector<double> fractions = {0.0, 0.1, 0.2, 0.3, 0.4,
                                         0.5, 0.6, 0.7, 0.8};

  std::vector<MarkedSet> sets;
  for (uint64_t eta : etas) sets.push_back(Prepare(&env, eta));

  const char* section_names[] = {"(a) subset alteration",
                                 "(b) subset addition",
                                 "(c) subset deletion"};
  for (int section = 0; section < 3; ++section) {
    TextTable table;
    table.SetHeader({"attack_pct", "markloss_eta200_pct",
                     "markloss_eta100_pct", "markloss_eta75_pct",
                     "markloss_eta50_pct"});
    for (double fraction : fractions) {
      std::vector<std::string> row = {
          FormatDouble(fraction * 100.0, 0)};
      for (size_t i = 0; i < etas.size(); ++i) {
        Table attacked = sets[i].table.Clone();
        Random rng(1000 + section * 100 + static_cast<uint64_t>(
                                              fraction * 10));
        switch (section) {
          case 0:
            CheckOk(SubsetAlterationAttack(&attacked, {kSymptomColumn},
                                           fraction, &rng)
                        .status(),
                    "alteration");
            break;
          case 1:
            CheckOk(SubsetAdditionAttack(&attacked, fraction, &rng).status(),
                    "addition");
            break;
          case 2:
            CheckOk(SubsetDeletionAttack(&attacked, fraction, &rng).status(),
                    "deletion");
            break;
        }
        row.push_back(FormatDouble(DetectLoss(sets[i], attacked) * 100.0, 1));
      }
      table.AddRow(std::move(row));
    }
    PrintResult(std::string("Figure 12 ") + section_names[section], table);
  }
  std::printf(
      "expected shape: loss grows with attack strength; eta=50 (more "
      "bandwidth) is the most resilient curve\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace privmark

int main() { return privmark::bench::Run(); }
