// Regenerates Figure 13: information loss caused by watermarking, as a
// function of eta.
//
// Paper result (shape): minor loss, monotonically decreasing in eta —
// roughly 8-10% at eta=50 down to ~1-2% at eta=200 (the paper's y-axis
// tops out at 10%).
//
// Loss model: watermark permutation moves a cell to a label that may no
// longer cover the record's true value; we measure the Eq. (1)/(2)-style
// loss of the transformed column against the *original* values
// (ColumnLossAgainstOriginal) and report the watermarked-minus-binned
// difference, averaged over the five quasi-identifying columns.

#include "bench_util.h"

#include "common/strings.h"
#include "metrics/info_loss.h"

namespace privmark {
namespace bench {
namespace {

int Run() {
  Environment env = MakeEnvironment();

  TextTable table;
  table.SetHeader({"eta", "binned_loss_pct", "watermarked_loss_pct",
                   "wm_extra_loss_pct", "cells_changed"});

  for (uint64_t eta : {50, 75, 100, 125, 150, 175, 200}) {
    FrameworkConfig config = MakeConfig(/*k=*/20, eta);
    ProtectionFramework framework(env.metrics, config);
    const ProtectionOutcome outcome =
        Unwrap(framework.Protect(env.original()), "protect");

    double binned_loss = 0;
    double marked_loss = 0;
    for (size_t c = 0; c < outcome.binning.qi_columns.size(); ++c) {
      const size_t col = outcome.binning.qi_columns[c];
      binned_loss += Unwrap(
          ColumnLossAgainstOriginal(env.original().ColumnValues(col),
                                    outcome.binning.binned.ColumnValues(col),
                                    *env.metrics.trees[c]),
          "binned loss");
      marked_loss += Unwrap(
          ColumnLossAgainstOriginal(env.original().ColumnValues(col),
                                    outcome.watermarked.ColumnValues(col),
                                    *env.metrics.trees[c]),
          "marked loss");
    }
    binned_loss /= 5.0;
    marked_loss /= 5.0;
    table.AddRow({std::to_string(eta), FormatDouble(binned_loss * 100.0, 2),
                  FormatDouble(marked_loss * 100.0, 2),
                  FormatDouble((marked_loss - binned_loss) * 100.0, 2),
                  std::to_string(outcome.embed.cells_changed)});
  }

  PrintResult("Figure 13: information loss of watermarking vs. eta", table);
  std::printf(
      "expected shape: extra loss is minor and decreases as eta grows\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace privmark

int main() { return privmark::bench::Run(); }
